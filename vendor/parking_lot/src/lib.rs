//! Offline, std-only stand-in for the subset of the `parking_lot` 0.12
//! API this workspace uses: [`Mutex`] and [`RwLock`] with non-poisoning
//! guards (lock acquisition never returns a `Result`).
//!
//! Implemented as thin wrappers over `std::sync` that recover from
//! poisoning — a panic while holding the lock does not wedge every
//! later acquisition, matching `parking_lot` semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0u8));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
