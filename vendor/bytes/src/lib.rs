//! Offline, std-only stand-in for the subset of the `bytes` 1.x API
//! this workspace uses: a growable [`BytesMut`] buffer and the
//! [`BufMut`] append trait. Backed by a plain `Vec<u8>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Create an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.data
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

/// Append-only writer operations.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a slice of bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_index() {
        let mut b = BytesMut::new();
        b.put_u8(0);
        b.put_u8(0xff);
        b[0] |= 0b1000_0000;
        assert_eq!(b.len(), 2);
        assert_eq!(b.to_vec(), vec![0x80, 0xff]);
        b.put_slice(&[1, 2]);
        assert_eq!(Vec::from(b), vec![0x80, 0xff, 1, 2]);
    }
}
