//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not bit-compatible with upstream `rand::rngs::StdRng` (ChaCha12),
/// but deterministic for a seed and of good statistical quality.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state; expand a
        // fixed constant through splitmix64 so all four words are mixed.
        if s.iter().all(|&w| w == 0) {
            let mut sm = 0x9e37_79b9_7f4a_7c15u64;
            for word in &mut s {
                *word = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert!(first != 0 || second != 0);
        assert_ne!(first, second);
    }
}
