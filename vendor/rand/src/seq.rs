//! Sequence-related extensions (`SliceRandom`).

use crate::{Rng, SampleUniform};

/// Extension trait for random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Pick one element uniformly, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0, i, true);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_range(rng, 0, self.len(), false)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([5u8].choose(&mut rng), Some(&5));
    }
}
