//! Offline, std-only stand-in for the subset of the `rand` 0.8 API this
//! workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal implementation instead of the real
//! crate: [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via splitmix64), uniform
//! `gen_range` over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic for a given
//! seed but are *not* bit-compatible with upstream `rand`; the workspace
//! only relies on determinism and statistical quality, never on exact
//! upstream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Build the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a single `u64`, expanded with
    /// splitmix64 (the same expansion upstream `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the splitmix64 sequence.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that `Rng::gen` can produce from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform distribution over a bounded range.
pub trait SampleUniform: Sized {
    /// Draw uniformly from `[low, high)` (or `[low, high]` when
    /// `inclusive`). Panics on an empty range, like upstream.
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "gen_range: empty range {low}..{high}");
                // All workspace types fit in 64 bits, so span <= 2^64
                // and the u128 modulus keeps bias below 2^-64.
                let offset = (rng.next_u64() as u128) % (span as u128);
                (lo + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(low < high, "gen_range: empty range {low}..{high}");
                low + (high - low) * (unit_f64(rng) as $t)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience extension over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a uniform value from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bools_are_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn fill_bytes_fills_every_byte() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
