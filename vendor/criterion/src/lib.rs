//! Offline, std-only stand-in for the subset of the `criterion` 0.5 API
//! this workspace uses: [`Criterion`], [`Criterion::benchmark_group`]
//! with `sample_size`/`bench_function`/`finish`, [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is simple wall-clock sampling: each sample times a batch
//! of iterations sized to last roughly a millisecond, and the report
//! prints min/mean/max per iteration. There is no statistical analysis,
//! no plotting, and no baseline store — just stable, comparable numbers
//! on stderr-free stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        run_one(&full, self.sample_size, f);
        self
    }

    /// End the group (printing nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Times the routine under benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: size a batch to take roughly a millisecond, so
        // very fast routines still get a measurable sample.
        let calib = Instant::now();
        black_box(routine());
        let once = calib.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.iters_per_sample = per_sample as u64;
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher::default();
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample.max(1) as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{id:<40} time: [{} {} {}]",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundle benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("sum", |b| b.iter(|| (0..100u32).sum::<u32>()));
        g.finish();
    }

    #[test]
    fn format_scales() {
        assert!(format_ns(12.0).contains("ns"));
        assert!(format_ns(1.2e4).contains("µs"));
        assert!(format_ns(3.4e6).contains("ms"));
        assert!(format_ns(5.0e9).contains('s'));
    }
}
