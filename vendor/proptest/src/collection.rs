//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate vectors whose elements come from `element` and whose
/// length is uniform in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`; up to `size.end - 1` draws are inserted,
/// so duplicates may make the set smaller than the drawn length.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate ordered sets whose elements come from `element`.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty size range");
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_elements() {
        let mut rng = TestRng::new(10);
        let s = vec(5u8..8, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| (5..8).contains(&e)));
        }
    }

    #[test]
    fn btree_set_is_bounded() {
        let mut rng = TestRng::new(11);
        let s = btree_set(1u8..=24, 0..10);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 10);
            assert!(set.iter().all(|&e| (1..=24).contains(&e)));
        }
    }
}
