//! Optional-value strategy: `option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Option<T>`.
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generate `Some` values from `inner` about three quarters of the
/// time, `None` otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_yields_both_variants() {
        let mut rng = TestRng::new(12);
        let s = of(0usize..6);
        let values: Vec<Option<usize>> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().flatten().all(|&v| v < 6));
    }
}
