//! Offline, std-only stand-in for the subset of the `proptest` 1.x API
//! this workspace uses.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors a minimal property-testing harness instead of
//! the real crate: the [`proptest!`] macro (mixed `name in strategy`
//! and `name: Type` parameters, optional `#![proptest_config(..)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`, a [`Strategy`]
//! trait with `prop_map`, integer-range / tuple / collection / option /
//! character-class-regex strategies, and [`arbitrary::any`]. Cases are
//! generated from a fixed deterministic seed; there is no shrinking —
//! failures report the case index so they can be replayed exactly.
//!
//! [`Strategy`]: strategy::Strategy

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Each `fn` inside the block becomes a
/// `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!({$crate::test_runner::ProptestConfig::default()} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expand each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ({$cfg:expr}) => {};
    ({$cfg:expr} $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!({$cfg} {$body} [] [] $($params)*);
        }
        $crate::__proptest_items!({$cfg} $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: munch the parameter list
/// into a tuple pattern and a tuple of strategies, then run.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ({$cfg:expr} {$body:block} [$($pat:ident)*] [$($strat:expr)*]) => {{
        let __config = $cfg;
        let __strategy = ($($strat,)*);
        let mut __runner = $crate::test_runner::TestRunner::new(__config);
        __runner.run(&__strategy, |($($pat,)*)| {
            $body
            ::std::result::Result::Ok(())
        });
    }};
    ({$cfg:expr} {$body:block} [$($pat:ident)*] [$($strat:expr)*] $name:ident in $s:expr) => {
        $crate::__proptest_case!({$cfg} {$body} [$($pat)* $name] [$($strat)* $s]);
    };
    ({$cfg:expr} {$body:block} [$($pat:ident)*] [$($strat:expr)*] $name:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_case!({$cfg} {$body} [$($pat)* $name] [$($strat)* $s] $($rest)*);
    };
    ({$cfg:expr} {$body:block} [$($pat:ident)*] [$($strat:expr)*] $name:ident : $ty:ty) => {
        $crate::__proptest_case!(
            {$cfg} {$body} [$($pat)* $name] [$($strat)* $crate::arbitrary::any::<$ty>()]
        );
    };
    ({$cfg:expr} {$body:block} [$($pat:ident)*] [$($strat:expr)*] $name:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_case!(
            {$cfg} {$body} [$($pat)* $name] [$($strat)* $crate::arbitrary::any::<$ty>()] $($rest)*
        );
    };
}

/// Assert a condition inside a property test; on failure the current
/// case fails with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Assert two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` == `{:?}`: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_generate(data: Vec<u8>, salt: u64, flag: bool) {
            prop_assert!(data.len() <= 64);
            let _ = salt;
            prop_assert!(flag || !flag);
        }

        /// Doc comments before the test attribute must pass through.
        #[test]
        fn mixed_params(
            n in 3u32..10,
            pair in (0u8..4, 1i64..=5),
            set in crate::collection::btree_set(1u8..=24, 0..10),
            word in "[a-z]{1,8}",
            maybe in crate::option::of(0usize..6),
        ) {
            prop_assert!((3..10).contains(&n), "n out of range: {}", n);
            prop_assert!(pair.0 < 4 && (1..=5).contains(&pair.1));
            prop_assert!(set.len() < 10);
            prop_assert!(set.iter().all(|&v| (1..=24).contains(&v)));
            prop_assert!(!word.is_empty() && word.len() <= 8);
            prop_assert!(word.bytes().all(|b| b.is_ascii_lowercase()));
            if let Some(v) = maybe {
                prop_assert!(v < 6);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_is_respected(v in crate::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert_ne!(v.len(), 99);
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_number() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(5));
        runner.run(&(0u8..10,), |(x,)| {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }

    proptest! {
        #[test]
        fn prop_map_composes(v in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 100);
        }
    }
}
