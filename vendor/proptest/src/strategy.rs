//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// `&str` patterns act as a character-class regex strategy. Only the
/// subset actually used in this workspace is supported: literal
/// characters, `[a-z08]`-style classes, and `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        for c in chars[j]..=chars[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                set
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                panic!(
                    "unsupported regex feature {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition"),
                    n.trim().parse::<usize>().expect("bad repetition"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad repetition");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = TestRng::new(5);
        let s = 1u8..=3;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = TestRng::new(6);
        let s = 0u64..u64::MAX;
        for _ in 0..10 {
            let _ = s.generate(&mut rng);
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut rng = TestRng::new(7);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let t = "x[0-9]{2}".generate(&mut rng);
            assert_eq!(t.len(), 3);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::new(8);
        let s = (1u32..10).prop_map(|v| v * 100);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert_eq!(v % 100, 0);
            assert!(v >= 100 && v < 1000);
        }
    }
}
