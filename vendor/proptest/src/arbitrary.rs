//! `any::<T>()` and the [`Arbitrary`] trait behind it.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Vec<T> {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let len = rng.below(65) as usize;
        (0..len).map(|_| T::arbitrary(rng)).collect()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::new(9);
        let bools = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..50 {
            seen[bools.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);

        let vecs = any::<Vec<u8>>();
        let lens: Vec<usize> = (0..20).map(|_| vecs.generate(&mut rng).len()).collect();
        assert!(lens.iter().any(|&l| l > 0));
        assert!(lens.iter().all(|&l| l <= 64));
    }
}
