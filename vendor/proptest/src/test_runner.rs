//! Case generation and execution.

use crate::strategy::Strategy;

/// Per-block configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator feeding the strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a fixed seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs a strategy-driven test body over many generated cases.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

/// Fixed base seed: cases are reproducible run-to-run.
const BASE_SEED: u64 = 0x70_72_6f_70_74_65_73_74; // "proptest"

impl TestRunner {
    /// Create a runner for one test.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner {
            config,
            rng: TestRng::new(BASE_SEED),
        }
    }

    /// Generate `config.cases` inputs and run the body on each,
    /// panicking on the first failure with the case index.
    pub fn run<S, F>(&mut self, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), String>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            if let Err(msg) = body(value) {
                panic!("proptest case {case}/{} failed: {msg}", self.config.cases);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_runs_exactly_cases_times() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(37));
        let mut n = 0u32;
        runner.run(&(0u8..10,), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 37);
    }
}
