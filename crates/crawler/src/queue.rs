//! The capture queue with Netograph's deduplication rules.
//!
//! §3.4: "We skip a URL if we have captured the same domain in the last
//! hour or the precise URL in the last 48 hours. This applies to about
//! 40 % of all submitted URLs."

use consent_httpsim::split_url;
use consent_psl::PublicSuffixList;
use std::collections::HashMap;

/// Timestamp in seconds since the simulation epoch.
pub type Ts = i64;

/// Seconds in one hour / 48 hours.
const DOMAIN_WINDOW: Ts = 3_600;
const URL_WINDOW: Ts = 48 * 3_600;

/// Queue admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// URL accepted into the capture queue.
    Accepted,
    /// Skipped: same registrable domain captured within the last hour.
    SkippedDomain,
    /// Skipped: identical URL captured within the last 48 hours.
    SkippedUrl,
}

/// Dedup state over the submission stream.
pub struct DedupQueue {
    psl: PublicSuffixList,
    last_domain: HashMap<String, Ts>,
    last_url: HashMap<String, Ts>,
    accepted: u64,
    skipped_domain: u64,
    skipped_url: u64,
}

impl DedupQueue {
    /// Create an empty queue using the embedded PSL.
    pub fn new() -> DedupQueue {
        DedupQueue {
            psl: PublicSuffixList::embedded(),
            last_domain: HashMap::new(),
            last_url: HashMap::new(),
            accepted: 0,
            skipped_domain: 0,
            skipped_url: 0,
        }
    }

    /// Offer a URL at time `now`. Submissions must arrive in
    /// non-decreasing time order.
    pub fn offer(&mut self, url: &str, now: Ts) -> Admission {
        let decision = self.decide(url, now);
        if consent_telemetry::enabled() {
            let label = match decision {
                Admission::Accepted => "Accepted",
                Admission::SkippedDomain => "SkippedDomain",
                Admission::SkippedUrl => "SkippedUrl",
            };
            consent_telemetry::count_labeled("queue.offer", &[("decision", label)], 1);
            consent_telemetry::gauge_set("queue.tracked_urls", self.last_url.len() as i64);
        }
        decision
    }

    fn decide(&mut self, url: &str, now: Ts) -> Admission {
        if let Some(&t) = self.last_url.get(url) {
            if now - t < URL_WINDOW {
                self.skipped_url += 1;
                return Admission::SkippedUrl;
            }
        }
        let (host, _) = split_url(url);
        let domain = self
            .psl
            .registrable_domain(&host)
            .unwrap_or_else(|| host.clone());
        if let Some(&t) = self.last_domain.get(&domain) {
            if now - t < DOMAIN_WINDOW {
                self.skipped_domain += 1;
                return Admission::SkippedDomain;
            }
        }
        self.last_url.insert(url.to_owned(), now);
        self.last_domain.insert(domain, now);
        self.accepted += 1;
        Admission::Accepted
    }

    /// Accepted count.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total skipped (both rules).
    pub fn skipped(&self) -> u64 {
        self.skipped_domain + self.skipped_url
    }

    /// Fraction of submissions skipped (the paper reports ~40 %).
    pub fn skip_rate(&self) -> f64 {
        let total = self.accepted + self.skipped();
        if total == 0 {
            0.0
        } else {
            self.skipped() as f64 / total as f64
        }
    }

    /// Evict state older than the larger window to bound memory during
    /// multi-year runs.
    pub fn compact(&mut self, now: Ts) {
        self.last_url.retain(|_, &mut t| now - t < URL_WINDOW);
        self.last_domain.retain(|_, &mut t| now - t < DOMAIN_WINDOW);
    }
}

impl Default for DedupQueue {
    fn default() -> DedupQueue {
        DedupQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_dedup_48_hours() {
        let mut q = DedupQueue::new();
        assert_eq!(q.offer("https://a.com/x", 0), Admission::Accepted);
        assert_eq!(q.offer("https://a.com/x", 1_000), Admission::SkippedUrl);
        assert_eq!(
            q.offer("https://a.com/x", URL_WINDOW - 1),
            Admission::SkippedUrl
        );
        assert_eq!(q.offer("https://a.com/x", URL_WINDOW), Admission::Accepted);
    }

    #[test]
    fn domain_dedup_one_hour() {
        let mut q = DedupQueue::new();
        assert_eq!(q.offer("https://a.com/x", 0), Admission::Accepted);
        // Different URL, same domain, within the hour.
        assert_eq!(q.offer("https://a.com/y", 30), Admission::SkippedDomain);
        // Subdomain of the same registrable domain is also deduplicated.
        assert_eq!(
            q.offer("https://www.a.com/z", 100),
            Admission::SkippedDomain
        );
        // After an hour, a new URL on the domain is fine.
        assert_eq!(q.offer("https://a.com/y", 3_601), Admission::Accepted);
    }

    #[test]
    fn different_domains_independent() {
        let mut q = DedupQueue::new();
        assert_eq!(q.offer("https://a.com/", 0), Admission::Accepted);
        assert_eq!(q.offer("https://b.com/", 1), Admission::Accepted);
        // Private-suffix domains count separately.
        assert_eq!(q.offer("https://x.github.io/", 2), Admission::Accepted);
        assert_eq!(q.offer("https://y.github.io/", 3), Admission::Accepted);
        assert_eq!(
            q.offer("https://x.github.io/p", 4),
            Admission::SkippedDomain
        );
    }

    #[test]
    fn statistics() {
        let mut q = DedupQueue::new();
        q.offer("https://a.com/", 0);
        q.offer("https://a.com/", 1);
        q.offer("https://a.com/b", 2);
        q.offer("https://c.com/", 3);
        assert_eq!(q.accepted(), 2);
        assert_eq!(q.skipped(), 2);
        assert!((q.skip_rate() - 0.5).abs() < 1e-9);
        assert_eq!(DedupQueue::new().skip_rate(), 0.0);
    }

    #[test]
    fn compaction_preserves_semantics() {
        let mut q = DedupQueue::new();
        q.offer("https://a.com/x", 0);
        q.compact(URL_WINDOW + 10);
        // Old entries evicted: the same URL is admissible again.
        assert_eq!(
            q.offer("https://a.com/x", URL_WINDOW + 20),
            Admission::Accepted
        );
    }
}
