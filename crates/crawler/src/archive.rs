//! Campaign bundles: packing a campaign into a content-addressed
//! archive and replaying analyses from the archive alone.
//!
//! `consent-bundle` provides the container (blobs, manifest, fsck);
//! this module decides *what* a campaign bundle contains and proves the
//! Hantke-et-al. reproducibility property: every `experiments::*`
//! export can be recomputed byte-for-byte from the bundle without
//! re-crawling ([`replay_campaign_bundle`]).
//!
//! # Sections
//!
//! | section         | documents                                        |
//! |-----------------|--------------------------------------------------|
//! | `config`        | `config` — day, seed, ranked domains, vantages   |
//! | `state`         | `meta`, `capture-db`, `dead-letters`, `provenance` (the exact checkpoint section bodies) |
//! | `trace`         | `trace-jsonl` — the causal trace export          |
//! | `observability` | `obs-jsonl`, `alerts-jsonl` when a sampler/watch ran |
//! | `gvl`           | `vendor-list` when a GVL snapshot was supplied   |
//! | `analysis`      | the live run's `experiments::*` exports (provider-supplied) |
//! | `artifacts`     | per-capture request/cookie logs (see below)      |
//!
//! # The content/dynamics split
//!
//! Raw request logs carry RNG-jittered *dynamics* — transfer sizes and
//! timings differ per `(url, day, vantage)` even when the page is
//! structurally unchanged. Archiving each log as one document would
//! make every blob unique and dedup worthless. Instead each capture
//! splits into a **skeleton** (`req/…`: URLs, hosts, statuses,
//! third-party flags) and a **dynamics** document (`req-dyn/…`: sizes
//! and start offsets); cookies split the same way (`cookies/…`
//! names/hosts vs `cookie-values/…` values). The payoff is in the
//! jitter-free capture classes: connection failures, HTTP-451 blocks,
//! and anti-bot interstitials produce byte-identical skeleton *and*
//! dynamics documents every time the same domain is hit — across
//! vantages and across days — and every cookieless capture shares one
//! empty cookie document. On a multi-day × multi-vantage workload those
//! classes collapse into single blobs, which is where the manifest's
//! dedup ratio comes from.

use std::io;
use std::path::Path;

use consent_bundle::{
    first_divergence, pack_verified, read_section, BundleDoc, BundleInput, DivergenceReport,
    Manifest, PackReport, SectionInput, VerifyReport,
};
use consent_httpsim::Capture;
use consent_util::{Day, SeedTree};

use crate::campaign::{CampaignResult, CampaignState, STATE_HEADER};
use crate::dead_letter::vantage_code;
use crate::export::{export as export_db, status_code};

/// First line of the bundle's `config` document.
pub const CONFIG_HEADER: &str = "#consent-bundle-config v1";

/// How many fsck-and-repair rounds a durable pack may take before
/// giving up on the disk.
pub const SCRUB_ROUNDS: u32 = 8;

/// The campaign identity a bundle carries: everything replay needs to
/// re-parameterize the analyses (and a future re-crawl) without the
/// original process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchiveContext {
    /// Campaign day.
    pub day: Day,
    /// Root seed of the campaign's [`SeedTree`].
    pub seed: u64,
    /// Crawled domains in toplist rank order (rank = index + 1) — the
    /// rank strata the market-share analysis is computed over.
    pub domains: Vec<String>,
    /// Vantage codes (see [`vantage_code`]) in campaign column order.
    pub vantages: Vec<String>,
}

impl ArchiveContext {
    /// Build from the arguments a campaign driver already has in hand.
    pub fn from_campaign(
        day: Day,
        domains: &[String],
        vantages: &[consent_httpsim::Vantage],
        seed: &SeedTree,
    ) -> ArchiveContext {
        ArchiveContext {
            day,
            seed: seed.seed(),
            domains: domains.to_vec(),
            vantages: vantages.iter().map(|v| vantage_code(*v)).collect(),
        }
    }

    /// Serialize as the `config` document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(CONFIG_HEADER);
        out.push('\n');
        out.push_str(&format!("day={}\n", self.day));
        out.push_str(&format!("seed={}\n", self.seed));
        for v in &self.vantages {
            out.push_str(&format!("vantage={v}\n"));
        }
        for d in &self.domains {
            out.push_str(&format!("domain={d}\n"));
        }
        out
    }

    /// Parse a `config` document (inverse of [`ArchiveContext::render`]).
    pub fn parse(text: &str) -> Result<ArchiveContext, String> {
        let mut lines = text.lines();
        if lines.next() != Some(CONFIG_HEADER) {
            return Err(format!("bad config header (want {CONFIG_HEADER:?})"));
        }
        let mut day = None;
        let mut seed = None;
        let mut domains = Vec::new();
        let mut vantages = Vec::new();
        for line in lines {
            if let Some(v) = line.strip_prefix("day=") {
                day = Some(v.parse::<Day>().map_err(|e| format!("bad day: {e:?}"))?);
            } else if let Some(v) = line.strip_prefix("seed=") {
                seed = Some(v.parse::<u64>().map_err(|e| format!("bad seed: {e}"))?);
            } else if let Some(v) = line.strip_prefix("vantage=") {
                vantages.push(v.to_string());
            } else if let Some(v) = line.strip_prefix("domain=") {
                domains.push(v.to_string());
            } else {
                return Err(format!("unrecognized config line: {line:?}"));
            }
        }
        Ok(ArchiveContext {
            day: day.ok_or("config missing day")?,
            seed: seed.ok_or("config missing seed")?,
            domains,
            vantages,
        })
    }
}

/// The derived-exports provider: given the re-imported campaign state
/// and the bundle's context, produce `(label, document)` pairs for the
/// `analysis` section. Supplied by `consent-analysis` (the crawler
/// cannot depend on it — the dependency points the other way), wired
/// through here so pack and replay are guaranteed to run the *same*
/// code over the live and the re-imported state.
pub type ExportFn = dyn Fn(&CampaignState, &ArchiveContext) -> Vec<(String, String)> + Send + Sync;

/// The per-invocation artifacts that accompany the campaign state into
/// a bundle. All optional: a bundle of a bare state is still a valid
/// (and replayable) archive.
#[derive(Default)]
pub struct CampaignArtifacts<'a> {
    /// Full captures (request/cookie logs), one result per archived
    /// campaign day — each capture names its own day and vantage, so a
    /// multi-day bundle just appends results. On a resumed campaign the
    /// last incarnation's result covers its own pairs only — analyses
    /// replay from the complete capture-db regardless.
    pub results: Vec<&'a CampaignResult>,
    /// The global trace log's JSONL export.
    pub trace_jsonl: String,
    /// The flight-recorder `OBS` export.
    pub obs_jsonl: Option<String>,
    /// The watchdog `ALERTS` export.
    pub alerts_jsonl: Option<String>,
    /// A GVL snapshot (compact JSON).
    pub gvl_json: Option<String>,
}

fn capture_skeleton(c: &Capture) -> String {
    let mut out = String::from("#consent-requests v1\n");
    out.push_str(&format!(
        "status={} final={} dialog={}\n",
        status_code(c.status),
        c.final_url,
        u8::from(c.dialog_visible)
    ));
    for r in &c.requests {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\n",
            r.url,
            r.host,
            r.status,
            u8::from(r.third_party)
        ));
    }
    out
}

fn capture_dynamics(c: &Capture) -> String {
    let mut out = String::from("#consent-request-dynamics v1\n");
    for r in &c.requests {
        out.push_str(&format!("{}\t{}\n", r.bytes, r.started.as_millis()));
    }
    out
}

fn cookie_names(c: &Capture) -> String {
    let mut out = String::from("#consent-cookies v1\n");
    for k in &c.cookies {
        out.push_str(&format!(
            "{}\t{}\t{}\n",
            k.name,
            k.host,
            u8::from(k.third_party)
        ));
    }
    out
}

fn cookie_values(c: &Capture) -> String {
    let mut out = String::from("#consent-cookie-values v1\n");
    for k in &c.cookies {
        out.push_str(&format!("{}\n", k.value));
    }
    out
}

/// Build the full [`BundleInput`] for one campaign: context, checkpoint
/// section bodies, artifacts (content/dynamics split), and the
/// provider's analysis exports. Pure — the same state and artifacts
/// build the same input, which is what makes packs byte-comparable
/// across thread counts.
pub fn build_bundle_input(
    state: &CampaignState,
    ctx: &ArchiveContext,
    artifacts: &CampaignArtifacts<'_>,
    provider: Option<&ExportFn>,
) -> BundleInput {
    let mut sections = vec![
        SectionInput {
            name: "config".into(),
            docs: vec![BundleDoc::new("config", ctx.render())],
        },
        SectionInput {
            name: "state".into(),
            docs: vec![
                BundleDoc::new(
                    "meta",
                    format!("{STATE_HEADER}\npairs_done={}\n", state.pairs_done),
                ),
                BundleDoc::new("capture-db", export_db(&state.db)),
                BundleDoc::new("dead-letters", state.dead_letters.export()),
                BundleDoc::new("provenance", state.provenance.export()),
            ],
        },
        SectionInput {
            name: "trace".into(),
            docs: vec![BundleDoc::new("trace-jsonl", artifacts.trace_jsonl.clone())],
        },
    ];
    let mut obs_docs = Vec::new();
    if let Some(obs) = &artifacts.obs_jsonl {
        obs_docs.push(BundleDoc::new("obs-jsonl", obs.clone()));
    }
    if let Some(alerts) = &artifacts.alerts_jsonl {
        obs_docs.push(BundleDoc::new("alerts-jsonl", alerts.clone()));
    }
    if !obs_docs.is_empty() {
        sections.push(SectionInput {
            name: "observability".into(),
            docs: obs_docs,
        });
    }
    if let Some(gvl) = &artifacts.gvl_json {
        sections.push(SectionInput {
            name: "gvl".into(),
            docs: vec![BundleDoc::new("vendor-list", gvl.clone())],
        });
    }
    if let Some(provider) = provider {
        sections.push(SectionInput {
            name: "analysis".into(),
            docs: provider(state, ctx)
                .into_iter()
                .map(|(label, body)| BundleDoc::new(label, body))
                .collect(),
        });
    }
    if !artifacts.results.is_empty() {
        let mut docs = Vec::new();
        for result in &artifacts.results {
            for (_, captures) in &result.columns {
                for cc in captures {
                    let c = &cc.capture;
                    let at = format!("{}/{}/{}", c.day, vantage_code(c.vantage), cc.domain);
                    docs.push(BundleDoc::new(format!("req/{at}"), capture_skeleton(c)));
                    docs.push(BundleDoc::new(format!("req-dyn/{at}"), capture_dynamics(c)));
                    docs.push(BundleDoc::new(format!("cookies/{at}"), cookie_names(c)));
                    docs.push(BundleDoc::new(
                        format!("cookie-values/{at}"),
                        cookie_values(c),
                    ));
                }
            }
        }
        sections.push(SectionInput {
            name: "artifacts".into(),
            docs,
        });
    }
    BundleInput {
        meta: vec![
            ("day".into(), ctx.day.to_string()),
            ("seed".into(), ctx.seed.to_string()),
            ("pairs".into(), state.pairs_done.to_string()),
        ],
        sections,
    }
}

/// Pack a campaign into the bundle directory at `dir`, honoring
/// `CONSENT_IO_CHAOS`, with fsck-and-repair scrubbing
/// ([`pack_verified`]): the returned report's fsck is clean or the pack
/// failed.
pub fn pack_campaign_bundle(
    dir: &Path,
    state: &CampaignState,
    ctx: &ArchiveContext,
    artifacts: &CampaignArtifacts<'_>,
    provider: Option<&ExportFn>,
) -> io::Result<(PackReport, VerifyReport)> {
    let store = consent_bundle::open_chaos_bundle(dir)?;
    let input = build_bundle_input(state, ctx, artifacts, provider);
    pack_verified(&store, &input, SCRUB_ROUNDS)
}

/// What a replay proved (or disproved).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayReport {
    /// Pairs in the re-imported state.
    pub pairs: u64,
    /// Documents byte-compared (state re-exports + analysis exports).
    pub docs_compared: u64,
    /// The first divergence, if any. `None` is the reproducibility
    /// proof: every compared export is byte-identical.
    pub divergence: Option<DivergenceReport>,
}

impl ReplayReport {
    /// True when every compared document was byte-identical.
    pub fn ok(&self) -> bool {
        self.divergence.is_none()
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        match &self.divergence {
            None => format!(
                "replay ok: {} pairs, {} documents byte-identical",
                self.pairs, self.docs_compared
            ),
            Some(d) => format!("replay FAILED: {d}"),
        }
    }
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Re-run the campaign analyses from the bundle alone and byte-compare
/// against the archived exports.
///
/// Steps: parse the manifest, re-import the `state` section through
/// [`CampaignState::import`] (the same importer checkpoint recovery
/// uses), re-*export* it and compare against the archived section
/// bodies (proving the state round-trips), then run `provider` over the
/// re-imported state and compare each produced document against the
/// archived `analysis` section. The first mismatch is returned as a
/// [`DivergenceReport`] naming section, document, and line.
pub fn replay_campaign_bundle(dir: &Path, provider: Option<&ExportFn>) -> io::Result<ReplayReport> {
    let _span = consent_telemetry::span("bundle.replay");
    let store = consent_bundle::open_chaos_bundle(dir)?;
    let text = store.read_manifest()?;
    let manifest = Manifest::parse(&text).map_err(|e| invalid(format!("bundle manifest: {e}")))?;

    let config_docs = read_section(&store, &manifest, "config")?;
    let config = config_docs
        .iter()
        .find(|d| d.label == "config")
        .ok_or_else(|| invalid("bundle has no config document".into()))?;
    let ctx =
        ArchiveContext::parse(&config.body).map_err(|e| invalid(format!("bundle config: {e}")))?;

    let state_docs = read_section(&store, &manifest, "state")?;
    let doc = |label: &str| -> io::Result<&str> {
        state_docs
            .iter()
            .find(|d| d.label == label)
            .map(|d| d.body.as_str())
            .ok_or_else(|| invalid(format!("bundle state section missing {label:?}")))
    };
    let archived = [
        ("meta", doc("meta")?),
        ("capture-db", doc("capture-db")?),
        ("dead-letters", doc("dead-letters")?),
        ("provenance", doc("provenance")?),
    ];
    let concatenated: String = archived.iter().map(|(_, body)| *body).collect();
    let state = CampaignState::import(&concatenated).map_err(|e| {
        invalid(format!(
            "bundle state unimportable: line {}: {}",
            e.line, e.message
        ))
    })?;

    let mut report = ReplayReport {
        pairs: state.pairs_done,
        docs_compared: 0,
        divergence: None,
    };
    // Round-trip proof: the re-imported state re-exports to the exact
    // archived section bodies.
    let reexported = [
        (
            "meta",
            format!("{STATE_HEADER}\npairs_done={}\n", state.pairs_done),
        ),
        ("capture-db", export_db(&state.db)),
        ("dead-letters", state.dead_letters.export()),
        ("provenance", state.provenance.export()),
    ];
    'compare: {
        for ((label, want), (_, got)) in archived.iter().zip(reexported.iter()) {
            report.docs_compared += 1;
            if let Some(d) = first_divergence("state", label, want, got) {
                report.divergence = Some(d);
                break 'compare;
            }
        }
        // Analysis proof: the provider over the re-imported state
        // reproduces the archived exports.
        if let Some(provider) = provider {
            let archived_docs = read_section(&store, &manifest, "analysis")?;
            let recomputed = provider(&state, &ctx);
            for doc in &archived_docs {
                report.docs_compared += 1;
                let Some((_, body)) = recomputed.iter().find(|(l, _)| *l == doc.label) else {
                    report.divergence = Some(DivergenceReport {
                        section: "analysis".into(),
                        label: doc.label.clone(),
                        line: 1,
                        expected: doc.body.lines().next().map(str::to_string),
                        actual: None,
                    });
                    break 'compare;
                };
                if let Some(d) = first_divergence("analysis", &doc.label, &doc.body, body) {
                    report.divergence = Some(d);
                    break 'compare;
                }
            }
            if let Some((label, body)) = recomputed
                .iter()
                .find(|(l, _)| !archived_docs.iter().any(|d| d.label == *l))
            {
                report.divergence = Some(DivergenceReport {
                    section: "analysis".into(),
                    label: label.clone(),
                    line: 1,
                    expected: None,
                    actual: body.lines().next().map(str::to_string),
                });
            }
        }
    }
    consent_telemetry::count("bundle.replayed", 1);
    if report.divergence.is_some() {
        consent_telemetry::count("bundle.replay.divergence", 1);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{build_toplist, run_campaign_with, CampaignConfig};
    use crate::resilience::{BreakerConfig, RetryPolicy};
    use consent_bundle::BlobStore;
    use consent_faultsim::FaultProfile;
    use consent_httpsim::Vantage;
    use consent_webgraph::{AdoptionConfig, World, WorldConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-archive-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn quiet() -> CampaignConfig {
        CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        }
    }

    fn small_campaign() -> (CampaignState, CampaignResult, ArchiveContext) {
        let world = World::new(WorldConfig {
            n_sites: 400,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 8, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::us_cloud(), Vantage::eu_cloud()];
        let seed = SeedTree::new(9);
        let run = run_campaign_with(&world, &list, day, &vantages, seed.clone(), &quiet());
        let ctx = ArchiveContext::from_campaign(day, &list, &vantages, &seed);
        (run.state, run.result, ctx)
    }

    #[test]
    fn context_round_trips() {
        let (_, _, ctx) = small_campaign();
        let back = ArchiveContext::parse(&ctx.render()).unwrap();
        assert_eq!(back, ctx);
        assert_eq!(back.vantages, vec!["us-fast-enus", "eu-fast-enus"]);
        assert!(ArchiveContext::parse("#wrong\n").is_err());
        assert!(ArchiveContext::parse(CONFIG_HEADER).is_err(), "missing day");
    }

    #[test]
    fn artifact_split_dedups_across_days_and_vantages() {
        // A workload wide enough to include unreachable, 451-blocked,
        // and anti-bot domains — the capture classes whose request and
        // cookie documents are invariant across days and vantages and
        // therefore collapse into shared blobs.
        let world = World::new(WorldConfig {
            n_sites: 800,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 48, SeedTree::new(7));
        let vantages = [Vantage::us_cloud(), Vantage::eu_cloud()];
        let seed = SeedTree::new(9);
        let days = [Day::from_ymd(2020, 5, 15), Day::from_ymd(2020, 5, 16)];
        let runs: Vec<_> = days
            .iter()
            .map(|&day| run_campaign_with(&world, &list, day, &vantages, seed.clone(), &quiet()))
            .collect();
        let ctx = ArchiveContext::from_campaign(days[1], &list, &vantages, &seed);
        let artifacts = CampaignArtifacts {
            results: runs.iter().map(|r| &r.result).collect(),
            ..CampaignArtifacts::default()
        };
        let input = build_bundle_input(&runs[1].state, &ctx, &artifacts, None);
        let dir = tmp_dir();
        let store = BlobStore::open(&dir).unwrap();
        let report = consent_bundle::pack(&store, &input).unwrap();
        let stats = report.manifest.stats;
        assert!(
            stats.unique_blobs < stats.total_blobs,
            "repeated capture documents must share blobs: {stats:?}"
        );
        assert!(report.dedup_ratio() > 1.0, "{}", report.summary());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn pack_then_replay_round_trips_state() {
        let (state, result, ctx) = small_campaign();
        let artifacts = CampaignArtifacts {
            results: vec![&result],
            trace_jsonl: String::new(),
            obs_jsonl: Some("{\"kind\":\"obs\"}\n".into()),
            alerts_jsonl: None,
            gvl_json: Some("{}".into()),
        };
        let dir = tmp_dir();
        let (pack, fsck) = pack_campaign_bundle(&dir, &state, &ctx, &artifacts, None).unwrap();
        assert!(fsck.clean(), "{}", fsck.render());
        assert!(pack.manifest.section("gvl").is_some());
        let replay = replay_campaign_bundle(&dir, None).unwrap();
        assert!(replay.ok(), "{}", replay.summary());
        assert_eq!(replay.pairs, state.pairs_done);
        assert_eq!(replay.docs_compared, 4, "four state documents");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn replay_runs_the_provider_and_detects_divergence() {
        let (state, _, ctx) = small_campaign();
        // A deterministic stand-in provider (the real one lives in
        // consent-analysis, above this crate in the dependency DAG).
        let provider: Box<ExportFn> = Box::new(|state: &CampaignState, ctx: &ArchiveContext| {
            vec![(
                "summary".to_string(),
                format!(
                    "pairs={}\ndomains={}\n",
                    state.pairs_done,
                    ctx.domains.len()
                ),
            )]
        });
        let dir = tmp_dir();
        pack_campaign_bundle(
            &dir,
            &state,
            &ctx,
            &CampaignArtifacts::default(),
            Some(&*provider),
        )
        .unwrap();
        let replay = replay_campaign_bundle(&dir, Some(&*provider)).unwrap();
        assert!(replay.ok(), "{}", replay.summary());
        assert_eq!(replay.docs_compared, 5);

        // A drifted provider (simulating an analysis-code change) is
        // caught and localized.
        let drifted: Box<ExportFn> = Box::new(|state: &CampaignState, _| {
            vec![(
                "summary".to_string(),
                format!("pairs={}\ndomains=DRIFT\n", state.pairs_done),
            )]
        });
        let replay = replay_campaign_bundle(&dir, Some(&*drifted)).unwrap();
        let d = replay.divergence.expect("divergence detected");
        assert_eq!(
            (d.section.as_str(), d.label.as_str()),
            ("analysis", "summary")
        );
        assert_eq!(d.line, 2);
        assert!(d.expected.unwrap().starts_with("domains="));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn replay_rejects_a_tampered_state_section() {
        let (state, _, ctx) = small_campaign();
        let dir = tmp_dir();
        pack_campaign_bundle(&dir, &state, &ctx, &CampaignArtifacts::default(), None).unwrap();
        // A state whose cursor lies fails the semantic import loudly.
        let store = BlobStore::open(&dir).unwrap();
        let manifest = Manifest::parse(&store.read_manifest().unwrap()).unwrap();
        let meta = &manifest.section("state").unwrap().blobs[0];
        assert_eq!(meta.label, "meta");
        // Rewrite the meta blob in place (bit-rot with a fixed-up CRC
        // is indistinguishable from an honest blob to the container, so
        // this models a *semantic* attack the import layer must catch).
        let forged = format!("{STATE_HEADER}\npairs_done=999\n");
        let addr = consent_bundle::BlobAddr::of(forged.as_bytes());
        store.put(forged.as_bytes()).unwrap();
        let mut m = manifest.clone();
        for s in &mut m.sections {
            for b in &mut s.blobs {
                if b.label == "meta" {
                    b.addr = addr;
                    b.len = forged.len() as u64;
                }
            }
        }
        m.compute_stats();
        store.write_manifest(&m.serialize()).unwrap();
        let err = replay_campaign_bundle(&dir, None).unwrap_err();
        assert!(err.to_string().contains("unimportable"), "{err}");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
