//! The dead-letter record: pairs the campaign gave up on.
//!
//! Every `(domain, vantage)` pair that never produced a usable capture —
//! permanent failures, exhausted transient retries, breaker-opened
//! anti-bot escalations — is recorded here with its full attempt
//! history and final classification, and persisted alongside the
//! [`CaptureDb`](crate::CaptureDb) line format so a longitudinal audit
//! can reconcile what was measured against what was abandoned, §3.5
//! style. Format v2 escapes the separator alphabet in the domain field,
//! so exports round-trip for *any* domain string and malformed lines
//! fail with a structured [`DeadLetterImportError`].

use crate::export::{status_code, status_from};
use crate::resilience::Outcome;
use consent_httpsim::{CaptureStatus, Language, Location, Timing, Vantage};
use consent_util::Day;
use std::fmt;

/// One capture attempt inside a dead-lettered pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttemptRecord {
    /// Day the attempt ran.
    pub day: Day,
    /// Its outcome status.
    pub status: CaptureStatus,
}

/// One abandoned `(domain, vantage)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetter {
    /// Toplist domain of the seed URL.
    pub domain: String,
    /// Toplist rank (1-based).
    pub rank: usize,
    /// The vantage column.
    pub vantage: Vantage,
    /// Every attempt, in schedule order.
    pub attempts: Vec<AttemptRecord>,
    /// Final classification of the pair.
    pub outcome: Outcome,
    /// True if the circuit breaker opened and skipped the remaining
    /// scheduled attempts.
    pub breaker_opened: bool,
}

/// The campaign's dead-letter queue.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeadLetterQueue {
    records: Vec<DeadLetter>,
}

/// Import error for the dead-letter line format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadLetterImportError {
    /// 1-based line number (0 for header problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for DeadLetterImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dead-letter import error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DeadLetterImportError {}

const HEADER: &str = "#consent-dead-letters v2";

/// Escape a field for the tab-separated line format. v2 of the format
/// escapes the separator alphabet (`\t`, `\n`, `\r`) and the escape
/// character itself, so a hostile or garbage domain string can never
/// smuggle extra fields or records into an export.
fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_field`]. Unknown escapes and a trailing lone `\` are
/// format errors, not silently passed through.
fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("bad escape \\{other}")),
            None => return Err("trailing backslash".into()),
        }
    }
    Ok(out)
}

impl DeadLetterQueue {
    /// Empty queue.
    pub fn new() -> DeadLetterQueue {
        DeadLetterQueue::default()
    }

    /// Record an abandoned pair.
    pub fn push(&mut self, letter: DeadLetter) {
        consent_telemetry::count_labeled(
            "campaign.dead_letter",
            &[("outcome", letter.outcome.name())],
            1,
        );
        consent_telemetry::observe(
            "campaign.dead_letter.attempts",
            letter.attempts.len() as u64,
        );
        self.records.push(letter);
    }

    /// All records, in insertion order.
    pub fn records(&self) -> &[DeadLetter] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was abandoned.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records whose breaker opened.
    pub fn breaker_opened(&self) -> impl Iterator<Item = &DeadLetter> {
        self.records.iter().filter(|r| r.breaker_opened)
    }

    /// Serialize to the line format (one record per line, tab-separated,
    /// attempts as `day:status` comma lists).
    pub fn export(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&self.export_from(0));
        out
    }

    /// The record lines of entries `from..` only, without the header —
    /// the body of a dead-letter delta checkpoint section. Appending
    /// these lines to the base export reconstructs the full export,
    /// which is how chain recovery reassembles the queue (STORAGE.md).
    /// Cost is proportional to the records past `from`, never the queue
    /// length. `from` past the end yields an empty string.
    pub fn export_from(&self, from: usize) -> String {
        let mut out = String::new();
        for r in self.records.iter().skip(from) {
            let attempts: Vec<String> = r
                .attempts
                .iter()
                .map(|a| format!("{}:{}", a.day, status_code(a.status)))
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\t{}\n",
                escape_field(&r.domain),
                r.rank,
                vantage_code(r.vantage),
                r.outcome.name(),
                u8::from(r.breaker_opened),
                attempts.join(","),
            ));
        }
        out
    }

    /// Parse the line format back.
    pub fn import(text: &str) -> Result<DeadLetterQueue, DeadLetterImportError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(DeadLetterImportError {
            line: 0,
            message: "empty input".into(),
        })?;
        if header != HEADER {
            return Err(DeadLetterImportError {
                line: 0,
                message: format!("unsupported header {header:?}"),
            });
        }
        let mut queue = DeadLetterQueue::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let err = |message: String| DeadLetterImportError {
                line: i + 1,
                message,
            };
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 6 {
                return Err(err(format!("expected 6 fields, got {}", fields.len())));
            }
            let rank: usize = fields[1]
                .parse()
                .map_err(|e| err(format!("bad rank: {e}")))?;
            let vantage = vantage_from(fields[2])
                .ok_or_else(|| err(format!("bad vantage {:?}", fields[2])))?;
            let outcome = Outcome::from_name(fields[3])
                .ok_or_else(|| err(format!("bad outcome {:?}", fields[3])))?;
            let breaker_opened = match fields[4] {
                "0" => false,
                "1" => true,
                other => return Err(err(format!("bad breaker flag {other:?}"))),
            };
            let mut attempts = Vec::new();
            if !fields[5].is_empty() {
                for part in fields[5].split(',') {
                    let (day, status) = part
                        .split_once(':')
                        .ok_or_else(|| err(format!("bad attempt {part:?}")))?;
                    attempts.push(AttemptRecord {
                        day: day.parse().map_err(|e| err(format!("bad day: {e}")))?,
                        status: status_from(status)
                            .ok_or_else(|| err(format!("bad status {status:?}")))?,
                    });
                }
            }
            let domain = unescape_field(fields[0]).map_err(|e| err(format!("bad domain: {e}")))?;
            // Records go straight into the vec: import must not
            // re-count telemetry that the original run already counted.
            queue.records.push(DeadLetter {
                domain,
                rank,
                vantage,
                attempts,
                outcome,
                breaker_opened,
            });
        }
        Ok(queue)
    }
}

/// Compact stable code for a vantage, e.g. `uni-ext-de`. Shared by the
/// dead-letter and provenance line formats and by trace attributes, so
/// every persistence layer names the six Table 1 columns identically.
pub fn vantage_code(v: Vantage) -> String {
    let loc = match v.location {
        Location::UsCloud => "us",
        Location::EuCloud => "eu",
        Location::EuUniversity => "uni",
    };
    let timing = match v.timing {
        Timing::Aggressive => "fast",
        Timing::Extended => "ext",
    };
    let lang = match v.language {
        Language::EnUs => "enus",
        Language::De => "de",
        Language::EnGb => "engb",
    };
    format!("{loc}-{timing}-{lang}")
}

/// Parse a [`vantage_code`] back into its [`Vantage`].
pub fn vantage_from(code: &str) -> Option<Vantage> {
    let mut parts = code.split('-');
    let location = match parts.next()? {
        "us" => Location::UsCloud,
        "eu" => Location::EuCloud,
        "uni" => Location::EuUniversity,
        _ => return None,
    };
    let timing = match parts.next()? {
        "fast" => Timing::Aggressive,
        "ext" => Timing::Extended,
        _ => return None,
    };
    let language = match parts.next()? {
        "enus" => Language::EnUs,
        "de" => Language::De,
        "engb" => Language::EnGb,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(Vantage {
        location,
        timing,
        language,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> DeadLetterQueue {
        let mut q = DeadLetterQueue::new();
        q.push(DeadLetter {
            domain: "blocked.example".into(),
            rank: 17,
            vantage: Vantage::eu_cloud(),
            attempts: vec![AttemptRecord {
                day: Day::from_ymd(2020, 5, 15),
                status: CaptureStatus::LegallyBlocked,
            }],
            outcome: Outcome::Permanent,
            breaker_opened: false,
        });
        q.push(DeadLetter {
            domain: "fortress.example".into(),
            rank: 203,
            vantage: Vantage::table1_columns()[4],
            attempts: vec![
                AttemptRecord {
                    day: Day::from_ymd(2020, 5, 15),
                    status: CaptureStatus::AntiBotInterstitial,
                },
                AttemptRecord {
                    day: Day::from_ymd(2020, 5, 17),
                    status: CaptureStatus::AntiBotInterstitial,
                },
                AttemptRecord {
                    day: Day::from_ymd(2020, 5, 19),
                    status: CaptureStatus::AntiBotInterstitial,
                },
            ],
            outcome: Outcome::Transient,
            breaker_opened: true,
        });
        q
    }

    #[test]
    fn roundtrip() {
        let q = sample();
        let text = q.export();
        let back = DeadLetterQueue::import(&text).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.export(), text);
        assert_eq!(back.breaker_opened().count(), 1);
        assert_eq!(
            back.breaker_opened().next().unwrap().domain,
            "fortress.example"
        );
    }

    #[test]
    fn vantage_codes_are_unique_and_roundtrip() {
        let mut codes: Vec<String> = Vantage::table1_columns()
            .iter()
            .map(|&v| vantage_code(v))
            .collect();
        for (code, &v) in codes.iter().zip(Vantage::table1_columns().iter()) {
            assert_eq!(vantage_from(code), Some(v));
        }
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 6);
        assert_eq!(vantage_from("us-fast"), None);
        assert_eq!(vantage_from("us-fast-enus-extra"), None);
        assert_eq!(vantage_from("moon-fast-enus"), None);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(DeadLetterQueue::import("").is_err());
        assert!(DeadLetterQueue::import("#nope\n").is_err());
        let h = format!("{HEADER}\n");
        assert!(DeadLetterQueue::import(&format!("{h}too\tfew\n")).is_err());
        assert!(
            DeadLetterQueue::import(&format!("{h}a.com\tNaN\teu-fast-enus\tpermanent\t0\t\n"))
                .is_err()
        );
        assert!(
            DeadLetterQueue::import(&format!("{h}a.com\t1\teu-fast-enus\tmaybe\t0\t\n")).is_err()
        );
        assert!(
            DeadLetterQueue::import(&format!("{h}a.com\t1\teu-fast-enus\tpermanent\t2\t\n"))
                .is_err()
        );
        assert!(DeadLetterQueue::import(&format!(
            "{h}a.com\t1\teu-fast-enus\tpermanent\t0\t2020-05-15~ok\n"
        ))
        .is_err());
        let e = DeadLetterQueue::import(&format!("{h}bad\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn empty_queue_roundtrips() {
        let q = DeadLetterQueue::new();
        let back = DeadLetterQueue::import(&q.export()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.len(), 0);
    }

    fn letter_for(domain: &str) -> DeadLetter {
        DeadLetter {
            domain: domain.into(),
            rank: 9,
            vantage: Vantage::eu_cloud(),
            attempts: Vec::new(),
            outcome: Outcome::Permanent,
            breaker_opened: false,
        }
    }

    #[test]
    fn hostile_domains_cannot_smuggle_fields_or_records() {
        let mut q = DeadLetterQueue::new();
        q.push(letter_for(
            "evil\t1\tco\nfake.example\t2\teu-fast-enus\tpermanent\t0\t",
        ));
        q.push(letter_for("back\\slash.example\r"));
        let text = q.export();
        // Exactly header + 2 records, each still 6 tab-separated fields.
        assert_eq!(text.lines().count(), 3);
        for line in text.lines().skip(1) {
            assert_eq!(line.split('\t').count(), 6);
        }
        let back = DeadLetterQueue::import(&text).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.export(), text);
    }

    #[test]
    fn bad_escapes_are_structured_errors() {
        let h = format!("{HEADER}\n");
        for domain in ["half\\", "bad\\q.example"] {
            let e =
                DeadLetterQueue::import(&format!("{h}{domain}\t1\teu-fast-enus\tpermanent\t0\t\n"))
                    .unwrap_err();
            assert_eq!(e.line, 2, "{domain:?}");
            assert!(
                e.message.contains("bad domain"),
                "{domain:?} -> {}",
                e.message
            );
        }
        // v1 exports (no escaping) are a different format, not silently
        // reinterpreted.
        let e = DeadLetterQueue::import("#consent-dead-letters v1\n").unwrap_err();
        assert!(e.message.contains("unsupported header"));
    }

    proptest! {
        #[test]
        fn prop_exports_roundtrip_any_domain(
            raw in proptest::collection::vec(0usize..10, 0..24),
            rank in 1usize..100_000,
            breaker in proptest::arbitrary::any::<bool>(),
        ) {
            const ALPHABET: [char; 10] =
                ['a', 'z', '0', '.', '-', '_', '\\', '\t', '\n', '\r'];
            let domain: String = raw.iter().map(|&i| ALPHABET[i]).collect();
            let mut q = DeadLetterQueue::new();
            let mut letter = letter_for(&domain);
            letter.rank = rank;
            letter.breaker_opened = breaker;
            letter.attempts.push(AttemptRecord {
                day: Day::from_ymd(2020, 5, 15),
                status: CaptureStatus::HttpError,
            });
            q.push(letter);
            let text = q.export();
            let back = DeadLetterQueue::import(&text).unwrap();
            prop_assert_eq!(&back, &q);
            prop_assert_eq!(back.export(), text);
        }
    }
}
