//! Self-healing supervision of durable checkpoint writes.
//!
//! PR 2/5 hardened the *network* path (retries, breakers) and the
//! *crash* path (CRC manifests, salvage); this module hardens the
//! *storage* path. The durable driver routes every checkpoint write
//! through a [`Supervisor`], which classifies failures
//! ([`classify_io_error`]: `EIO` transient, `ENOSPC` persistent),
//! retries transient ones with capped deterministic backoff out of a
//! per-campaign retry budget, and — when the budget is exhausted or the
//! fault is persistent — descends a **degradation ladder** instead of
//! aborting:
//!
//! 1. [`DegradeLevel::Normal`] — complete checkpoints: five-section
//!    snapshots, or delta sections under
//!    [`CheckpointMode::Delta`](crate::CheckpointMode).
//! 2. [`DegradeLevel::ShedTrace`] — the optional trace section body
//!    (`trace-jsonl`, or `trace-jsonl-delta` in delta mode) is written
//!    empty, shrinking every subsequent write (the trace log is the
//!    largest and only non-essential section; shedding it sacrifices
//!    trace byte-identity on resume, loudly, but never campaign-state
//!    identity — and in delta mode the driver leaves its trace mark in
//!    place, so the next healthy delta re-covers the shed window).
//! 3. [`DegradeLevel::WideCadence`] — the checkpoint interval is
//!    multiplied by [`SupervisorPolicy::cadence_factor`], trading crash
//!    re-crawl window for fewer chances to hit the failing disk.
//! 4. [`DegradeLevel::MemoryOnly`] — durable writes stop entirely; the
//!    campaign finishes in memory and the run ends
//!    [`Degraded`](crate::DurableOutcome::Degraded) with a loud
//!    [`HealthReport`].
//!
//! The ladder only descends, so a campaign always terminates
//! `Complete`, `Degraded(report)`, or `Crashed` — never wedged on a
//! dying disk. Backoff is *recorded, not slept*: the delays a
//! production deployment would wait are accumulated in
//! [`HealthReport::backoff_ms_total`] and the `supervisor.backoff_ms`
//! histogram, keeping fault sweeps fast and byte-identical. Recovery
//! wall time per healed write (first failure → eventual success) is
//! observed into `supervisor.mttr_us`, which the soak bench aggregates
//! into MTTR rows.

use std::fmt;
use std::io;
use std::time::Instant;

use consent_faultsim::{classify_io_error, IoErrorClass};

/// A rung of the degradation ladder, in descent order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeLevel {
    /// Full checkpoints at the configured cadence.
    #[default]
    Normal,
    /// Trace-jsonl section shed (written empty).
    ShedTrace,
    /// Checkpoint cadence widened by the policy's factor.
    WideCadence,
    /// No durable writes at all; the campaign finishes in memory.
    MemoryOnly,
}

impl DegradeLevel {
    /// Ladder position, 0 (healthy) to 3 (memory-only) — also the value
    /// of the `campaign.degrade.level` gauge.
    pub fn gauge(&self) -> i64 {
        match self {
            DegradeLevel::Normal => 0,
            DegradeLevel::ShedTrace => 1,
            DegradeLevel::WideCadence => 2,
            DegradeLevel::MemoryOnly => 3,
        }
    }

    /// Stable lowercase label used in telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeLevel::Normal => "normal",
            DegradeLevel::ShedTrace => "shed-trace",
            DegradeLevel::WideCadence => "wide-cadence",
            DegradeLevel::MemoryOnly => "memory-only",
        }
    }

    fn next(&self) -> Option<DegradeLevel> {
        match self {
            DegradeLevel::Normal => Some(DegradeLevel::ShedTrace),
            DegradeLevel::ShedTrace => Some(DegradeLevel::WideCadence),
            DegradeLevel::WideCadence => Some(DegradeLevel::MemoryOnly),
            DegradeLevel::MemoryOnly => None,
        }
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tunables for the [`Supervisor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Total transient-failure retries allowed per campaign. When the
    /// budget runs dry, further failures descend the ladder instead.
    pub retry_budget: u64,
    /// First backoff delay (logical milliseconds; recorded, not slept).
    pub base_backoff_ms: u64,
    /// Backoff cap; doubling stops here.
    pub max_backoff_ms: u64,
    /// Checkpoint-interval multiplier applied at
    /// [`DegradeLevel::WideCadence`].
    pub cadence_factor: u64,
    /// Attempts to recover state from the store at startup before
    /// abandoning the on-disk history and restarting fresh.
    pub recover_attempts: u64,
}

impl Default for SupervisorPolicy {
    /// 8 retries, 1 ms backoff doubling to 64 ms, 4× cadence widening,
    /// 3 recovery attempts.
    fn default() -> SupervisorPolicy {
        SupervisorPolicy {
            retry_budget: 8,
            base_backoff_ms: 1,
            max_backoff_ms: 64,
            cadence_factor: 4,
            recover_attempts: 3,
        }
    }
}

/// One recorded supervision event: a retry burst, a ladder descent, or
/// an abandoned recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthEvent {
    /// Campaign cursor (`pairs_done`) when the event fired.
    pub pairs_done: u64,
    /// Ladder level *after* the event.
    pub level: DegradeLevel,
    /// What happened and why.
    pub reason: String,
}

/// The loud part of a `Degraded` outcome: everything the supervisor
/// observed and did, renderable for logs and the obs flight report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Final ladder level.
    pub level: DegradeLevel,
    /// Storage faults observed (failed checkpoint/recovery operations).
    pub io_faults: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// The configured retry budget, for context.
    pub retry_budget: u64,
    /// Total logical backoff recorded (what production would have
    /// slept), milliseconds.
    pub backoff_ms_total: u64,
    /// Checkpoint writes skipped in memory-only mode.
    pub writes_skipped: u64,
    /// Every retry burst and ladder descent, in order.
    pub events: Vec<HealthEvent>,
    /// The most recent storage error message.
    pub last_error: Option<String>,
    /// Watchdog alerts that fired during the run (one summary line per
    /// firing transition), annotated by the durable driver when a
    /// `consent-watch` engine is attached.
    pub alerts: Vec<String>,
}

impl HealthReport {
    /// True when the campaign never saw a storage fault.
    pub fn is_healthy(&self) -> bool {
        self.level == DegradeLevel::Normal && self.io_faults == 0
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "level={} io_faults={} retries={}/{} backoff_ms={} writes_skipped={}",
            self.level.label(),
            self.io_faults,
            self.retries,
            self.retry_budget,
            self.backoff_ms_total,
            self.writes_skipped,
        );
        if !self.alerts.is_empty() {
            out.push_str(&format!(" alerts_fired={}", self.alerts.len()));
        }
        out
    }

    /// Multi-line human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("storage health report\n");
        out.push_str(&format!("  {}\n", self.summary()));
        if let Some(err) = &self.last_error {
            out.push_str(&format!("  last error: {err}\n"));
        }
        for e in &self.events {
            out.push_str(&format!(
                "  @{} pairs [{}] {}\n",
                e.pairs_done,
                e.level.label(),
                e.reason
            ));
        }
        for a in &self.alerts {
            out.push_str(&format!("  alert: {a}\n"));
        }
        out
    }
}

/// What [`Supervisor::save_with`] did about one checkpoint cut.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaveVerdict {
    /// The write is durable (possibly after retries/descent); carries
    /// the generation number.
    Saved(u64),
    /// Memory-only mode: the write was skipped by design.
    Skipped,
}

/// The self-healing write supervisor. One per durable campaign run.
#[derive(Debug)]
pub struct Supervisor {
    policy: SupervisorPolicy,
    level: DegradeLevel,
    retries_used: u64,
    io_faults: u64,
    backoff_ms_total: u64,
    writes_skipped: u64,
    events: Vec<HealthEvent>,
    last_error: Option<String>,
}

impl Supervisor {
    /// A fresh supervisor at [`DegradeLevel::Normal`].
    pub fn new(policy: SupervisorPolicy) -> Supervisor {
        Supervisor {
            policy,
            level: DegradeLevel::Normal,
            retries_used: 0,
            io_faults: 0,
            backoff_ms_total: 0,
            writes_skipped: 0,
            events: Vec::new(),
            last_error: None,
        }
    }

    /// Current ladder level.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// The policy this supervisor runs under.
    pub fn policy(&self) -> &SupervisorPolicy {
        &self.policy
    }

    /// True when the campaign has left [`DegradeLevel::Normal`] — the
    /// driver maps this to a `Degraded` outcome.
    pub fn degraded(&self) -> bool {
        self.level != DegradeLevel::Normal
    }

    /// Snapshot the health ledger.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            level: self.level,
            io_faults: self.io_faults,
            retries: self.retries_used,
            retry_budget: self.policy.retry_budget,
            backoff_ms_total: self.backoff_ms_total,
            writes_skipped: self.writes_skipped,
            events: self.events.clone(),
            last_error: self.last_error.clone(),
            alerts: Vec::new(),
        }
    }

    fn record_fault(&mut self, err: &io::Error) {
        self.io_faults += 1;
        self.last_error = Some(err.to_string());
        consent_telemetry::count("checkpoint.io_fault", 1);
    }

    fn descend(&mut self, pairs_done: u64, reason: &str) {
        let Some(next) = self.level.next() else {
            return;
        };
        self.level = next;
        consent_telemetry::gauge_set("campaign.degrade.level", next.gauge());
        consent_telemetry::count_labeled("campaign.degrade", &[("level", next.label())], 1);
        self.events.push(HealthEvent {
            pairs_done,
            level: next,
            reason: reason.to_string(),
        });
    }

    /// Record (never sleep) one capped-exponential backoff delay.
    fn backoff(&mut self) {
        let exp = self.retries_used.saturating_sub(1).min(32);
        let ms = self
            .policy
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.policy.max_backoff_ms);
        self.backoff_ms_total += ms;
        consent_telemetry::observe("supervisor.backoff_ms", ms);
    }

    /// Run one checkpoint write under supervision.
    ///
    /// `attempt` is called with the *current* ladder level (so the
    /// driver can shed the trace section mid-save) and may be called
    /// repeatedly: transient failures retry out of the campaign budget,
    /// persistent failures and budget exhaustion descend the ladder.
    /// Never returns an error — on reaching
    /// [`DegradeLevel::MemoryOnly`] the write is skipped and the
    /// campaign carries on in memory.
    pub fn save_with<F>(&mut self, pairs_done: u64, mut attempt: F) -> SaveVerdict
    where
        F: FnMut(DegradeLevel) -> io::Result<u64>,
    {
        let mut first_fault: Option<Instant> = None;
        loop {
            if self.level == DegradeLevel::MemoryOnly {
                self.writes_skipped += 1;
                consent_telemetry::count("checkpoint.skipped", 1);
                return SaveVerdict::Skipped;
            }
            match attempt(self.level) {
                Ok(generation) => {
                    if let Some(t0) = first_fault {
                        // Healed: recovery time from first failure of
                        // this cut to the durable write.
                        consent_telemetry::observe(
                            "supervisor.mttr_us",
                            t0.elapsed().as_micros() as u64,
                        );
                    }
                    return SaveVerdict::Saved(generation);
                }
                Err(err) => {
                    first_fault.get_or_insert_with(Instant::now);
                    self.record_fault(&err);
                    match classify_io_error(&err) {
                        IoErrorClass::Persistent => {
                            // Retrying a full disk wastes the budget;
                            // descend immediately.
                            self.descend(pairs_done, &format!("persistent storage fault: {err}"));
                        }
                        IoErrorClass::Transient if self.retries_used < self.policy.retry_budget => {
                            self.retries_used += 1;
                            consent_telemetry::count("checkpoint.retry", 1);
                            self.backoff();
                        }
                        IoErrorClass::Transient => {
                            self.descend(
                                pairs_done,
                                &format!(
                                    "retry budget exhausted ({}): {err}",
                                    self.policy.retry_budget
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Run state recovery under supervision: up to
    /// [`SupervisorPolicy::recover_attempts`] tries, then give up on
    /// the on-disk history. Returns `Ok(v)` on success and `Err(last)`
    /// when every attempt failed — the driver then restarts the
    /// campaign from scratch (safe: deterministic re-crawl reproduces
    /// the same final state) after recording a loud event.
    pub fn recover_with<T, F>(&mut self, mut attempt: F) -> Result<T, io::Error>
    where
        F: FnMut() -> io::Result<T>,
    {
        let attempts = self.policy.recover_attempts.max(1);
        let mut last: Option<io::Error> = None;
        for i in 0..attempts {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(err) => {
                    self.record_fault(&err);
                    if i + 1 < attempts {
                        self.retries_used += 1;
                        consent_telemetry::count("checkpoint.retry", 1);
                        self.backoff();
                    }
                    last = Some(err);
                }
            }
        }
        let err = last.expect("attempts >= 1");
        self.events.push(HealthEvent {
            pairs_done: 0,
            level: self.level,
            reason: format!("recovery abandoned after {attempts} attempts: {err}"),
        });
        Err(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eio() -> io::Error {
        io::Error::other("EIO: injected i/o error at op 0 (sync)")
    }

    fn enospc() -> io::Error {
        io::Error::other("ENOSPC: injected out-of-space at op 0 (write)")
    }

    #[test]
    fn clean_save_stays_normal() {
        let mut sup = Supervisor::new(SupervisorPolicy::default());
        let v = sup.save_with(10, |_| Ok(7));
        assert_eq!(v, SaveVerdict::Saved(7));
        assert_eq!(sup.level(), DegradeLevel::Normal);
        assert!(sup.report().is_healthy());
    }

    #[test]
    fn transient_fault_retries_and_heals() {
        let mut sup = Supervisor::new(SupervisorPolicy::default());
        let mut calls = 0;
        let v = sup.save_with(10, |_| {
            calls += 1;
            if calls < 3 {
                Err(eio())
            } else {
                Ok(4)
            }
        });
        assert_eq!(v, SaveVerdict::Saved(4));
        assert_eq!(sup.level(), DegradeLevel::Normal, "healed, not degraded");
        let r = sup.report();
        assert_eq!((r.io_faults, r.retries), (2, 2));
        assert!(r.backoff_ms_total > 0, "backoff recorded");
    }

    #[test]
    fn persistent_fault_descends_without_burning_budget() {
        let mut sup = Supervisor::new(SupervisorPolicy::default());
        let mut levels_seen = Vec::new();
        let v = sup.save_with(10, |level| {
            levels_seen.push(level);
            match level {
                DegradeLevel::Normal => Err(enospc()),
                _ => Ok(9),
            }
        });
        assert_eq!(v, SaveVerdict::Saved(9));
        assert_eq!(sup.level(), DegradeLevel::ShedTrace);
        assert_eq!(sup.report().retries, 0, "no retries spent on ENOSPC");
        assert_eq!(
            levels_seen,
            vec![DegradeLevel::Normal, DegradeLevel::ShedTrace],
            "attempt sees the post-descent level"
        );
    }

    #[test]
    fn budget_exhaustion_walks_the_whole_ladder_and_terminates() {
        let policy = SupervisorPolicy {
            retry_budget: 2,
            ..SupervisorPolicy::default()
        };
        let mut sup = Supervisor::new(policy);
        let mut calls = 0u64;
        let v = sup.save_with(5, |_| {
            calls += 1;
            Err(eio())
        });
        // 3 attempts at Normal (initial + 2 retries), then one failing
        // attempt per remaining rung before MemoryOnly skips.
        assert_eq!(v, SaveVerdict::Skipped);
        assert_eq!(sup.level(), DegradeLevel::MemoryOnly);
        assert_eq!(calls, 3 + 2, "terminates instead of wedging");
        let r = sup.report();
        assert_eq!(r.retries, 2);
        assert_eq!(r.events.len(), 3, "one event per descent:\n{}", r.render());
        assert!(r.render().contains("retry budget exhausted"));
    }

    #[test]
    fn memory_only_skips_all_subsequent_writes() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 0,
            ..SupervisorPolicy::default()
        });
        assert_eq!(sup.save_with(1, |_| Err(eio())), SaveVerdict::Skipped);
        let mut called = false;
        let v = sup.save_with(2, |_| {
            called = true;
            Ok(1)
        });
        assert_eq!(v, SaveVerdict::Skipped);
        assert!(!called, "memory-only never touches the disk again");
        assert_eq!(sup.report().writes_skipped, 2);
    }

    #[test]
    fn recover_retries_then_gives_up() {
        let mut sup = Supervisor::new(SupervisorPolicy::default());
        let mut calls = 0;
        let out: Result<(), _> = sup.recover_with(|| {
            calls += 1;
            Err(eio())
        });
        assert!(out.is_err());
        assert_eq!(calls, 3, "default recover_attempts");
        assert!(sup
            .report()
            .events
            .iter()
            .any(|e| e.reason.contains("recovery abandoned")));

        let mut sup = Supervisor::new(SupervisorPolicy::default());
        let mut calls = 0;
        let out = sup.recover_with(|| {
            calls += 1;
            if calls < 2 {
                Err(eio())
            } else {
                Ok(41)
            }
        });
        assert_eq!(out.unwrap(), 41);
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let policy = SupervisorPolicy {
            retry_budget: 20,
            base_backoff_ms: 1,
            max_backoff_ms: 8,
            ..SupervisorPolicy::default()
        };
        let run = || {
            let mut sup = Supervisor::new(policy);
            let mut calls = 0;
            sup.save_with(0, |_| {
                calls += 1;
                if calls <= 10 {
                    Err(eio())
                } else {
                    Ok(1)
                }
            });
            sup.report().backoff_ms_total
        };
        let total = run();
        // 1+2+4+8 then 8×6 = 63: doubling from base, capped at 8.
        assert_eq!(total, 63);
        assert_eq!(run(), total, "backoff totals are pure");
    }

    #[test]
    fn report_renders_summary_and_events() {
        let mut sup = Supervisor::new(SupervisorPolicy {
            retry_budget: 0,
            ..SupervisorPolicy::default()
        });
        sup.save_with(3, |level| match level {
            DegradeLevel::Normal => Err(enospc()),
            _ => Ok(1),
        });
        let r = sup.report();
        assert!(!r.is_healthy());
        assert!(r.summary().contains("level=shed-trace"), "{}", r.summary());
        assert!(r.render().contains("persistent storage fault"));
        assert_eq!(r.events[0].pairs_done, 3);
    }
}
