//! Failure classification, retry policy, and the per-domain circuit
//! breaker.
//!
//! §3.2 retries unsuccessful toplist captures "three times over a week";
//! §3.5 taxonomizes what "unsuccessful" means. This module makes both
//! explicit: a [`CaptureStatus`] is classified into an [`Outcome`]
//! (success / degraded / transient / permanent), a [`RetryPolicy`] turns
//! the §3.2 schedule into an explicit day list that provably fits the
//! one-week window, and a [`CircuitBreaker`] stops hammering domains
//! whose anti-bot protection escalates.

use consent_httpsim::CaptureStatus;
use consent_util::Day;

/// How a capture attempt's status bears on retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// Clean capture; no retry.
    Success,
    /// Usable but incomplete (timeout cut-off, truncated record). Kept
    /// and counted separately; retried only if the policy opts in.
    Degraded,
    /// Nothing usable, but a later attempt may succeed (connection
    /// reset, anti-bot interstitial). Retried on the §3.2 schedule.
    Transient,
    /// Deterministically unsuccessful (HTTP 451 geo-block, origin HTTP
    /// error, dead host). Retrying cannot help and must not happen.
    Permanent,
    /// The capture code itself panicked and the executor contained the
    /// unwind. The pair is dead-lettered with this classification; it is
    /// never retried in-run because the attempt history is gone.
    Panic,
}

impl Outcome {
    /// Classify a capture status.
    pub fn classify(status: CaptureStatus) -> Outcome {
        match status {
            CaptureStatus::Ok => Outcome::Success,
            CaptureStatus::Timeout | CaptureStatus::Truncated => Outcome::Degraded,
            CaptureStatus::ConnectionReset | CaptureStatus::AntiBotInterstitial => {
                Outcome::Transient
            }
            CaptureStatus::LegallyBlocked
            | CaptureStatus::HttpError
            | CaptureStatus::ConnectionFailed => Outcome::Permanent,
        }
    }

    /// Stable name for telemetry labels and dead-letter records.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Success => "success",
            Outcome::Degraded => "degraded",
            Outcome::Transient => "transient",
            Outcome::Permanent => "permanent",
            Outcome::Panic => "panic",
        }
    }

    /// Parse the [`name`](Self::name) form back.
    pub fn from_name(name: &str) -> Option<Outcome> {
        Some(match name {
            "success" => Outcome::Success,
            "degraded" => Outcome::Degraded,
            "transient" => Outcome::Transient,
            "permanent" => Outcome::Permanent,
            "panic" => Outcome::Panic,
            _ => return None,
        })
    }
}

/// Day spacing between consecutive attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetrySpacing {
    /// A fixed gap of `n` sim-days between attempts (§3.2's cadence is
    /// two days: attempts on day, day+2, day+4, day+6).
    EveryDays(i32),
    /// Exponential backoff in sim-days: gaps of `base`, `2·base`,
    /// `4·base`, … between consecutive attempts.
    ExponentialDays(i32),
}

/// When and how often to retry a capture.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (§3.2: 1 + 3 retries = 4).
    pub max_attempts: u8,
    /// Spacing between attempt days.
    pub spacing: RetrySpacing,
    /// All attempts must fall within `[day, day + window_days]`. The
    /// schedule is validated against this window — a drifting schedule
    /// is a bug, not a silent widening of the measurement.
    pub window_days: i32,
    /// Also retry degraded (usable-but-incomplete) captures. The paper
    /// keeps them — degraded content still counts — so this is off by
    /// default.
    pub retry_degraded: bool,
}

impl RetryPolicy {
    /// The §3.2 policy: four attempts spaced two days apart, all within
    /// one week.
    pub fn paper() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            spacing: RetrySpacing::EveryDays(2),
            window_days: 7,
            retry_degraded: false,
        }
    }

    /// A single attempt, no retries (the social-feed platform's mode).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            spacing: RetrySpacing::EveryDays(1),
            window_days: 7,
            retry_degraded: false,
        }
    }

    /// The explicit attempt schedule starting at `day`.
    ///
    /// # Panics
    /// Panics if any attempt would fall outside the policy window —
    /// §3.2's "three times over a week" is a hard bound on how stale a
    /// snapshot's retries may be.
    pub fn schedule(&self, day: Day) -> Vec<Day> {
        let mut days = Vec::with_capacity(usize::from(self.max_attempts));
        let mut offset = 0i32;
        for attempt in 0..i32::from(self.max_attempts) {
            if attempt > 0 {
                offset += match self.spacing {
                    RetrySpacing::EveryDays(n) => n,
                    RetrySpacing::ExponentialDays(base) => base << (attempt - 1).min(30),
                };
            }
            assert!(
                offset <= self.window_days,
                "attempt {attempt} at day+{offset} exceeds the {}-day retry window",
                self.window_days
            );
            days.push(day + offset);
        }
        days
    }

    /// Whether `outcome` warrants another attempt under this policy.
    pub fn should_retry(&self, outcome: Outcome) -> bool {
        match outcome {
            Outcome::Success => false,
            Outcome::Permanent => false,
            Outcome::Panic => false,
            Outcome::Transient => true,
            Outcome::Degraded => self.retry_degraded,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::paper()
    }
}

/// Circuit-breaker configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Open the breaker after this many consecutive anti-bot
    /// interstitials from one `(domain, vantage)` pair. `0` disables
    /// the breaker.
    pub antibot_threshold: u8,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            antibot_threshold: 3,
        }
    }
}

/// Breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Attempts flow normally.
    Closed,
    /// The domain's protection escalated; remaining attempts are
    /// skipped and the pair goes to the dead-letter record.
    Open,
}

/// A per-`(domain, vantage)` circuit breaker over one retry sequence.
/// Tracks consecutive anti-bot interstitials; once the threshold is
/// reached the breaker opens and stays open.
#[derive(Clone, Copy, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    consecutive_antibot: u8,
    state: BreakerState,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            consecutive_antibot: 0,
            state: BreakerState::Closed,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// True once the breaker has opened.
    pub fn is_open(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// Record one attempt's status; returns `true` if this attempt
    /// opened the breaker.
    pub fn record(&mut self, status: CaptureStatus) -> bool {
        if self.config.antibot_threshold == 0 || self.is_open() {
            return false;
        }
        if status == CaptureStatus::AntiBotInterstitial {
            self.consecutive_antibot += 1;
            if self.consecutive_antibot >= self.config.antibot_threshold {
                self.state = BreakerState::Open;
                return true;
            }
        } else {
            self.consecutive_antibot = 0;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_every_status() {
        assert_eq!(Outcome::classify(CaptureStatus::Ok), Outcome::Success);
        assert_eq!(Outcome::classify(CaptureStatus::Timeout), Outcome::Degraded);
        assert_eq!(
            Outcome::classify(CaptureStatus::Truncated),
            Outcome::Degraded
        );
        assert_eq!(
            Outcome::classify(CaptureStatus::ConnectionReset),
            Outcome::Transient
        );
        assert_eq!(
            Outcome::classify(CaptureStatus::AntiBotInterstitial),
            Outcome::Transient
        );
        for s in [
            CaptureStatus::LegallyBlocked,
            CaptureStatus::HttpError,
            CaptureStatus::ConnectionFailed,
        ] {
            assert_eq!(Outcome::classify(s), Outcome::Permanent, "{s:?}");
        }
    }

    #[test]
    fn outcome_names_roundtrip() {
        for o in [
            Outcome::Success,
            Outcome::Degraded,
            Outcome::Transient,
            Outcome::Permanent,
            Outcome::Panic,
        ] {
            assert_eq!(Outcome::from_name(o.name()), Some(o));
        }
        assert_eq!(Outcome::from_name("weird"), None);
    }

    #[test]
    fn paper_schedule_fits_the_week() {
        let day = Day::from_ymd(2020, 5, 15);
        let sched = RetryPolicy::paper().schedule(day);
        assert_eq!(sched, vec![day, day + 2, day + 4, day + 6]);
        assert!(sched.iter().all(|&d| d - day <= 7));
    }

    #[test]
    fn exponential_schedule_fits_the_week() {
        let day = Day::from_ymd(2020, 5, 15);
        let policy = RetryPolicy {
            max_attempts: 4,
            spacing: RetrySpacing::ExponentialDays(1),
            window_days: 7,
            retry_degraded: false,
        };
        // Gaps 1, 2, 4 → days +0, +1, +3, +7: exactly the window edge.
        assert_eq!(policy.schedule(day), vec![day, day + 1, day + 3, day + 7]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 7-day retry window")]
    fn drifting_schedule_panics() {
        let policy = RetryPolicy {
            max_attempts: 5,
            spacing: RetrySpacing::EveryDays(2),
            window_days: 7,
            retry_degraded: false,
        };
        // Attempt 5 would land on day+8 — outside §3.2's week.
        policy.schedule(Day::from_ymd(2020, 5, 15));
    }

    #[test]
    fn retry_decisions() {
        let p = RetryPolicy::paper();
        assert!(!p.should_retry(Outcome::Success));
        assert!(!p.should_retry(Outcome::Permanent));
        assert!(!p.should_retry(Outcome::Panic));
        assert!(!p.should_retry(Outcome::Degraded));
        assert!(p.should_retry(Outcome::Transient));
        let eager = RetryPolicy {
            retry_degraded: true,
            ..p
        };
        assert!(eager.should_retry(Outcome::Degraded));
    }

    #[test]
    fn breaker_opens_on_consecutive_antibot() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        assert!(!b.record(CaptureStatus::AntiBotInterstitial));
        assert!(!b.record(CaptureStatus::AntiBotInterstitial));
        assert!(b.record(CaptureStatus::AntiBotInterstitial));
        assert!(b.is_open());
        // Stays open; further records don't re-trigger.
        assert!(!b.record(CaptureStatus::AntiBotInterstitial));
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn breaker_resets_on_other_statuses() {
        let mut b = CircuitBreaker::new(BreakerConfig::default());
        b.record(CaptureStatus::AntiBotInterstitial);
        b.record(CaptureStatus::AntiBotInterstitial);
        b.record(CaptureStatus::ConnectionReset); // streak broken
        b.record(CaptureStatus::AntiBotInterstitial);
        b.record(CaptureStatus::AntiBotInterstitial);
        assert!(!b.is_open());
        b.record(CaptureStatus::AntiBotInterstitial);
        assert!(b.is_open());
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            antibot_threshold: 0,
        });
        for _ in 0..10 {
            assert!(!b.record(CaptureStatus::AntiBotInterstitial));
        }
        assert!(!b.is_open());
    }
}
