//! The end-to-end social-feed measurement platform (Figure 3).
//!
//! Feed → dedup queue → vantage assignment (50 % US cloud / 50 % EU
//! cloud, §3.2) → browser capture → CMP detection → capture database.
//! This is the pipeline behind the paper's 161M-capture dataset; ours is
//! volume-scaled by `FeedConfig::urls_per_day` but structurally
//! identical.

use crate::capture_db::{CaptureDb, CmpSet};
use crate::feed::{Feed, FeedConfig, FeedItem};
use crate::queue::{Admission, DedupQueue};
use consent_faultsim::{FaultProfile, FaultyEngine};
use consent_fingerprint::Detector;
use consent_httpsim::{CaptureOptions, Vantage};
use consent_psl::PublicSuffixList;
use consent_util::{Day, SeedTree};
use consent_webgraph::World;
use rand::Rng;

/// Aggregate statistics of a platform run (§3.4 methodology numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// URLs seen in the feed.
    pub submitted: u64,
    /// URLs skipped by deduplication (paper: ~40 %).
    pub skipped: u64,
    /// Captures performed.
    pub captured: u64,
    /// Captures assigned to the US cloud.
    pub us_captures: u64,
    /// Captures assigned to the EU cloud.
    pub eu_captures: u64,
    /// URLs from Twitter (paper: ~80 %).
    pub twitter_items: u64,
}

impl RunStats {
    /// Dedup skip rate.
    pub fn skip_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.skipped as f64 / self.submitted as f64
        }
    }

    /// Twitter share of feed items.
    pub fn twitter_share(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.twitter_items as f64 / self.submitted as f64
        }
    }
}

/// The measurement platform.
pub struct Platform<'w> {
    engine: FaultyEngine<'w>,
    feed: Feed<'w>,
    detector: Detector,
    psl: PublicSuffixList,
    seed: SeedTree,
}

impl<'w> Platform<'w> {
    /// Assemble the platform over a world. The capture engine is wrapped
    /// by the chaos layer configured via `CONSENT_CHAOS` (a no-op — and
    /// byte-identical to the unwrapped engine — when the variable is
    /// unset).
    pub fn new(world: &'w World, feed_config: FeedConfig, seed: SeedTree) -> Platform<'w> {
        Platform::with_faults(world, feed_config, FaultProfile::from_env(), seed)
    }

    /// Assemble the platform with an explicit fault profile.
    pub fn with_faults(
        world: &'w World,
        feed_config: FeedConfig,
        profile: FaultProfile,
        seed: SeedTree,
    ) -> Platform<'w> {
        Platform {
            engine: FaultyEngine::from_world(world, profile, seed),
            feed: Feed::new(world, feed_config, seed.child("feed")),
            detector: Detector::hostname_only(),
            psl: PublicSuffixList::embedded(),
            seed: seed.child("platform"),
        }
    }

    /// Run the pipeline over `[start, end)`, returning the capture
    /// database and run statistics.
    pub fn run(&self, start: Day, end: Day) -> (CaptureDb, RunStats) {
        let mut db = CaptureDb::new();
        let mut stats = RunStats::default();
        let mut queue = DedupQueue::new();
        let mut assign_rng = self.seed.child("assign").rng();
        for day in start.days_until(end) {
            for item in self.feed.day_items(day) {
                stats.submitted += 1;
                if item.source == crate::feed::FeedSource::Twitter {
                    stats.twitter_items += 1;
                }
                let ts = i64::from(day.0) * 86_400 + i64::from(item.seconds);
                match queue.offer(&item.url, ts) {
                    Admission::Accepted => {
                        self.capture_one(&item, &mut assign_rng, &mut db, &mut stats);
                    }
                    _ => stats.skipped += 1,
                }
            }
            queue.compact(i64::from(day.0 + 1) * 86_400);
        }
        (db, stats)
    }

    fn capture_one(
        &self,
        item: &FeedItem,
        assign_rng: &mut rand::rngs::StdRng,
        db: &mut CaptureDb,
        stats: &mut RunStats,
    ) {
        // §3.2: each URL is assigned randomly; 50 % of crawls from the EU.
        let vantage = if assign_rng.gen::<bool>() {
            stats.eu_captures += 1;
            Vantage::eu_cloud()
        } else {
            stats.us_captures += 1;
            Vantage::us_cloud()
        };
        let capture = self
            .engine
            .capture(&item.url, item.day, vantage, CaptureOptions::default());
        let cmps = CmpSet::from_iter(self.detector.detect(&capture));
        db.ingest(&capture, cmps, &self.psl);
        stats.captured += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 30_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn run_days(w: &World, urls_per_day: usize, start: Day, days: i32) -> (CaptureDb, RunStats) {
        let config = FeedConfig {
            urls_per_day,
            ..FeedConfig::default()
        };
        let platform = Platform::new(w, config, SeedTree::new(3));
        platform.run(start, start + days)
    }

    #[test]
    fn pipeline_produces_captures() {
        let w = world();
        let (db, stats) = run_days(&w, 300, Day::from_ymd(2020, 5, 10), 3);
        assert!(stats.captured > 300, "captured {}", stats.captured);
        assert_eq!(stats.captured, db.len());
        assert!(db.domain_count() > 100);
        // Twitter share ~80 %.
        assert!((stats.twitter_share() - 0.8).abs() < 0.05);
    }

    #[test]
    fn dedup_skips_substantial_share() {
        let w = world();
        // High volume on a skewed feed → many duplicate head URLs/domains.
        let (_, stats) = run_days(&w, 1_500, Day::from_ymd(2020, 5, 10), 3);
        let rate = stats.skip_rate();
        assert!(
            (0.25..0.60).contains(&rate),
            "skip rate {rate} (paper: ~0.40)"
        );
    }

    #[test]
    fn vantage_split_roughly_even() {
        let w = world();
        let (_, stats) = run_days(&w, 500, Day::from_ymd(2020, 5, 10), 3);
        let eu_share = stats.eu_captures as f64 / stats.captured as f64;
        assert!((eu_share - 0.5).abs() < 0.06, "eu share {eu_share}");
    }

    #[test]
    fn redirect_rate_near_eleven_percent() {
        let w = world();
        let (db, _) = run_days(&w, 800, Day::from_ymd(2020, 5, 10), 4);
        let rate = db.redirect_rate();
        assert!(
            (0.05..0.18).contains(&rate),
            "redirect rate {rate} (paper: ~0.11)"
        );
    }

    #[test]
    fn detects_cmps_in_the_stream() {
        let w = world();
        let (db, _) = run_days(&w, 1_000, Day::from_ymd(2020, 5, 10), 4);
        let domains_with_cmp = db
            .iter()
            .filter(|(_, hist)| hist.iter().any(|c| !c.cmps.is_empty()))
            .count();
        assert!(domains_with_cmp > 20, "only {domains_with_cmp} CMP domains");
        // Multi-CMP pages are rare.
        assert!(db.multi_cmp_rate() < 0.005, "{}", db.multi_cmp_rate());
    }

    #[test]
    fn deterministic_given_seed() {
        let w = world();
        let (db1, s1) = run_days(&w, 200, Day::from_ymd(2019, 7, 1), 2);
        let (db2, s2) = run_days(&w, 200, Day::from_ymd(2019, 7, 1), 2);
        assert_eq!(s1, s2);
        assert_eq!(db1.len(), db2.len());
        assert_eq!(db1.domain_count(), db2.domain_count());
        let d1: Vec<&str> = db1.iter().map(|(d, _)| d).collect();
        let d2: Vec<&str> = db2.iter().map(|(d, _)| d).collect();
        assert_eq!(d1, d2);
    }
}
