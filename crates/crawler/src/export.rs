//! Capture-database export/import: the columnar v3 format, the legacy
//! v2 reader, and O(new-rows) delta sections.
//!
//! Netograph's capture store persists for multi-year analyses (§3.2); this
//! module gives [`CaptureDb`] a compact text serialization so a long
//! platform run can be saved once and re-analyzed many times. Since v3
//! the layout mirrors the in-memory store: an interning table of host
//! strings in id order, then one block per non-empty shard, each segment
//! written as six column lines. `docs/STORAGE.md` is the normative spec.
//!
//! ```text
//! #consent-capture-db v3
//! hosts=<n>            interning table, one host per line, id order
//! <host 0>
//! ...
//! shard=<s> rows=<r>   ceil(r / SEGMENT_ROWS) segments follow
//! d=<domain ids>       six comma-joined columns per segment:
//! t=<days>             domain id, day number, location, status,
//! l=<locations>        CMP bitmask, flags (bit0 redirect, bit1 dialog)
//! s=<statuses>
//! c=<cmp masks>
//! f=<flags>
//! ```
//!
//! # Version negotiation
//!
//! [`import`] dispatches on the header line: `v3` parses the columnar
//! layout above; `v2` — the flat one-row-per-line tab-separated format
//! every checkpoint before the columnar store used — is still accepted,
//! so old checkpoints import cleanly and re-export as v3. Writing v2 is
//! no longer supported. A committed v2 fixture
//! (`tests/fixtures/capture_db_v2.txt`) pins the legacy reader.
//!
//! # Deltas
//!
//! [`export_delta`] serializes only the rows appended since a
//! [`DbMarks`] cursor (per-shard row counts + host count), and
//! [`apply_delta`] replays them through the normal insert path — so a
//! base checkpoint plus its delta chain reassembles the exact in-memory
//! store (segment seals included), which is what the delta-generation
//! checkpoints in [`crate::durable`] are built on.

use crate::capture_db::{CaptureDb, CaptureSummary, CmpSet, DbMarks, SEGMENT_ROWS};
use consent_httpsim::{CaptureStatus, Location};
use consent_util::Day;
use consent_webgraph::ALL_CMPS;
use std::fmt;

/// Current format version: the columnar sharded layout.
pub const FORMAT_VERSION: u32 = 3;

/// The legacy flat line format (still importable, never written).
pub const LEGACY_FORMAT_VERSION: u32 = 2;

/// Header of a delta section (see [`export_delta`]).
pub const DELTA_HEADER: &str = "#consent-capture-db-delta v1";

/// Import error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line number (0 for header problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "import error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

pub(crate) fn status_code(s: CaptureStatus) -> &'static str {
    match s {
        CaptureStatus::Ok => "ok",
        CaptureStatus::Timeout => "timeout",
        CaptureStatus::AntiBotInterstitial => "antibot",
        CaptureStatus::LegallyBlocked => "blocked451",
        CaptureStatus::HttpError => "httperr",
        CaptureStatus::ConnectionFailed => "connfail",
        CaptureStatus::ConnectionReset => "reset",
        CaptureStatus::Truncated => "truncated",
    }
}

pub(crate) fn status_from(code: &str) -> Option<CaptureStatus> {
    Some(match code {
        "ok" => CaptureStatus::Ok,
        "timeout" => CaptureStatus::Timeout,
        "antibot" => CaptureStatus::AntiBotInterstitial,
        "blocked451" => CaptureStatus::LegallyBlocked,
        "httperr" => CaptureStatus::HttpError,
        "connfail" => CaptureStatus::ConnectionFailed,
        "reset" => CaptureStatus::ConnectionReset,
        "truncated" => CaptureStatus::Truncated,
        _ => return None,
    })
}

fn location_from(code: &str) -> Option<Location> {
    Some(match code {
        "us" => Location::UsCloud,
        "eu" => Location::EuCloud,
        "uni" => Location::EuUniversity,
        _ => return None,
    })
}

fn join<T: ToString>(vals: &[T]) -> String {
    vals.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn push_segment_columns(out: &mut String, seg: &crate::capture_db::Segment, lo: usize, hi: usize) {
    out.push_str(&format!("d={}\n", join(&seg.domain_ids[lo..hi])));
    out.push_str(&format!("t={}\n", join(&seg.days[lo..hi])));
    out.push_str(&format!("l={}\n", join(&seg.locations[lo..hi])));
    out.push_str(&format!("s={}\n", join(&seg.statuses[lo..hi])));
    out.push_str(&format!("c={}\n", join(&seg.cmps[lo..hi])));
    out.push_str(&format!("f={}\n", join(&seg.flags[lo..hi])));
}

/// Serialize the database to the columnar v3 format. The bytes are a
/// pure function of the insertion history, so exports stay identical
/// across thread counts and kill-halfway resumes.
pub fn export(db: &CaptureDb) -> String {
    let mut out = String::new();
    out.push_str(&format!("#consent-capture-db v{FORMAT_VERSION}\n"));
    let hosts = db.host_table();
    out.push_str(&format!("hosts={}\n", hosts.len()));
    for h in hosts {
        out.push_str(h);
        out.push('\n');
    }
    for shard in 0..crate::capture_db::SHARD_COUNT {
        let segments = db.shard_segments(shard);
        let rows: usize = segments.iter().map(|s| s.rows()).sum();
        if rows == 0 {
            continue;
        }
        out.push_str(&format!("shard={shard} rows={rows}\n"));
        for seg in segments {
            push_segment_columns(&mut out, seg, 0, seg.rows());
        }
    }
    out
}

/// Serialize only the rows appended since `marks` as a delta section
/// (header [`DELTA_HEADER`]): the newly interned hosts in id order,
/// then one six-column block per shard that grew. Cost is proportional
/// to the rows since the marks, not the database size.
pub fn export_delta(db: &CaptureDb, marks: &DbMarks) -> String {
    let mut out = String::new();
    out.push_str(DELTA_HEADER);
    out.push('\n');
    let hosts = db.host_table();
    let base = marks.hosts as usize;
    out.push_str(&format!("hosts={}+{}\n", base, hosts.len() - base));
    for h in &hosts[base..] {
        out.push_str(h);
        out.push('\n');
    }
    for shard in 0..crate::capture_db::SHARD_COUNT {
        let segments = db.shard_segments(shard);
        let rows: usize = segments.iter().map(|s| s.rows()).sum();
        let from = marks.shard_rows[shard] as usize;
        if rows == from {
            continue;
        }
        out.push_str(&format!("shard={shard} from={from} rows={}\n", rows - from));
        // Walk the segments covering [from, rows).
        let (mut seg, mut off) = (from / SEGMENT_ROWS, from % SEGMENT_ROWS);
        while seg < segments.len() {
            let s = &segments[seg];
            if off < s.rows() {
                push_segment_columns(&mut out, s, off, s.rows());
            }
            seg += 1;
            off = 0;
        }
    }
    out
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            lines: text.lines().enumerate(),
            line: 0,
        }
    }

    fn err(&self, message: String) -> ImportError {
        ImportError {
            line: self.line,
            message,
        }
    }

    fn next(&mut self) -> Option<&'a str> {
        let (i, l) = self.lines.next()?;
        self.line = i + 1;
        Some(l)
    }

    fn expect(&mut self, what: &str) -> Result<&'a str, ImportError> {
        self.next().ok_or(ImportError {
            line: self.line + 1,
            message: format!("missing {what}"),
        })
    }

    fn column<T: std::str::FromStr>(&mut self, tag: &str, n: usize) -> Result<Vec<T>, ImportError> {
        let l = self.expect(&format!("{tag}= column"))?;
        let body = l
            .strip_prefix(tag)
            .and_then(|r| r.strip_prefix('='))
            .ok_or_else(|| self.err(format!("expected {tag}= column, got {l:?}")))?;
        let vals: Vec<T> = body
            .split(',')
            .filter(|v| !v.is_empty())
            .map(|v| {
                v.parse()
                    .map_err(|_| self.err(format!("bad {tag} value {v:?}")))
            })
            .collect::<Result<_, _>>()?;
        if vals.len() != n {
            return Err(self.err(format!("{tag} column has {} of {n} values", vals.len())));
        }
        Ok(vals)
    }
}

/// One host line of an interning table: reject separators and header
/// markers that could smuggle rows or sections into an export.
fn host_line(p: &Parser<'_>, l: &str) -> Result<String, ImportError> {
    if l.is_empty() || l.starts_with('#') || l.contains('\t') {
        return Err(p.err(format!("bad host {l:?}")));
    }
    Ok(l.to_owned())
}

/// Parse one shard block's rows into `db` via the insert path.
fn import_shard_rows(
    p: &mut Parser<'_>,
    db: &mut CaptureDb,
    shard: usize,
    rows: usize,
) -> Result<(), ImportError> {
    let mut remaining = rows;
    // v3 full exports split columns at segment boundaries; deltas write
    // chunks that cover the remainder of each touched segment. Both are
    // "at most SEGMENT_ROWS values per chunk, aligned to seal points",
    // so the reader only needs the current shard fill to know chunk
    // sizes.
    while remaining > 0 {
        let fill = db.marks().shard_rows[shard] as usize % SEGMENT_ROWS;
        let n = remaining.min(SEGMENT_ROWS - fill);
        let d: Vec<u32> = p.column("d", n)?;
        let t: Vec<i32> = p.column("t", n)?;
        let l: Vec<u8> = p.column("l", n)?;
        let s: Vec<u8> = p.column("s", n)?;
        let c: Vec<u8> = p.column("c", n)?;
        let f: Vec<u8> = p.column("f", n)?;
        for i in 0..n {
            let name = db
                .host_table()
                .get(d[i] as usize)
                .ok_or_else(|| p.err(format!("domain id {} out of range", d[i])))?;
            if crate::capture_db::shard_of(name) != shard {
                return Err(p.err(format!("host {name:?} does not belong to shard {shard}")));
            }
            db.insert_row(d[i], t[i], l[i], s[i], c[i], f[i])
                .map_err(|m| p.err(m))?;
        }
        remaining -= n;
    }
    Ok(())
}

fn import_v3(p: &mut Parser<'_>) -> Result<CaptureDb, ImportError> {
    let mut db = CaptureDb::new();
    let hosts_line = p.expect("hosts= line")?;
    let n: usize = hosts_line
        .strip_prefix("hosts=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| p.err(format!("bad hosts line {hosts_line:?}")))?;
    for _ in 0..n {
        let l = p.expect("host line")?;
        let host = host_line(p, l)?;
        db.preintern(&host);
    }
    let mut prev_shard = None;
    while let Some(l) = p.next() {
        if l.is_empty() {
            continue;
        }
        let (shard, rows) = l
            .strip_prefix("shard=")
            .and_then(|r| r.split_once(" rows="))
            .and_then(|(s, r)| Some((s.parse::<usize>().ok()?, r.parse::<usize>().ok()?)))
            .ok_or_else(|| p.err(format!("expected shard header, got {l:?}")))?;
        if shard >= crate::capture_db::SHARD_COUNT {
            return Err(p.err(format!("shard {shard} out of range")));
        }
        if prev_shard.is_some_and(|prev| shard <= prev) {
            return Err(p.err(format!("shard {shard} out of order")));
        }
        prev_shard = Some(shard);
        if rows == 0 {
            return Err(p.err("empty shard block".into()));
        }
        import_shard_rows(p, &mut db, shard, rows)?;
    }
    Ok(db)
}

/// The legacy flat v2 reader: one tab-separated row per line
/// (domain, day, location code, status code, CMP names, redirect flag,
/// dialog flag). Kept so checkpoints written before the columnar store
/// import cleanly; they re-export as v3.
fn import_v2(p: &mut Parser<'_>) -> Result<CaptureDb, ImportError> {
    let mut db = CaptureDb::new();
    while let Some(line) = p.next() {
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ImportError {
            line: p.line,
            message,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(err(format!("expected 7 fields, got {}", fields.len())));
        }
        let day: Day = fields[1]
            .parse()
            .map_err(|e| err(format!("bad day: {e}")))?;
        let location =
            location_from(fields[2]).ok_or_else(|| err(format!("bad location {:?}", fields[2])))?;
        let status =
            status_from(fields[3]).ok_or_else(|| err(format!("bad status {:?}", fields[3])))?;
        let cmps = if fields[4].is_empty() {
            CmpSet::empty()
        } else {
            fields[4]
                .split(',')
                .map(|name| {
                    ALL_CMPS
                        .iter()
                        .copied()
                        .find(|c| c.name() == name)
                        .ok_or_else(|| err(format!("unknown CMP {name:?}")))
                })
                .collect::<Result<CmpSet, _>>()?
        };
        let flag = |s: &str, what: &str| match s {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(err(format!("bad {what} flag {s:?}"))),
        };
        db.insert(CaptureSummary {
            domain: fields[0].to_owned(),
            day,
            location,
            status,
            cmps,
            redirected: flag(fields[5], "redirect")?,
            dialog_visible: flag(fields[6], "dialog")?,
        });
    }
    Ok(db)
}

/// Parse a database, negotiating the format version from the header:
/// `v3` (columnar, current) or `v2` (legacy flat lines).
pub fn import(text: &str) -> Result<CaptureDb, ImportError> {
    let mut p = Parser::new(text);
    let header = p.next().ok_or(ImportError {
        line: 0,
        message: "empty input".into(),
    })?;
    match header {
        _ if header == format!("#consent-capture-db v{FORMAT_VERSION}") => import_v3(&mut p),
        _ if header == format!("#consent-capture-db v{LEGACY_FORMAT_VERSION}") => import_v2(&mut p),
        _ => Err(ImportError {
            line: 0,
            message: format!("unsupported header {header:?}"),
        }),
    }
}

/// Replay a delta section produced by [`export_delta`] onto `db`,
/// which must be at exactly the marks the delta was cut from (host
/// count and per-shard row counts are validated). Rows go through the
/// normal insert path, so seals, counters, and telemetry reconcile
/// identically to the original inserts.
pub fn apply_delta(db: &mut CaptureDb, text: &str) -> Result<(), ImportError> {
    let mut p = Parser::new(text);
    let header = p.next().ok_or(ImportError {
        line: 0,
        message: "empty delta".into(),
    })?;
    if header != DELTA_HEADER {
        return Err(ImportError {
            line: 0,
            message: format!("unsupported delta header {header:?}"),
        });
    }
    let hosts_line = p.expect("hosts= line")?;
    let (base, new): (usize, usize) = hosts_line
        .strip_prefix("hosts=")
        .and_then(|r| r.split_once('+'))
        .and_then(|(b, n)| Some((b.parse().ok()?, n.parse().ok()?)))
        .ok_or_else(|| p.err(format!("bad hosts line {hosts_line:?}")))?;
    if base != db.host_table().len() {
        return Err(p.err(format!(
            "delta expects {base} interned hosts, store has {}",
            db.host_table().len()
        )));
    }
    for _ in 0..new {
        let l = p.expect("host line")?;
        let host = host_line(&p, l)?;
        db.preintern(&host);
    }
    let mut prev_shard = None;
    while let Some(l) = p.next() {
        if l.is_empty() {
            continue;
        }
        let (shard, rest) = l
            .strip_prefix("shard=")
            .and_then(|r| r.split_once(" from="))
            .ok_or_else(|| p.err(format!("expected shard header, got {l:?}")))?;
        let shard: usize = shard
            .parse()
            .map_err(|_| p.err(format!("bad shard in {l:?}")))?;
        let (from, rows) = rest
            .split_once(" rows=")
            .and_then(|(f, r)| Some((f.parse::<usize>().ok()?, r.parse::<usize>().ok()?)))
            .ok_or_else(|| p.err(format!("bad shard header {l:?}")))?;
        if shard >= crate::capture_db::SHARD_COUNT {
            return Err(p.err(format!("shard {shard} out of range")));
        }
        if prev_shard.is_some_and(|prev| shard <= prev) {
            return Err(p.err(format!("shard {shard} out of order")));
        }
        prev_shard = Some(shard);
        let have = db.marks().shard_rows[shard] as usize;
        if from != have {
            return Err(p.err(format!(
                "delta for shard {shard} starts at row {from}, store has {have}"
            )));
        }
        if rows == 0 {
            return Err(p.err("empty shard block".into()));
        }
        import_shard_rows(&mut p, db, shard, rows)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::Cmp;

    fn sample_db() -> CaptureDb {
        let mut db = CaptureDb::new();
        db.insert(CaptureSummary {
            domain: "a.com".into(),
            day: Day::from_ymd(2020, 5, 1),
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps: CmpSet::from_iter([Cmp::Quantcast]),
            redirected: false,
            dialog_visible: true,
        });
        db.insert(CaptureSummary {
            domain: "a.com".into(),
            day: Day::from_ymd(2020, 5, 3),
            location: Location::UsCloud,
            status: CaptureStatus::AntiBotInterstitial,
            cmps: CmpSet::empty(),
            redirected: true,
            dialog_visible: false,
        });
        db.insert(CaptureSummary {
            domain: "b.co.uk".into(),
            day: Day::from_ymd(2020, 5, 2),
            location: Location::EuUniversity,
            status: CaptureStatus::Ok,
            cmps: CmpSet::from_iter([Cmp::OneTrust, Cmp::Quantcast]),
            redirected: false,
            dialog_visible: true,
        });
        db.insert(CaptureSummary {
            domain: "c.net".into(),
            day: Day::from_ymd(2020, 5, 4),
            location: Location::EuCloud,
            status: CaptureStatus::Truncated,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        db.insert(CaptureSummary {
            domain: "c.net".into(),
            day: Day::from_ymd(2020, 5, 6),
            location: Location::UsCloud,
            status: CaptureStatus::ConnectionReset,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let text = export(&db);
        assert!(text.starts_with("#consent-capture-db v3\n"));
        let back = import(&text).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.domain_count(), db.domain_count());
        assert_eq!(back.domain_history("a.com"), db.domain_history("a.com"));
        assert_eq!(back.domain_history("b.co.uk"), db.domain_history("b.co.uk"));
        assert_eq!(back.domain_history("c.net"), db.domain_history("c.net"));
        assert_eq!(back.redirect_rate(), db.redirect_rate());
        assert_eq!(back.multi_cmp_rate(), db.multi_cmp_rate());
        // Export is deterministic and the import is layout-exact.
        assert_eq!(export(&back), text);
        assert_eq!(back.marks(), db.marks());
    }

    #[test]
    fn roundtrip_across_segment_seals() {
        // A domain with more rows than one segment exercises the
        // multi-segment column blocks.
        let mut db = CaptureDb::new();
        for i in 0..(crate::capture_db::SEGMENT_ROWS as i32 + 40) {
            db.insert(CaptureSummary {
                domain: "big.example".into(),
                day: Day::from_ymd(2020, 1, 1) + i,
                location: Location::EuCloud,
                status: CaptureStatus::Ok,
                cmps: CmpSet::empty(),
                redirected: i % 3 == 0,
                dialog_visible: i % 2 == 0,
            });
        }
        let text = export(&db);
        let back = import(&text).unwrap();
        assert_eq!(back.sealed_segments(), 1);
        assert_eq!(export(&back), text);
        assert_eq!(
            back.domain_history("big.example"),
            db.domain_history("big.example")
        );
    }

    #[test]
    fn legacy_v2_imports_and_reexports_as_v3() {
        // Hand-written v2 text, as an old checkpoint would carry.
        let v2 = "#consent-capture-db v2\n\
                  a.com\t2020-05-01\teu\tok\tQuantcast\t0\t1\n\
                  a.com\t2020-05-03\tus\tantibot\t\t1\t0\n\
                  b.co.uk\t2020-05-02\tuni\tok\tOneTrust,Quantcast\t0\t1\n";
        let db = import(v2).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.domain_count(), 2);
        let hist = db.domain_history("a.com");
        assert_eq!(hist.len(), 2);
        assert!(hist[0].cmps.contains(Cmp::Quantcast));
        assert!(hist[1].redirected);
        // Re-export upgrades to v3 and round-trips from there.
        let v3 = export(&db);
        assert!(v3.starts_with("#consent-capture-db v3\n"));
        let back = import(&v3).unwrap();
        assert_eq!(export(&back), v3);
    }

    #[test]
    fn delta_roundtrip_matches_direct_inserts() {
        let mut db = sample_db();
        let marks = db.marks();
        // Grow past the marks, including a brand-new host.
        db.insert(CaptureSummary {
            domain: "d.org".into(),
            day: Day::from_ymd(2020, 6, 1),
            location: Location::UsCloud,
            status: CaptureStatus::Ok,
            cmps: CmpSet::from_iter([Cmp::TrustArc]),
            redirected: false,
            dialog_visible: true,
        });
        db.insert(CaptureSummary {
            domain: "a.com".into(),
            day: Day::from_ymd(2020, 6, 2),
            location: Location::EuCloud,
            status: CaptureStatus::Timeout,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        let delta = export_delta(&db, &marks);
        assert!(delta.starts_with(DELTA_HEADER));
        // Rebuild: base at the marks + the delta = the grown store.
        let mut base = sample_db();
        apply_delta(&mut base, &delta).unwrap();
        assert_eq!(export(&base), export(&db));
        assert_eq!(base.marks(), db.marks());
        // An empty delta is valid and a no-op.
        let empty = export_delta(&db, &db.marks());
        apply_delta(&mut base, &empty).unwrap();
        assert_eq!(export(&base), export(&db));
    }

    #[test]
    fn delta_rejects_wrong_base() {
        let mut db = sample_db();
        let marks = db.marks();
        db.insert(CaptureSummary {
            domain: "d.org".into(),
            day: Day::from_ymd(2020, 6, 1),
            location: Location::UsCloud,
            status: CaptureStatus::Ok,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        let delta = export_delta(&db, &marks);
        // Applying to an empty store: host base disagrees.
        let mut empty = CaptureDb::new();
        assert!(apply_delta(&mut empty, &delta).is_err());
        // Applying twice: shard row cursors disagree.
        let mut base = sample_db();
        apply_delta(&mut base, &delta).unwrap();
        assert!(apply_delta(&mut base, &delta).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(import("").is_err());
        assert!(import("#wrong header\n").is_err());
        // v1 never existed as an importable version.
        assert!(import("#consent-capture-db v1\n").is_err());
        // v3 structural corruption.
        let h = "#consent-capture-db v3\n";
        assert!(import(&format!("{h}hosts=notanumber\n")).is_err());
        assert!(
            import(&format!("{h}hosts=1\n")).is_err(),
            "missing host line"
        );
        assert!(import(&format!("{h}hosts=1\n#evil\n")).is_err());
        assert!(import(&format!("{h}hosts=0\nshard=99 rows=1\n")).is_err());
        assert!(import(&format!("{h}hosts=0\nshard=0 rows=0\n")).is_err());
        assert!(import(&format!(
            "{h}hosts=1\na.com\nshard=0 rows=1\nd=0\nt=18383\nl=9\ns=0\nc=0\nf=0\n"
        ))
        .is_err());
        // A host in the wrong shard block is corruption.
        let wrong_shard = {
            let shard = (crate::capture_db::shard_of("a.com") + 1) % crate::capture_db::SHARD_COUNT;
            format!("{h}hosts=1\na.com\nshard={shard} rows=1\nd=0\nt=18383\nl=0\ns=0\nc=0\nf=0\n")
        };
        assert!(import(&wrong_shard).is_err());
        // v2 corruption keeps line-numbered errors.
        let good_header = "#consent-capture-db v2\n";
        assert!(import(&format!("{good_header}too\tfew\tfields\n")).is_err());
        assert!(import(&format!(
            "{good_header}a.com\t2020-05-01\tmars\tok\t\t0\t0\n"
        ))
        .is_err());
        assert!(import(&format!(
            "{good_header}a.com\t2020-05-01\teu\tok\tNotACmp\t0\t0\n"
        ))
        .is_err());
        assert!(import(&format!("{good_header}a.com\tnot-a-date\teu\tok\t\t0\t0\n")).is_err());
        assert!(import(&format!("{good_header}a.com\t2020-05-01\teu\tok\t\t2\t0\n")).is_err());
        // Error display includes the line number.
        let e = import(&format!("{good_header}bad line\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = CaptureDb::new();
        let text = export(&db);
        assert_eq!(text, "#consent-capture-db v3\nhosts=0\n");
        let back = import(&text).unwrap();
        assert!(back.is_empty());
    }
}
