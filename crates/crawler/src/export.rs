//! Capture-database export/import.
//!
//! Netograph's capture store persists for multi-year analyses (§3.2); this
//! module gives [`CaptureDb`] a compact, line-oriented text format so a
//! long platform run can be saved once and re-analyzed many times. The
//! format is a stable tab-separated layout, one capture summary per line,
//! with a header carrying the format version.

use crate::capture_db::{CaptureDb, CaptureSummary, CmpSet};
use consent_httpsim::{CaptureStatus, Location};
use consent_util::Day;
use consent_webgraph::ALL_CMPS;
use std::fmt;

/// Current format version. v2 added the `reset` and `truncated` status
/// codes introduced by the fault-injection layer.
pub const FORMAT_VERSION: u32 = 2;

/// Import error with a line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportError {
    /// 1-based line number (0 for header problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "import error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ImportError {}

pub(crate) fn status_code(s: CaptureStatus) -> &'static str {
    match s {
        CaptureStatus::Ok => "ok",
        CaptureStatus::Timeout => "timeout",
        CaptureStatus::AntiBotInterstitial => "antibot",
        CaptureStatus::LegallyBlocked => "blocked451",
        CaptureStatus::HttpError => "httperr",
        CaptureStatus::ConnectionFailed => "connfail",
        CaptureStatus::ConnectionReset => "reset",
        CaptureStatus::Truncated => "truncated",
    }
}

pub(crate) fn status_from(code: &str) -> Option<CaptureStatus> {
    Some(match code {
        "ok" => CaptureStatus::Ok,
        "timeout" => CaptureStatus::Timeout,
        "antibot" => CaptureStatus::AntiBotInterstitial,
        "blocked451" => CaptureStatus::LegallyBlocked,
        "httperr" => CaptureStatus::HttpError,
        "connfail" => CaptureStatus::ConnectionFailed,
        "reset" => CaptureStatus::ConnectionReset,
        "truncated" => CaptureStatus::Truncated,
        _ => return None,
    })
}

fn location_code(l: Location) -> &'static str {
    match l {
        Location::UsCloud => "us",
        Location::EuCloud => "eu",
        Location::EuUniversity => "uni",
    }
}

fn location_from(code: &str) -> Option<Location> {
    Some(match code {
        "us" => Location::UsCloud,
        "eu" => Location::EuCloud,
        "uni" => Location::EuUniversity,
        _ => return None,
    })
}

/// Serialize the database to the line format.
pub fn export(db: &CaptureDb) -> String {
    let mut out = String::new();
    out.push_str(&format!("#consent-capture-db v{FORMAT_VERSION}\n"));
    for (domain, history) in db.iter() {
        for c in history {
            let cmps: Vec<&str> = c.cmps.iter().map(|x| x.name()).collect();
            out.push_str(&format!(
                "{domain}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                c.day,
                location_code(c.location),
                status_code(c.status),
                cmps.join(","),
                u8::from(c.redirected),
                u8::from(c.dialog_visible),
            ));
        }
    }
    out
}

/// Parse a database from the line format.
pub fn import(text: &str) -> Result<CaptureDb, ImportError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ImportError {
        line: 0,
        message: "empty input".into(),
    })?;
    if header != format!("#consent-capture-db v{FORMAT_VERSION}") {
        return Err(ImportError {
            line: 0,
            message: format!("unsupported header {header:?}"),
        });
    }
    let mut db = CaptureDb::new();
    for (i, line) in lines {
        if line.is_empty() {
            continue;
        }
        let err = |message: String| ImportError {
            line: i + 1,
            message,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(err(format!("expected 7 fields, got {}", fields.len())));
        }
        let day: Day = fields[1]
            .parse()
            .map_err(|e| err(format!("bad day: {e}")))?;
        let location =
            location_from(fields[2]).ok_or_else(|| err(format!("bad location {:?}", fields[2])))?;
        let status =
            status_from(fields[3]).ok_or_else(|| err(format!("bad status {:?}", fields[3])))?;
        let cmps = if fields[4].is_empty() {
            CmpSet::empty()
        } else {
            fields[4]
                .split(',')
                .map(|name| {
                    ALL_CMPS
                        .iter()
                        .copied()
                        .find(|c| c.name() == name)
                        .ok_or_else(|| err(format!("unknown CMP {name:?}")))
                })
                .collect::<Result<CmpSet, _>>()?
        };
        let flag = |s: &str, what: &str| match s {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(err(format!("bad {what} flag {s:?}"))),
        };
        db.insert(CaptureSummary {
            domain: fields[0].to_owned(),
            day,
            location,
            status,
            cmps,
            redirected: flag(fields[5], "redirect")?,
            dialog_visible: flag(fields[6], "dialog")?,
        });
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::Cmp;

    fn sample_db() -> CaptureDb {
        let mut db = CaptureDb::new();
        db.insert(CaptureSummary {
            domain: "a.com".into(),
            day: Day::from_ymd(2020, 5, 1),
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps: CmpSet::from_iter([Cmp::Quantcast]),
            redirected: false,
            dialog_visible: true,
        });
        db.insert(CaptureSummary {
            domain: "a.com".into(),
            day: Day::from_ymd(2020, 5, 3),
            location: Location::UsCloud,
            status: CaptureStatus::AntiBotInterstitial,
            cmps: CmpSet::empty(),
            redirected: true,
            dialog_visible: false,
        });
        db.insert(CaptureSummary {
            domain: "b.co.uk".into(),
            day: Day::from_ymd(2020, 5, 2),
            location: Location::EuUniversity,
            status: CaptureStatus::Ok,
            cmps: CmpSet::from_iter([Cmp::OneTrust, Cmp::Quantcast]),
            redirected: false,
            dialog_visible: true,
        });
        db.insert(CaptureSummary {
            domain: "c.net".into(),
            day: Day::from_ymd(2020, 5, 4),
            location: Location::EuCloud,
            status: CaptureStatus::Truncated,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        db.insert(CaptureSummary {
            domain: "c.net".into(),
            day: Day::from_ymd(2020, 5, 6),
            location: Location::UsCloud,
            status: CaptureStatus::ConnectionReset,
            cmps: CmpSet::empty(),
            redirected: false,
            dialog_visible: false,
        });
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let text = export(&db);
        let back = import(&text).unwrap();
        assert_eq!(back.len(), db.len());
        assert_eq!(back.domain_count(), db.domain_count());
        assert_eq!(back.domain_history("a.com"), db.domain_history("a.com"));
        assert_eq!(back.domain_history("b.co.uk"), db.domain_history("b.co.uk"));
        assert_eq!(back.domain_history("c.net"), db.domain_history("c.net"));
        assert_eq!(back.redirect_rate(), db.redirect_rate());
        assert_eq!(back.multi_cmp_rate(), db.multi_cmp_rate());
        // Export is deterministic.
        assert_eq!(export(&back), text);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(import("").is_err());
        assert!(import("#wrong header\n").is_err());
        let good_header = format!("#consent-capture-db v{FORMAT_VERSION}\n");
        assert!(import(&format!("{good_header}too\tfew\tfields\n")).is_err());
        assert!(import(&format!(
            "{good_header}a.com\t2020-05-01\tmars\tok\t\t0\t0\n"
        ))
        .is_err());
        assert!(import(&format!(
            "{good_header}a.com\t2020-05-01\teu\tok\tNotACmp\t0\t0\n"
        ))
        .is_err());
        assert!(import(&format!("{good_header}a.com\tnot-a-date\teu\tok\t\t0\t0\n")).is_err());
        assert!(import(&format!("{good_header}a.com\t2020-05-01\teu\tok\t\t2\t0\n")).is_err());
        // Error display includes the line number.
        let e = import(&format!("{good_header}bad line\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn empty_db_roundtrips() {
        let db = CaptureDb::new();
        let back = import(&export(&db)).unwrap();
        assert!(back.is_empty());
    }
}
