//! Toplist crawl campaigns (the Table 1 methodology).
//!
//! §3.2: the Tranco 10k is converted to seed URLs (TLS-validated ladder,
//! three rounds over a week), then every URL is crawled six times — US
//! cloud, EU cloud, and the EU university with default timing, extended
//! timing, and two language variants — with unsuccessful captures retried
//! three times over a week. DOM snapshots are stored for the university
//! crawls.

use consent_httpsim::{CaptureOptions, Engine, Location, Vantage, WorldProber};
use consent_toplist::{default_providers, resolve_all, AggregationRule, SeedUrl, Toplist};
use consent_util::{Day, SeedTree};
use consent_webgraph::World;

/// One crawled toplist entry at one vantage.
#[derive(Clone, Debug)]
pub struct CampaignCapture {
    /// Tranco rank of the entry (1-based position in the aggregated list).
    pub rank: usize,
    /// Toplist domain.
    pub domain: String,
    /// The capture (retried per §3.2 if unsuccessful).
    pub capture: consent_httpsim::Capture,
    /// How many attempts were needed (1 = first try).
    pub attempts: u8,
}

/// Results of a full campaign: one capture list per vantage column.
pub struct CampaignResult {
    /// `(vantage, captures)` in the same order as the input vantages.
    pub columns: Vec<(Vantage, Vec<CampaignCapture>)>,
    /// The resolved seed URLs, including speculative ones.
    pub seeds: Vec<SeedUrl>,
}

impl CampaignResult {
    /// The captures for one location/timing column, if present.
    pub fn column(&self, vantage: Vantage) -> Option<&[CampaignCapture]> {
        self.columns
            .iter()
            .find(|(v, _)| *v == vantage)
            .map(|(_, c)| c.as_slice())
    }
}

/// Build the study's Tranco-style toplist over the synthetic world:
/// four noisy provider observations of the ground-truth ranking,
/// aggregated with the Dowdall rule, truncated to `n`.
pub fn build_toplist(world: &World, n: usize, seed: SeedTree) -> Vec<String> {
    // Providers observe slightly more of the world than we keep, so
    // entries can fall in and out across the cut like in real lists.
    let m = ((n as f64 * 1.2) as u32).min(world.n_sites());
    let ground_truth: Vec<String> = (1..=m).map(|r| world.profile(r).domain.clone()).collect();
    let providers = default_providers(&ground_truth, seed.child("providers"));
    let toplist = Toplist::aggregate(&providers, AggregationRule::Dowdall);
    toplist.top(n).map(str::to_owned).collect()
}

/// Run a toplist campaign on `day` for the given vantage columns.
pub fn run_campaign(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
) -> CampaignResult {
    let _span = consent_telemetry::span("campaign.run");
    let engine = Engine::new(world, seed.child("engine"));
    let prober = WorldProber::new(world, seed.child("prober"));
    // Three resolution rounds over a week (§3.2).
    let attempt_days = [day - 7, day - 4, day - 1];
    let seeds = resolve_all(domains.iter().cloned(), &prober, &attempt_days);

    let mut columns = Vec::with_capacity(vantages.len());
    for &vantage in vantages {
        let collect_dom = vantage.location == Location::EuUniversity;
        let mut captures = Vec::with_capacity(seeds.len());
        for (i, s) in seeds.iter().enumerate() {
            // Initial attempt plus up to three retries over a week.
            let mut attempts = 0u8;
            let mut capture = None;
            for retry in 0..4 {
                attempts += 1;
                let c = engine.capture(
                    &s.url,
                    day + retry * 2,
                    vantage,
                    CaptureOptions { collect_dom },
                );
                let usable = c.usable();
                capture = Some(c);
                if usable {
                    break;
                }
            }
            if consent_telemetry::enabled() {
                consent_telemetry::observe("campaign.attempts", u64::from(attempts));
                consent_telemetry::count("campaign.retries", u64::from(attempts) - 1);
            }
            captures.push(CampaignCapture {
                rank: i + 1,
                domain: s.domain.clone(),
                capture: capture.expect("at least one attempt"),
                attempts,
            });
        }
        columns.push((vantage, captures));
    }
    CampaignResult { columns, seeds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_httpsim::Timing;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 5_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    #[test]
    fn toplist_roughly_tracks_ground_truth() {
        let w = world();
        let list = build_toplist(&w, 1_000, SeedTree::new(7));
        assert_eq!(list.len(), 1_000);
        // The true top 20 should mostly make the aggregated top 60.
        let head: Vec<&String> = list.iter().take(60).collect();
        let mut recovered = 0;
        for rank in 1..=20u32 {
            let d = w.profile(rank).domain.clone();
            if head.contains(&&d) {
                recovered += 1;
            }
        }
        assert!(recovered >= 14, "recovered {recovered}/20");
        // No duplicates.
        let mut dedup = list.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 1_000);
    }

    #[test]
    fn campaign_covers_all_columns() {
        let w = world();
        let list = build_toplist(&w, 150, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = Vantage::table1_columns();
        let result = run_campaign(&w, &list, day, &vantages, SeedTree::new(9));
        assert_eq!(result.columns.len(), 6);
        assert_eq!(result.seeds.len(), 150);
        for (_, captures) in &result.columns {
            assert_eq!(captures.len(), 150);
        }
        // University columns carry DOM; cloud columns don't.
        let uni = result.column(vantages[3]).unwrap();
        let usable_with_dom = uni
            .iter()
            .filter(|c| c.capture.usable() && c.capture.dom.is_some())
            .count();
        assert!(usable_with_dom > 100);
        let cloud = result.column(vantages[0]).unwrap();
        assert!(cloud.iter().all(|c| c.capture.dom.is_none()));
    }

    #[test]
    fn eu_university_sees_at_least_as_many_cmps_as_us_cloud() {
        let w = world();
        let list = build_toplist(&w, 400, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = Vantage::table1_columns();
        let result = run_campaign(&w, &list, day, &vantages, SeedTree::new(9));
        let det = consent_fingerprint::Detector::hostname_only();
        let count = |vantage: Vantage| {
            result
                .column(vantage)
                .unwrap()
                .iter()
                .filter(|c| !det.detect(&c.capture).is_empty())
                .count()
        };
        let us = count(vantages[0]);
        let eu_cloud = count(vantages[1]);
        let uni_ext = count(vantages[3]);
        assert!(us <= eu_cloud, "us {us} > eu cloud {eu_cloud}");
        assert!(eu_cloud <= uni_ext, "eu cloud {eu_cloud} > uni {uni_ext}");
        assert!(uni_ext > 0);
    }

    #[test]
    fn retries_bounded() {
        let w = world();
        let list = build_toplist(&w, 100, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let result = run_campaign(
            &w,
            &list,
            day,
            &[Vantage {
                location: Location::EuUniversity,
                timing: Timing::Extended,
                language: consent_httpsim::Language::EnUs,
            }],
            SeedTree::new(9),
        );
        for c in result.column(result.columns[0].0).unwrap() {
            assert!((1..=4).contains(&c.attempts));
        }
    }
}
