//! Toplist crawl campaigns (the Table 1 methodology).
//!
//! §3.2: the Tranco 10k is converted to seed URLs (TLS-validated ladder,
//! three rounds over a week), then every URL is crawled six times — US
//! cloud, EU cloud, and the EU university with default timing, extended
//! timing, and two language variants — with unsuccessful captures retried
//! three times over a week. DOM snapshots are stored for the university
//! crawls.
//!
//! This module is also where the robustness layer comes together: every
//! capture runs through the [`FaultyEngine`] chaos wrapper, attempt
//! scheduling follows an explicit [`RetryPolicy`], permanent failures
//! short-circuit, a [`CircuitBreaker`]
//! stops hammering escalating anti-bot domains, abandoned pairs land in
//! the [`DeadLetterQueue`], and the whole campaign checkpoints into a
//! [`CampaignState`] that can be exported, re-imported, and resumed
//! without re-crawling completed `(domain, vantage)` pairs.
//!
//! Observability: each `(domain, vantage)` pair opens one
//! `consent_trace` trace (id from [`consent_trace::stable_id`], so
//! replays and resumes agree), with a child span per attempt and
//! instant events for injected faults, attempt outcomes, retry
//! decisions, breaker transitions, and dead-lettering. Independently of
//! tracing, every pair appends a [`Provenance`] record to the state's
//! [`ProvenanceLog`] — built unconditionally from the attempt history
//! and the pure fault plan, so checkpoints are byte-identical whether
//! tracing was on or off.

use crate::capture_db::{CaptureDb, CmpSet};
use crate::dead_letter::{vantage_code, AttemptRecord, DeadLetter, DeadLetterQueue};
use crate::export::{export as export_db, import as import_db, status_code, ImportError};
use crate::resilience::{BreakerConfig, CircuitBreaker, Outcome, RetryPolicy};
use consent_faultsim::{FaultProfile, FaultyEngine};
use consent_fingerprint::Detector;
use consent_httpsim::{split_url, CaptureOptions, CaptureStatus, Location, Vantage, WorldProber};
use consent_psl::PublicSuffixList;
use consent_toplist::{default_providers, resolve_all, AggregationRule, SeedUrl, Toplist};
use consent_trace::{stable_id, AttemptProvenance, Provenance, ProvenanceLog};
use consent_util::{Day, SeedTree};
use consent_webgraph::World;

/// One crawled toplist entry at one vantage.
#[derive(Clone, Debug)]
pub struct CampaignCapture {
    /// Tranco rank of the entry (1-based position in the aggregated list).
    pub rank: usize,
    /// Toplist domain.
    pub domain: String,
    /// The capture (retried per §3.2 if unsuccessful).
    pub capture: consent_httpsim::Capture,
    /// How many attempts were needed (1 = first try).
    pub attempts: u8,
    /// Classification of the final attempt.
    pub outcome: Outcome,
}

/// Results of a full campaign: one capture list per vantage column.
#[derive(Debug, Default)]
pub struct CampaignResult {
    /// `(vantage, captures)` in the same order as the input vantages.
    pub columns: Vec<(Vantage, Vec<CampaignCapture>)>,
    /// The resolved seed URLs, including speculative ones.
    pub seeds: Vec<SeedUrl>,
}

impl CampaignResult {
    /// The captures for one location/timing column, if present.
    pub fn column(&self, vantage: Vantage) -> Option<&[CampaignCapture]> {
        self.columns
            .iter()
            .find(|(v, _)| *v == vantage)
            .map(|(_, c)| c.as_slice())
    }

    /// Append another partial result's captures column-wise. Both halves
    /// must come from the same campaign (same seeds, same vantage order);
    /// since pairs are processed in a deterministic vantage-major order,
    /// concatenation reconstructs the uninterrupted result.
    pub fn merge(mut self, other: CampaignResult) -> CampaignResult {
        for (vantage, captures) in other.columns {
            match self.columns.iter_mut().find(|(v, _)| *v == vantage) {
                Some((_, mine)) => mine.extend(captures),
                None => self.columns.push((vantage, captures)),
            }
        }
        self
    }
}

/// How a campaign schedules, retries, and abandons captures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignConfig {
    /// The chaos layer. [`FaultProfile::none`] (the default without
    /// `CONSENT_CHAOS` in the environment) is byte-identical to running
    /// the unwrapped engine.
    pub fault_profile: FaultProfile,
    /// Attempt schedule and retry classification (§3.2).
    pub retry: RetryPolicy,
    /// Anti-bot circuit breaker.
    pub breaker: BreakerConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            fault_profile: FaultProfile::from_env(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// The checkpointable campaign state: everything a resumed run needs.
///
/// A campaign interrupted at any pair boundary round-trips through the
/// text checkpoint and resumes to the same bytes an uninterrupted run
/// produces:
///
/// ```
/// use consent_crawler::{
///     build_toplist, resume_campaign, run_campaign_with, CampaignConfig, CampaignState,
/// };
/// use consent_httpsim::Vantage;
/// use consent_util::{Day, SeedTree};
/// use consent_webgraph::{AdoptionConfig, World, WorldConfig};
///
/// let world = World::new(WorldConfig {
///     n_sites: 300,
///     seed: 42,
///     adoption: AdoptionConfig::default(),
/// });
/// let list = build_toplist(&world, 6, SeedTree::new(7));
/// let day = Day::from_ymd(2020, 5, 15);
/// let vantages = [Vantage::us_cloud()];
/// let config = CampaignConfig::default();
///
/// // Process three pairs, then "crash": only the checkpoint text survives.
/// let partial = resume_campaign(
///     &world, &list, day, &vantages, SeedTree::new(9),
///     &config, CampaignState::new(), Some(3),
/// );
/// assert!(!partial.complete);
/// let checkpoint = partial.state.export();
///
/// // A fresh process imports the checkpoint and runs to completion.
/// let restored = CampaignState::import(&checkpoint).unwrap();
/// let resumed = resume_campaign(
///     &world, &list, day, &vantages, SeedTree::new(9), &config, restored, None,
/// );
/// assert!(resumed.complete);
///
/// // Same bytes as never having been interrupted.
/// let full = run_campaign_with(&world, &list, day, &vantages, SeedTree::new(9), &config);
/// assert_eq!(resumed.state.export(), full.state.export());
/// ```
#[derive(Debug, Default)]
pub struct CampaignState {
    /// Capture summaries, one per processed `(domain, vantage)` pair.
    pub db: CaptureDb,
    /// Pairs abandoned without a usable capture.
    pub dead_letters: DeadLetterQueue,
    /// One acquisition record per processed pair, in processing order —
    /// the audit trail joining every [`CaptureDb`] row back to its
    /// attempt history, injected faults, and trace id.
    pub provenance: ProvenanceLog,
    /// Cursor into the deterministic vantage-major, rank-minor pair
    /// order: the number of pairs already processed. Each processed pair
    /// inserts exactly one [`CaptureDb`] row and one [`ProvenanceLog`]
    /// record, so `pairs_done` always equals [`CaptureDb::len`].
    pub pairs_done: u64,
}

pub(crate) const STATE_HEADER: &str = "#consent-campaign-state v3";

impl CampaignState {
    /// Fresh state (nothing crawled).
    pub fn new() -> CampaignState {
        CampaignState::default()
    }

    /// Serialize the checkpoint: a cursor line, then the capture-db,
    /// dead-letter, and provenance sections (each with its own header).
    pub fn export(&self) -> String {
        format!(
            "{STATE_HEADER}\npairs_done={}\n{}{}{}",
            self.pairs_done,
            export_db(&self.db),
            self.dead_letters.export(),
            self.provenance.export(),
        )
    }

    /// Parse a checkpoint produced by [`export`](Self::export).
    pub fn import(text: &str) -> Result<CampaignState, ImportError> {
        let mut lines = text.lines();
        let bad = |line: usize, message: String| ImportError { line, message };
        match lines.next() {
            Some(STATE_HEADER) => {}
            other => {
                return Err(bad(0, format!("unsupported state header {other:?}")));
            }
        }
        let pairs_done: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("pairs_done="))
            .ok_or_else(|| bad(2, "missing pairs_done line".into()))?
            .parse()
            .map_err(|e| bad(2, format!("bad pairs_done: {e}")))?;
        let rest: Vec<&str> = lines.collect();
        let split = rest
            .iter()
            .position(|l| l.starts_with("#consent-dead-letters"))
            .ok_or_else(|| bad(2 + rest.len(), "missing dead-letter section".into()))?;
        let prov_split = rest
            .iter()
            .position(|l| l.starts_with("#consent-provenance"))
            .ok_or_else(|| bad(2 + rest.len(), "missing provenance section".into()))?;
        if prov_split < split {
            return Err(bad(
                3 + prov_split,
                "provenance section before dead letters".into(),
            ));
        }
        // Section importers report line numbers relative to their own
        // header (0 for header problems, N for the section's Nth line).
        // Offset them so an `ImportError` names the offending line of
        // the *whole* checkpoint, which is what a human debugging a
        // corrupt file greps for. rest[0] is global line 3.
        let offset = |base: usize, local: usize| {
            if local == 0 {
                base
            } else {
                base + local - 1
            }
        };
        let db_text = rest[..split].join("\n");
        let dl_text = rest[split..prov_split].join("\n");
        let prov_text = rest[prov_split..].join("\n");
        let db = import_db(&db_text).map_err(|e| {
            bad(
                offset(3, e.line),
                format!("capture-db section: {}", e.message),
            )
        })?;
        let dead_letters = DeadLetterQueue::import(&dl_text).map_err(|e| {
            bad(
                offset(3 + split, e.line),
                format!("dead-letter section: {}", e.message),
            )
        })?;
        let provenance = ProvenanceLog::import(&prov_text).map_err(|e| {
            bad(
                offset(3 + prov_split, e.line),
                format!("provenance section: {}", e.message),
            )
        })?;
        let state = CampaignState {
            db,
            dead_letters,
            provenance,
            pairs_done,
        };
        if state.pairs_done != state.db.len() {
            return Err(bad(
                2,
                format!(
                    "cursor {} disagrees with {} stored captures",
                    state.pairs_done,
                    state.db.len()
                ),
            ));
        }
        if state.provenance.len() as u64 != state.pairs_done {
            return Err(bad(
                2,
                format!(
                    "cursor {} disagrees with {} provenance records",
                    state.pairs_done,
                    state.provenance.len()
                ),
            ));
        }
        Ok(state)
    }
}

/// A (possibly partial) campaign run: the in-memory result of the pairs
/// processed by this invocation plus the cumulative checkpoint state.
pub struct CampaignRun {
    /// Captures processed by this invocation only. After a resume,
    /// [`CampaignResult::merge`] the halves to reconstruct the whole.
    pub result: CampaignResult,
    /// Cumulative state across this and any prior resumed-from runs.
    pub state: CampaignState,
    /// True once every `(domain, vantage)` pair has been processed.
    pub complete: bool,
}

/// Build the study's Tranco-style toplist over the synthetic world:
/// four noisy provider observations of the ground-truth ranking,
/// aggregated with the Dowdall rule, truncated to `n`.
pub fn build_toplist(world: &World, n: usize, seed: SeedTree) -> Vec<String> {
    // Providers observe slightly more of the world than we keep, so
    // entries can fall in and out across the cut like in real lists.
    let m = ((n as f64 * 1.2) as u32).min(world.n_sites());
    let ground_truth: Vec<String> = (1..=m).map(|r| world.profile(r).domain.clone()).collect();
    let providers = default_providers(&ground_truth, seed.child("providers"));
    let toplist = Toplist::aggregate(&providers, AggregationRule::Dowdall);
    toplist.top(n).map(str::to_owned).collect()
}

/// Run a toplist campaign on `day` for the given vantage columns with
/// the default [`CampaignConfig`] (chaos profile from `CONSENT_CHAOS`,
/// §3.2 retries, anti-bot breaker).
pub fn run_campaign(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
) -> CampaignResult {
    run_campaign_with(
        world,
        domains,
        day,
        vantages,
        seed,
        &CampaignConfig::default(),
    )
    .result
}

/// Run a full campaign under an explicit config.
pub fn run_campaign_with(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    config: &CampaignConfig,
) -> CampaignRun {
    resume_campaign(
        world,
        domains,
        day,
        vantages,
        seed,
        config,
        CampaignState::new(),
        None,
    )
}

/// Run (or continue) a campaign from a checkpoint.
///
/// Pairs are processed in a deterministic vantage-major, rank-minor
/// order; the first `state.pairs_done` pairs are skipped without
/// re-crawling. `max_pairs` caps how many pairs this invocation
/// processes (useful for incremental checkpointing); `None` runs to
/// completion. Because every random draw is keyed by `(host, day,
/// vantage, attempt)` rather than by call order, an interrupted and
/// resumed campaign is indistinguishable from an uninterrupted one.
#[allow(clippy::too_many_arguments)]
pub fn resume_campaign(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    config: &CampaignConfig,
    mut state: CampaignState,
    max_pairs: Option<u64>,
) -> CampaignRun {
    let _span = consent_telemetry::span("campaign.run");
    let engine = FaultyEngine::from_world(world, config.fault_profile, seed);
    let prober = WorldProber::new(world, seed.child("prober"));
    // Three resolution rounds over a week (§3.2). Resolution is a pure
    // function of the seed, so a resumed run re-derives identical URLs.
    let attempt_days = [day - 7, day - 4, day - 1];
    let seeds = resolve_all(domains.iter().cloned(), &prober, &attempt_days);
    let schedule = config.retry.schedule(day);
    let detector = Detector::hostname_only();
    let psl = PublicSuffixList::embedded();

    let total_pairs = (vantages.len() * seeds.len()) as u64;
    let budget = max_pairs.unwrap_or(u64::MAX);
    let mut processed = 0u64;
    let mut skipped = 0u64;
    let mut pair_index = 0u64;
    let mut columns: Vec<(Vantage, Vec<CampaignCapture>)> =
        vantages.iter().map(|&v| (v, Vec::new())).collect();
    'all: for (col, &vantage) in vantages.iter().enumerate() {
        for (i, s) in seeds.iter().enumerate() {
            if pair_index < state.pairs_done {
                pair_index += 1;
                skipped += 1;
                continue;
            }
            if processed >= budget {
                break 'all;
            }
            pair_index += 1;
            processed += 1;
            let out = process_pair_contained(
                &engine,
                s,
                i + 1,
                col,
                vantage,
                day,
                &schedule,
                config,
                &detector,
            );
            apply_pair(&mut state, &mut columns, day, out, &psl);
        }
    }
    consent_telemetry::count("campaign.pairs_skipped", skipped);
    let complete = state.pairs_done == total_pairs;
    CampaignRun {
        result: CampaignResult { columns, seeds },
        state,
        complete,
    }
}

/// Everything one processed `(domain, vantage)` pair contributes to the
/// campaign, produced by [`process_pair`] and folded into the cumulative
/// state by [`apply_pair`].
///
/// The split is what makes the parallel executor
/// ([`run_campaign_parallel`](crate::parallel::run_campaign_parallel))
/// deterministic: production is a pure function of the pair identity
/// (every random draw is keyed by `(host, day, vantage, attempt)` and
/// trace ids come from [`stable_id`]), so any number of workers can
/// produce outputs in any order, and the order-restoring merge applies
/// them in pair order — reproducing the sequential run byte for byte.
#[derive(Clone, Debug)]
pub(crate) struct PairOutput {
    /// Index into the campaign's vantage columns.
    pub(crate) col: usize,
    /// 1-based toplist rank.
    pub(crate) rank: usize,
    pub(crate) domain: String,
    pub(crate) vcode: String,
    pub(crate) trace_id: u64,
    pub(crate) capture: consent_httpsim::Capture,
    pub(crate) history: Vec<AttemptRecord>,
    /// Injected fault per attempt, re-derived from the pure plan.
    pub(crate) faults: Vec<Option<String>>,
    pub(crate) outcome: Outcome,
    pub(crate) breaker_opened: bool,
    /// CMPs detected on the final capture.
    pub(crate) cmps: CmpSet,
}

/// Crawl one `(domain, vantage)` pair: open its trace, walk the retry
/// schedule through the fault-injecting engine with a per-pair circuit
/// breaker, run CMP detection, and return everything the merge step
/// needs. Thread-safe: touches only shared immutable inputs, the
/// per-thread trace context, and the commutative telemetry registry.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_pair(
    engine: &FaultyEngine<'_>,
    s: &SeedUrl,
    rank: usize,
    col: usize,
    vantage: Vantage,
    day: Day,
    schedule: &[Day],
    config: &CampaignConfig,
    detector: &Detector,
) -> PairOutput {
    let _pair_span = consent_telemetry::span("campaign.pair");
    let collect_dom = vantage.location == Location::EuUniversity;
    // One trace per pair. The id is a pure function of the pair
    // identity, so a resumed replay assigns the same ids an
    // uninterrupted one would.
    let vcode = vantage_code(vantage);
    let trace_id = stable_id(&["pair", &s.domain, &vcode, &day.to_string()]);
    let _trace = consent_trace::start_trace("pair", trace_id, |a| {
        a.push("domain", s.domain.clone());
        a.push("rank", rank.to_string());
        a.push("vantage", vcode.clone());
        a.push("day", day.to_string());
    });
    let (host, _) = split_url(&s.url);

    let mut breaker = CircuitBreaker::new(config.breaker);
    let mut history = Vec::new();
    let mut faults: Vec<Option<String>> = Vec::new();
    let mut capture = None;
    let mut outcome = Outcome::Permanent;
    let mut breaker_opened = false;
    for (attempt, &attempt_day) in schedule.iter().enumerate() {
        let attempt_no = attempt as u8 + 1;
        let _span = consent_trace::span("attempt", |a| {
            a.push("attempt", attempt_no.to_string());
            a.push("day", attempt_day.to_string());
        });
        let c = engine.capture_attempt(
            &s.url,
            attempt_day,
            vantage,
            CaptureOptions { collect_dom },
            attempt_no,
        );
        outcome = Outcome::classify(c.status);
        breaker_opened = breaker.record(c.status);
        consent_trace::event("attempt.outcome", |a| {
            a.push("status", status_code(c.status));
            a.push("outcome", outcome.name());
        });
        history.push(AttemptRecord {
            day: attempt_day,
            status: c.status,
        });
        // Re-derive the decided fault from the pure plan so the
        // provenance record is identical with tracing on or off
        // (and matches the in-trace `fault.injected` event).
        faults.push(
            engine
                .plan()
                .decide(&host, attempt_day, vantage, attempt_no)
                .map(|f| f.name().to_string()),
        );
        capture = Some(c);
        if breaker_opened {
            consent_telemetry::count("campaign.breaker.open", 1);
            consent_telemetry::gauge_add("campaign.breaker.open_pairs", 1);
            consent_trace::event("breaker.open", |a| {
                a.push("attempt", attempt_no.to_string());
            });
            break;
        }
        let retry = config.retry.should_retry(outcome);
        consent_trace::event("retry.decision", |a| {
            a.push("retry", if retry { "yes" } else { "no" });
            a.push("outcome", outcome.name());
        });
        if !retry {
            break;
        }
    }
    let capture = capture.expect("schedule has at least one attempt");
    // Detection runs here — on the worker, while the pair's trace is
    // still open — so its trace events land inside the pair trace with
    // the same sequence numbers the sequential runner assigns.
    let cmps = CmpSet::from_iter(detector.detect(&capture));
    if !capture.usable() {
        consent_trace::event("dead_letter", |a| {
            a.push("outcome", outcome.name());
            a.push("attempts", history.len().to_string());
        });
    }
    PairOutput {
        col,
        rank,
        domain: s.domain.clone(),
        vcode,
        trace_id,
        capture,
        history,
        faults,
        outcome,
        breaker_opened,
        cmps,
    }
}

/// [`process_pair`] with panic containment: a panic anywhere inside the
/// capture path (an injected [`Fault::Panic`](consent_faultsim::Fault),
/// or a genuine bug) unwinds to here and becomes a classified
/// [`Outcome::Panic`] output instead of poisoning the executor — the
/// sequential loop survives, and a parallel worker thread keeps draining
/// pairs. The synthetic output is a pure function of the pair identity,
/// so exports stay byte-identical at any thread count, and its capture
/// is unusable, so [`apply_pair`] dead-letters the pair with provenance
/// like any other abandoned pair.
///
/// Both executors route every pair through this wrapper.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_pair_contained(
    engine: &FaultyEngine<'_>,
    s: &SeedUrl,
    rank: usize,
    col: usize,
    vantage: Vantage,
    day: Day,
    schedule: &[Day],
    config: &CampaignConfig,
    detector: &Detector,
) -> PairOutput {
    let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        process_pair(
            engine, s, rank, col, vantage, day, schedule, config, detector,
        )
    }));
    let payload = match attempt {
        Ok(out) => return out,
        Err(payload) => payload,
    };
    // The unwind already closed the pair's own trace (armed guards emit
    // their End events during the unwind), so the containment marker
    // goes in a sibling trace keyed by the same pair identity — reusing
    // the pair's trace id would restart its sequence numbers.
    let message = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
        .to_string();
    consent_telemetry::count("campaign.panic", 1);
    let vcode = vantage_code(vantage);
    let panic_trace = stable_id(&["pair.panic", &s.domain, &vcode, &day.to_string()]);
    {
        let _t = consent_trace::start_trace("pair.panic", panic_trace, |a| {
            a.push("domain", s.domain.clone());
            a.push("vantage", vcode.clone());
            a.push("day", day.to_string());
            a.push("message", message.clone());
        });
    }
    let (host, _) = split_url(&s.url);
    // One synthetic connection-failed attempt on the first scheduled
    // day: the real history died with the stack, but downstream
    // invariants (≥1 attempt per pair, `pairs_done == db.len()`,
    // unusable ⇒ dead-lettered) must hold regardless.
    let first_day = schedule.first().copied().unwrap_or(day);
    let capture = consent_httpsim::Capture {
        seed_url: s.url.clone(),
        final_url: s.url.clone(),
        final_host: host,
        day: first_day,
        vantage,
        status: CaptureStatus::ConnectionFailed,
        requests: Vec::new(),
        cookies: Vec::new(),
        dialog_visible: false,
        dom: None,
    };
    let trace_id = stable_id(&["pair", &s.domain, &vcode, &day.to_string()]);
    PairOutput {
        col,
        rank,
        domain: s.domain.clone(),
        vcode,
        trace_id,
        capture,
        history: vec![AttemptRecord {
            day: first_day,
            status: CaptureStatus::ConnectionFailed,
        }],
        faults: vec![Some("panic".to_string())],
        outcome: Outcome::Panic,
        breaker_opened: false,
        cmps: CmpSet::empty(),
    }
}

/// Fold one [`PairOutput`] into the cumulative campaign state and the
/// per-vantage result columns. Single-threaded by construction: the
/// sequential runner calls it right after [`process_pair`], the parallel
/// runner calls it from the merge loop in ascending pair order, so the
/// [`CaptureDb`] insertion order — and with it the checkpoint export —
/// is identical on both paths.
pub(crate) fn apply_pair(
    state: &mut CampaignState,
    columns: &mut [(Vantage, Vec<CampaignCapture>)],
    day: Day,
    out: PairOutput,
    psl: &PublicSuffixList,
) {
    let PairOutput {
        col,
        rank,
        domain,
        vcode,
        trace_id,
        capture,
        history,
        faults,
        outcome,
        breaker_opened,
        cmps,
    } = out;
    let attempts = history.len() as u8;
    if consent_telemetry::enabled() {
        consent_telemetry::observe("campaign.attempts", u64::from(attempts));
        consent_telemetry::count("campaign.retries", u64::from(attempts).saturating_sub(1));
        consent_telemetry::count_labeled("campaign.outcome", &[("outcome", outcome.name())], 1);
    }
    state.db.ingest(&capture, cmps, psl);
    state.pairs_done += 1;
    let dead_lettered = !capture.usable();
    state.provenance.push(Provenance {
        domain: domain.clone(),
        rank: rank as u64,
        vantage: vcode,
        day: day.to_string(),
        trace_id,
        attempts: history
            .iter()
            .zip(&faults)
            .map(|(a, fault)| AttemptProvenance {
                day: a.day.to_string(),
                status: status_code(a.status).to_string(),
                fault: fault.clone(),
            })
            .collect(),
        outcome: outcome.name().to_string(),
        final_status: status_code(capture.status).to_string(),
        breaker_opened,
        dead_lettered,
    });
    if dead_lettered {
        state.dead_letters.push(DeadLetter {
            domain: domain.clone(),
            rank,
            vantage: columns[col].0,
            attempts: history,
            outcome,
            breaker_opened,
        });
    }
    columns[col].1.push(CampaignCapture {
        rank,
        domain,
        capture,
        attempts,
        outcome,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_httpsim::Timing;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 5_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn quiet() -> CampaignConfig {
        CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        }
    }

    #[test]
    fn toplist_roughly_tracks_ground_truth() {
        let w = world();
        let list = build_toplist(&w, 1_000, SeedTree::new(7));
        assert_eq!(list.len(), 1_000);
        // The true top 20 should mostly make the aggregated top 60.
        let head: Vec<&String> = list.iter().take(60).collect();
        let mut recovered = 0;
        for rank in 1..=20u32 {
            let d = w.profile(rank).domain.clone();
            if head.contains(&&d) {
                recovered += 1;
            }
        }
        assert!(recovered >= 14, "recovered {recovered}/20");
        // No duplicates.
        let mut dedup = list.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 1_000);
    }

    #[test]
    fn campaign_covers_all_columns() {
        let w = world();
        let list = build_toplist(&w, 150, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = Vantage::table1_columns();
        let run = run_campaign_with(&w, &list, day, &vantages, SeedTree::new(9), &quiet());
        let result = run.result;
        assert!(run.complete);
        assert_eq!(run.state.pairs_done, 6 * 150);
        assert_eq!(run.state.db.len(), 6 * 150);
        assert_eq!(run.state.provenance.len(), 6 * 150);
        // Under FaultProfile::none no attempt carries an injected fault.
        for p in run.state.provenance.records() {
            assert!(p.injected_faults().next().is_none(), "{}", p.domain);
            assert_eq!(
                p.dead_lettered,
                run.state
                    .dead_letters
                    .records()
                    .iter()
                    .any(|dl| dl.domain == p.domain && vantage_code(dl.vantage) == p.vantage),
            );
        }
        assert_eq!(result.columns.len(), 6);
        assert_eq!(result.seeds.len(), 150);
        for (_, captures) in &result.columns {
            assert_eq!(captures.len(), 150);
        }
        // University columns carry DOM; cloud columns don't.
        let uni = result.column(vantages[3]).unwrap();
        let usable_with_dom = uni
            .iter()
            .filter(|c| c.capture.usable() && c.capture.dom.is_some())
            .count();
        assert!(usable_with_dom > 100);
        let cloud = result.column(vantages[0]).unwrap();
        assert!(cloud.iter().all(|c| c.capture.dom.is_none()));
    }

    #[test]
    fn eu_university_sees_at_least_as_many_cmps_as_us_cloud() {
        let w = world();
        let list = build_toplist(&w, 400, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = Vantage::table1_columns();
        let result = run_campaign(&w, &list, day, &vantages, SeedTree::new(9));
        let det = consent_fingerprint::Detector::hostname_only();
        let count = |vantage: Vantage| {
            result
                .column(vantage)
                .unwrap()
                .iter()
                .filter(|c| !det.detect(&c.capture).is_empty())
                .count()
        };
        let us = count(vantages[0]);
        let eu_cloud = count(vantages[1]);
        let uni_ext = count(vantages[3]);
        assert!(us <= eu_cloud, "us {us} > eu cloud {eu_cloud}");
        assert!(eu_cloud <= uni_ext, "eu cloud {eu_cloud} > uni {uni_ext}");
        assert!(uni_ext > 0);
    }

    #[test]
    fn retries_bounded_and_permanent_failures_short_circuit() {
        let w = world();
        let list = build_toplist(&w, 100, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let run = run_campaign_with(
            &w,
            &list,
            day,
            &[Vantage {
                location: Location::EuUniversity,
                timing: Timing::Extended,
                language: consent_httpsim::Language::EnUs,
            }],
            SeedTree::new(9),
            &quiet(),
        );
        for c in run.result.column(run.result.columns[0].0).unwrap() {
            assert!((1..=4).contains(&c.attempts));
            if c.outcome == Outcome::Permanent {
                // The §3.2 schedule is for *transient* failures; a 451
                // geo-block or dead host must not burn retry budget.
                assert_eq!(c.attempts, 1, "{} retried a permanent failure", c.domain);
                assert_eq!(c.capture.day, day);
            }
            if c.outcome == Outcome::Success && c.attempts == 1 {
                assert_eq!(c.capture.day, day);
            }
        }
    }

    #[test]
    fn legally_blocked_eu_sites_are_dead_lettered_once() {
        let w = world();
        let list = build_toplist(&w, 300, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let run = run_campaign_with(
            &w,
            &list,
            day,
            &[Vantage::eu_cloud()],
            SeedTree::new(9),
            &quiet(),
        );
        let blocked: Vec<&DeadLetter> = run
            .state
            .dead_letters
            .records()
            .iter()
            .filter(|r| {
                r.attempts
                    .iter()
                    .any(|a| a.status == CaptureStatus::LegallyBlocked)
            })
            .collect();
        assert!(!blocked.is_empty(), "no 451 sites in a 300-domain EU crawl");
        for dl in blocked {
            assert_eq!(dl.outcome, Outcome::Permanent);
            assert_eq!(dl.attempts.len(), 1, "{} retried", dl.domain);
            assert!(!dl.breaker_opened);
        }
    }

    #[test]
    fn state_roundtrips_through_export() {
        let w = world();
        let list = build_toplist(&w, 80, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let run = run_campaign_with(
            &w,
            &list,
            day,
            &[Vantage::us_cloud(), Vantage::eu_cloud()],
            SeedTree::new(9),
            &quiet(),
        );
        let text = run.state.export();
        let back = CampaignState::import(&text).unwrap();
        assert_eq!(back.pairs_done, run.state.pairs_done);
        assert_eq!(back.db.len(), run.state.db.len());
        assert_eq!(back.dead_letters, run.state.dead_letters);
        assert_eq!(back.provenance, run.state.provenance);
        assert_eq!(back.export(), text);
        // Every db row has a provenance record and vice versa.
        assert_eq!(back.provenance.len() as u64, back.db.len());
    }

    #[test]
    fn state_import_rejects_corruption() {
        assert!(CampaignState::import("").is_err());
        assert!(CampaignState::import("#wrong\n").is_err());
        // v1 checkpoints (no provenance section) are not importable.
        assert!(CampaignState::import(
            "#consent-campaign-state v1\npairs_done=0\n#consent-capture-db v2\n#consent-dead-letters v1\n"
        )
        .is_err());
        assert!(CampaignState::import(STATE_HEADER).is_err());
        let no_dl = format!("{STATE_HEADER}\npairs_done=0\n#consent-capture-db v2\n");
        assert!(CampaignState::import(&no_dl).is_err());
        let no_prov = format!(
            "{STATE_HEADER}\npairs_done=0\n#consent-capture-db v2\n#consent-dead-letters v2\n"
        );
        assert!(CampaignState::import(&no_prov).is_err());
        // Sections out of order are corruption.
        let swapped = format!(
            "{STATE_HEADER}\npairs_done=0\n#consent-capture-db v2\n#consent-provenance v1\n#consent-dead-letters v2\n"
        );
        assert!(CampaignState::import(&swapped).is_err());
        // A cursor that disagrees with the stored rows is corruption.
        let bad_cursor = format!(
            "{STATE_HEADER}\npairs_done=5\n#consent-capture-db v2\n#consent-dead-letters v2\n#consent-provenance v1\n"
        );
        assert!(CampaignState::import(&bad_cursor).is_err());
        // v2 state checkpoints (unescaped dead-letter section) are a
        // different format and must not be silently reinterpreted.
        assert!(CampaignState::import(
            "#consent-campaign-state v2\npairs_done=0\n#consent-capture-db v2\n#consent-dead-letters v1\n#consent-provenance v1\n"
        )
        .is_err());
        // A provenance section shorter than the cursor is corruption
        // even when the capture-db agrees.
        let run = {
            let w = world();
            let list = build_toplist(&w, 3, SeedTree::new(7));
            run_campaign_with(
                &w,
                &list,
                Day::from_ymd(2020, 5, 15),
                &[Vantage::us_cloud()],
                SeedTree::new(9),
                &quiet(),
            )
        };
        let text = run.state.export();
        let prov_header = "#consent-provenance v1\n";
        let pos = text.find(prov_header).unwrap();
        let truncated = format!("{}{}", &text[..pos], prov_header);
        assert!(CampaignState::import(&truncated).is_err());
        let empty = CampaignState::new().export();
        assert_eq!(CampaignState::import(&empty).unwrap().pairs_done, 0);
    }

    #[test]
    fn state_import_reports_whole_file_line_numbers() {
        // Layout: line 1 state header, 2 pairs_done, 3 db header,
        // 4 dl header, 5 prov header. A garbage row injected into a
        // section must be reported at its line number in the whole
        // checkpoint, not relative to the section header.
        let garbage_in = |section: &str| -> String {
            let mut lines = vec![
                STATE_HEADER.to_string(),
                "pairs_done=0".into(),
                "#consent-capture-db v2".into(),
                "#consent-dead-letters v2".into(),
                "#consent-provenance v1".into(),
            ];
            let at = match section {
                "db" => 3,
                "dl" => 4,
                _ => 5,
            };
            lines.insert(at, "garbage row".into());
            lines.join("\n") + "\n"
        };
        for (section, want_line, want_msg) in [
            ("db", 4, "capture-db section"),
            ("dl", 5, "dead-letter section"),
            ("prov", 6, "provenance section"),
        ] {
            let e = CampaignState::import(&garbage_in(section)).unwrap_err();
            assert_eq!(e.line, want_line, "{section}: {}", e.message);
            assert!(e.message.contains(want_msg), "{section}: {}", e.message);
        }
        // Missing sections point past the end of what's there.
        let e = CampaignState::import(&format!(
            "{STATE_HEADER}\npairs_done=0\n#consent-capture-db v2\n"
        ))
        .unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("missing dead-letter section"));
    }
}
