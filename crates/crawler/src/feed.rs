//! The social-media URL feed seeding the crawlers.
//!
//! §3.4: Netograph ingests all URLs shared on Reddit and 1 % of public
//! tweets; Twitter accounts for 80 % of URLs, popular URLs get multiple
//! chances through resharing, and the sample "skews heavily towards
//! popular URLs". We model the feed as a Zipf process over socially
//! visible sites with per-site subsite selection and a share of
//! shortener/alias seed URLs that produce the paper's ~11 % top-level
//! redirect rate.

use consent_stats::Zipf;
use consent_util::{Day, SeedTree};
use consent_webgraph::{site, World};
use rand::rngs::StdRng;
use rand::Rng;

/// Where a URL was spotted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedSource {
    /// Twitter sample stream (~80 % of URLs).
    Twitter,
    /// Reddit firehose.
    Reddit,
}

/// One URL entering the capture queue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedItem {
    /// Submission time: day plus seconds within the day.
    pub day: Day,
    /// Seconds since midnight.
    pub seconds: u32,
    /// The shared URL.
    pub url: String,
    /// Source platform.
    pub source: FeedSource,
}

/// Feed-generation parameters.
#[derive(Clone, Debug)]
pub struct FeedConfig {
    /// URLs emitted per simulated day.
    pub urls_per_day: usize,
    /// Zipf exponent of the popularity skew (reshares + sampling).
    pub zipf_exponent: f64,
    /// Probability that the shared URL uses an alias/shortener domain
    /// rather than the canonical one (drives the 11 % redirect rate,
    /// together with toplist-level redirects).
    pub alias_share: f64,
    /// Twitter's share of items (§3.4: 80 %).
    pub twitter_share: f64,
}

impl Default for FeedConfig {
    fn default() -> FeedConfig {
        FeedConfig {
            urls_per_day: 2_000,
            zipf_exponent: 1.15,
            alias_share: 0.09,
            twitter_share: 0.80,
        }
    }
}

/// The feed generator.
pub struct Feed<'w> {
    world: &'w World,
    config: FeedConfig,
    zipf: Zipf,
    seed: SeedTree,
}

impl<'w> Feed<'w> {
    /// Create a feed over `world`.
    pub fn new(world: &'w World, config: FeedConfig, seed: SeedTree) -> Feed<'w> {
        let zipf = Zipf::new(u64::from(world.n_sites()), config.zipf_exponent);
        Feed {
            world,
            config,
            zipf,
            seed: seed.child("feed"),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FeedConfig {
        &self.config
    }

    /// Generate the feed items for one day, in submission-time order.
    pub fn day_items(&self, day: Day) -> Vec<FeedItem> {
        let _span = consent_telemetry::span("feed.day_items");
        let mut rng = self.seed.child_idx(day.0 as u64).rng();
        let mut items = Vec::with_capacity(self.config.urls_per_day);
        for _ in 0..self.config.urls_per_day {
            if let Some(item) = self.draw_item(day, &mut rng) {
                items.push(item);
            }
        }
        items.sort_by_key(|i| i.seconds);
        if consent_telemetry::enabled() {
            let twitter = items
                .iter()
                .filter(|i| i.source == FeedSource::Twitter)
                .count() as u64;
            consent_telemetry::count_labeled("feed.items", &[("source", "Twitter")], twitter);
            consent_telemetry::count_labeled(
                "feed.items",
                &[("source", "Reddit")],
                items.len() as u64 - twitter,
            );
            consent_telemetry::observe("feed.day_volume", items.len() as u64);
        }
        items
    }

    fn draw_item(&self, day: Day, rng: &mut StdRng) -> Option<FeedItem> {
        // Re-draw a few times if we land on a site users never share.
        for _ in 0..8 {
            let rank = self.zipf.sample(rng) as u32;
            let profile = self.world.profile(rank);
            if !profile.socially_visible() {
                continue;
            }
            // Subsite selection: landing pages are shared most, articles
            // follow a long tail.
            let idx = if rng.gen::<f64>() < 0.35 {
                0
            } else {
                rng.gen_range(0..profile.subsites)
            };
            let path = site::subsite_path(rank, idx);
            let host = if rng.gen::<f64>() < self.config.alias_share {
                profile
                    .alias
                    .clone()
                    .unwrap_or_else(|| site::alias_domain_for(rank))
            } else {
                profile.domain.clone()
            };
            let source = if rng.gen::<f64>() < self.config.twitter_share {
                FeedSource::Twitter
            } else {
                FeedSource::Reddit
            };
            return Some(FeedItem {
                day,
                seconds: rng.gen_range(0..86_400),
                url: format!("https://{host}{path}"),
                source,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 50_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn feed(w: &World) -> Feed<'_> {
        Feed::new(w, FeedConfig::default(), SeedTree::new(5))
    }

    #[test]
    fn deterministic_per_day() {
        let w = world();
        let f = feed(&w);
        let d = Day::from_ymd(2019, 3, 3);
        assert_eq!(f.day_items(d), f.day_items(d));
        assert_ne!(f.day_items(d), f.day_items(d + 1));
    }

    #[test]
    fn emits_configured_volume() {
        let w = world();
        let f = feed(&w);
        let items = f.day_items(Day::from_ymd(2019, 3, 3));
        assert!(items.len() >= f.config().urls_per_day * 9 / 10);
        // Sorted by time-of-day.
        for pair in items.windows(2) {
            assert!(pair[0].seconds <= pair[1].seconds);
        }
    }

    #[test]
    fn twitter_share_near_eighty_percent() {
        let w = world();
        let f = feed(&w);
        let items = f.day_items(Day::from_ymd(2019, 6, 1));
        let twitter = items
            .iter()
            .filter(|i| i.source == FeedSource::Twitter)
            .count();
        let share = twitter as f64 / items.len() as f64;
        assert!((share - 0.80).abs() < 0.04, "twitter share {share}");
    }

    #[test]
    fn popularity_skew() {
        let w = world();
        let f = feed(&w);
        let mut head = 0usize;
        let mut total = 0usize;
        for d in 0..5 {
            for item in f.day_items(Day::from_ymd(2019, 6, 1) + d) {
                let (host, _) = consent_httpsim::split_url(&item.url);
                if let Some(rank) = site::rank_of_host(&host) {
                    total += 1;
                    if rank <= 1_000 {
                        head += 1;
                    }
                }
            }
        }
        // Top 2 % of ranks should carry a large share of items.
        let share = head as f64 / total as f64;
        assert!(share > 0.3, "head share {share}");
    }

    #[test]
    fn some_urls_use_alias_domains() {
        let w = world();
        let f = feed(&w);
        let items = f.day_items(Day::from_ymd(2020, 1, 10));
        let aliased = items.iter().filter(|i| i.url.contains("-alt.")).count();
        let share = aliased as f64 / items.len() as f64;
        assert!((0.04..0.16).contains(&share), "alias share {share}");
    }

    #[test]
    fn subsites_are_sampled_not_just_landing_pages() {
        let w = world();
        let f = feed(&w);
        let items = f.day_items(Day::from_ymd(2020, 1, 10));
        let articles = items.iter().filter(|i| i.url.contains("/article/")).count();
        assert!(articles > items.len() / 4, "articles {articles}");
        let landings = items.iter().filter(|i| i.url.ends_with('/')).count();
        assert!(landings > items.len() / 5, "landings {landings}");
    }
}
