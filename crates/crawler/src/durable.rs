//! Crash-safe campaign execution over a durable checkpoint store.
//!
//! The plain executors ([`resume_campaign`](crate::resume_campaign),
//! [`resume_campaign_parallel`]) keep state in memory and leave
//! persistence to the caller. This module closes the loop:
//! [`run_durable_campaign`] processes pairs in chunks and writes each
//! cut to a [`CheckpointStore`] as a five-section checkpoint — the three
//! `CampaignState` sections plus a cursor line and the global trace
//! log's JSONL export — so a process death at any instant loses at most
//! one chunk of work.
//!
//! # Recovery and salvage rules
//!
//! On start, [`recover_state`] walks the store newest-generation-first:
//!
//! 1. A generation that validates end-to-end (every section CRC intact)
//!    is reassembled and imported. If the *semantic* import fails despite
//!    intact CRCs, the generation is quarantined like a corrupt one and
//!    the walk continues.
//! 2. A corrupt generation is quarantined by the store, but its
//!    individually intact sections are still considered: if `capture-db`,
//!    `dead-letters`, `provenance`, and `trace-jsonl` all survived, the
//!    state is salvaged from them — rebuilding the tiny `meta` cursor
//!    section from the capture count when it was the casualty. The
//!    `trace-jsonl` section is required because a resumed run must
//!    reproduce the uninterrupted run's trace export byte-for-byte,
//!    which is impossible if already-applied pairs lost their events.
//! 3. Otherwise the next-older generation is tried; with none left the
//!    campaign restarts fresh.
//!
//! Every decision is recorded in the returned
//! [`SalvageReport`]. Because pair processing is deterministic, any
//! pairs lost to a quarantined generation are simply re-crawled, and the
//! final exports reconcile byte-for-byte with an uninterrupted run.
//!
//! # Delta chains
//!
//! With [`CheckpointMode::Delta`], generations form *chains*: a full
//! base followed by delta generations whose sections carry only what
//! was appended since the previous cut — new capture rows (in the
//! capture-db delta format, see `docs/STORAGE.md`), new dead-letter and
//! provenance record lines, and the trace events recorded in the
//! window. A delta cut therefore costs O(captures since the last cut)
//! instead of O(campaign so far). Chain structure lives in the
//! [`SECTION_DELTA_META`] section (`parent=`/`base=` links); filenames
//! and generation numbering are unchanged, and the chain base is pinned
//! against rotation via
//! [`CheckpointStore::save_with_min_retained`]. Recovery walks the
//! parent links and replays deltas in order through the same importers
//! a full generation uses; a corrupt or missing chain member
//! quarantines itself, the head, and everything between — the walk then
//! retries from the shorter chain below the break, an older full
//! generation, or scratch. After `rebase_every` deltas (and at the
//! first cut of every process incarnation) the driver writes a fresh
//! full base, bounding chain length and unpinning the old base. None of
//! this changes the bytes: the reassembled state passes the identical
//! semantic import, and exports stay byte-identical across modes,
//! thread counts, and kill-halfway resumes.
//!
//! # Deterministic crashes
//!
//! [`DurableOpts::crash`] accepts a [`CrashPlan`]
//! (`CONSENT_CRASHPOINT`): the driver dies — cooperatively, returning
//! [`DurableOutcome::Crashed`] — immediately after the Nth applied pair
//! (before the covering checkpoint is written) or by tearing the Nth
//! checkpoint write after a byte budget. `tests/it_durability.rs` sweeps
//! every such crashpoint of a small campaign and asserts resumed runs
//! are byte-identical to uninterrupted ones.
//!
//! # Storage faults and self-healing
//!
//! Every checkpoint write runs under a
//! [`Supervisor`]: transient storage
//! errors are retried with capped deterministic backoff out of a
//! per-campaign budget, persistent ones (`ENOSPC`) descend the
//! degradation ladder — shed trace section → widen cadence →
//! memory-only — so the run always ends [`DurableOutcome::Complete`],
//! [`DurableOutcome::Degraded`] (with a loud
//! [`HealthReport`]), or
//! [`DurableOutcome::Crashed`], never wedged. Faults are injected
//! deterministically at the store's [`Vfs`](consent_checkpoint::Vfs)
//! seam via `consent-faultsim`'s [`IoFaultPlan`] / [`FaultyVfs`]
//! (`CONSENT_IO_CHAOS`, honored by [`open_chaos_store`]). Whatever the
//! disk does, the final `CampaignState` export stays byte-identical —
//! only *durability* degrades, never the measurement.

use std::io;
use std::path::Path;
use std::sync::Arc;

use consent_checkpoint::{CheckpointStore, Section, DEFAULT_KEEP};
use consent_faultsim::{CrashPlan, FaultyVfs, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_obs::Sampler;
use consent_trace::TraceMark;
use consent_util::{Day, SeedTree};
use consent_watch::{Watch, WATCH_STATE_SECTION};
use consent_webgraph::World;

pub use consent_checkpoint::SalvageReport;

use crate::archive::{pack_campaign_bundle, ArchiveContext, CampaignArtifacts, ExportFn};
use crate::campaign::{CampaignConfig, CampaignResult, CampaignState, STATE_HEADER};
use crate::capture_db::DbMarks;
use crate::export::export as export_db;
use crate::export::import as import_db;
use crate::export::{apply_delta, export_delta};
use crate::parallel::{resume_campaign_parallel, ParallelOpts};
use crate::supervisor::{DegradeLevel, HealthReport, SaveVerdict, Supervisor, SupervisorPolicy};

/// Checkpoint section holding the state header + `pairs_done` cursor.
pub const SECTION_META: &str = "meta";
/// Checkpoint section holding the capture database.
pub const SECTION_DB: &str = "capture-db";
/// Checkpoint section holding the dead-letter queue.
pub const SECTION_DEAD_LETTERS: &str = "dead-letters";
/// Checkpoint section holding the provenance log.
pub const SECTION_PROVENANCE: &str = "provenance";
/// Checkpoint section holding the trace log's JSONL export.
pub const SECTION_TRACE: &str = "trace-jsonl";

/// Checkpoint section marking a generation as a delta and carrying its
/// chain links (`parent=`/`base=`). Its *presence* is what
/// distinguishes a delta generation from a full one — filenames are
/// identical, so generation numbering and rotation stay uniform.
pub const SECTION_DELTA_META: &str = "delta-meta";
/// Delta section: capture rows appended since the parent generation, in
/// the `#consent-capture-db-delta v1` format
/// (see [`export_delta`]).
pub const SECTION_DB_DELTA: &str = "capture-db-delta";
/// Delta section: dead-letter record lines appended since the parent.
pub const SECTION_DEAD_LETTERS_DELTA: &str = "dead-letters-delta";
/// Delta section: provenance record lines appended since the parent.
pub const SECTION_PROVENANCE_DELTA: &str = "provenance-delta";
/// Delta section: trace events recorded since the parent, as sorted
/// JSONL (a deterministic *set*, not a byte-suffix of the full export).
pub const SECTION_TRACE_DELTA: &str = "trace-jsonl-delta";

/// First line of a [`SECTION_DELTA_META`] body.
pub const DELTA_META_HEADER: &str = "#consent-delta-meta v1";

/// What each checkpoint generation contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointMode {
    /// Every generation is a self-contained snapshot (the default, and
    /// the only behavior before delta checkpoints existed).
    Full,
    /// Generations form chains: a full *base* followed by deltas that
    /// carry only the rows/records/events appended since the previous
    /// cut, so each write costs O(new captures) instead of O(campaign).
    Delta {
        /// Delta cuts between full bases. After this many deltas the
        /// next cut rebases (writes a fresh full snapshot), bounding
        /// both recovery reassembly work and how long rotation must
        /// pin the chain base. `0` behaves exactly like
        /// [`CheckpointMode::Full`].
        rebase_every: u64,
    },
}

/// Post-completion archival: pack the finished campaign into a
/// content-addressed bundle (see [`crate::archive`]).
///
/// The pack runs after the final checkpoint is durable, through
/// [`pack_campaign_bundle`] — i.e. under `CONSENT_IO_CHAOS` with
/// scrub-until-clean verification
/// ([`SCRUB_ROUNDS`](crate::archive::SCRUB_ROUNDS)). It is
/// supervisor-aware: a campaign that degraded to memory-only skips the
/// pack (the disk has proven unusable) and records why in the
/// [`HealthReport`]; a pack failure downgrades the outcome to
/// [`DurableOutcome::Degraded`] without touching the campaign state.
#[derive(Clone)]
pub struct BundleSpec {
    /// Bundle directory (created if needed).
    pub dir: std::path::PathBuf,
    /// Analysis-export provider for the bundle's `analysis` section —
    /// the code replay later re-runs for the byte-identity check.
    pub provider: Option<Arc<ExportFn>>,
    /// A GVL snapshot (compact JSON) to archive alongside the state.
    pub gvl_json: Option<String>,
}

impl std::fmt::Debug for BundleSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BundleSpec")
            .field("dir", &self.dir)
            .field("provider", &self.provider.as_ref().map(|_| "<fn>"))
            .field("gvl_json", &self.gvl_json.as_ref().map(String::len))
            .finish()
    }
}

/// How a durable campaign runs.
#[derive(Clone, Debug)]
pub struct DurableOpts {
    /// Worker threads per chunk (`<= 1` is the sequential executor).
    pub threads: usize,
    /// Campaign behavior: chaos profile, retry schedule, breaker.
    pub config: CampaignConfig,
    /// Pairs per checkpoint: after every `checkpoint_every` applied
    /// pairs a new generation is written. Clamped to at least 1.
    pub checkpoint_every: u64,
    /// Deterministic crash schedule for this run ([`CrashPlan::none`]
    /// for production use).
    pub crash: CrashPlan,
    /// Optional flight-recorder sampler. The driver rebases it to the
    /// recovered cursor after recovery (so a resumed process's
    /// re-import traffic is not attributed to any window) and, in
    /// logical-tick mode, ticks it at `state.pairs_done` immediately
    /// after every successful checkpoint write — so a sample exists iff
    /// its window is durable, which is what makes the `OBS` export
    /// byte-identical across thread counts and kill-halfway resumes.
    pub sampler: Option<Arc<Sampler>>,
    /// Optional SLO/anomaly watchdog. Mirrors the sampler's lifecycle —
    /// rebased to the recovered cursor (after importing the
    /// `watch-state` checkpoint section persisted by the previous
    /// incarnation) and advanced only at durable checkpoint cuts, via a
    /// two-phase protocol: the driver *stages* the window before each
    /// save (the watch state blob rides inside the checkpoint), then
    /// *commits* on a durable write or *aborts* on a skipped one. An
    /// alert event therefore exists iff the window it describes is
    /// durable, which is what makes the `ALERTS` export byte-identical
    /// across thread counts and kill-halfway resumes.
    pub watch: Option<Arc<Watch>>,
    /// Self-healing policy for storage faults: retry budget, backoff
    /// caps, cadence widening, recovery attempts (see
    /// [`Supervisor`]).
    pub supervisor: SupervisorPolicy,
    /// Full snapshots every cut, or delta chains (see
    /// [`CheckpointMode`]). A resumed run always opens its incarnation
    /// with a full base regardless of mode, so chains never span
    /// process restarts.
    pub mode: CheckpointMode,
    /// Pack the completed campaign into a content-addressed bundle
    /// (see [`BundleSpec`]). `None` skips archival entirely.
    pub bundle: Option<BundleSpec>,
}

impl Default for DurableOpts {
    /// Sequential, default config, checkpoint every 25 pairs, no crash,
    /// full snapshots.
    fn default() -> DurableOpts {
        DurableOpts {
            threads: 1,
            config: CampaignConfig::default(),
            checkpoint_every: 25,
            crash: CrashPlan::none(),
            sampler: None,
            watch: None,
            supervisor: SupervisorPolicy::default(),
            mode: CheckpointMode::Full,
            bundle: None,
        }
    }
}

/// How a durable run ended. Never "wedged": a campaign always reaches
/// one of these three verdicts, whatever the disk does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurableOutcome {
    /// Every pair was processed and the final checkpoint is on disk.
    Complete,
    /// Every pair was processed, but storage faults forced the
    /// supervisor down its degradation ladder — the campaign *state* is
    /// still byte-identical to a healthy run, but durability guarantees
    /// were shed along the way (see the report's ladder level).
    Degraded(HealthReport),
    /// The configured [`CrashPlan`] fired: the simulated process died.
    Crashed {
        /// The crashpoint that fired (its `Display` form).
        crashpoint: String,
        /// `pairs_done` of the last checkpoint known durable on disk —
        /// everything after it dies with the process and is re-crawled
        /// on resume.
        durable_pairs: u64,
    },
}

impl DurableOutcome {
    /// True when every pair was processed (`Complete` or `Degraded`).
    pub fn finished(&self) -> bool {
        !matches!(self, DurableOutcome::Crashed { .. })
    }
}

/// The result of one [`run_durable_campaign`] invocation.
#[derive(Debug)]
pub struct DurableRun {
    /// Cumulative state at exit (on a crash, the in-memory state the
    /// dead process would have lost back to `durable_pairs`).
    pub state: CampaignState,
    /// Captures processed by this invocation only.
    pub result: CampaignResult,
    /// Whether the run completed, degraded, or a crashpoint fired.
    pub outcome: DurableOutcome,
    /// Everything recovery found and did when opening the store.
    pub salvage: SalvageReport,
    /// The supervisor's full ledger for this run — populated even for
    /// `Complete` outcomes (a healed transient fault leaves traces
    /// here without degrading the run).
    pub health: HealthReport,
    /// The archival pack report, when [`DurableOpts::bundle`] was set
    /// and the pack ran (i.e. the campaign finished and storage had not
    /// degraded to memory-only). The report's manifest has a clean fsck
    /// behind it — `pack_campaign_bundle` scrubs until verification
    /// passes or gives up with an error.
    pub bundle: Option<consent_bundle::PackReport>,
}

/// Build the five checkpoint sections for a state + trace snapshot.
/// The concatenation of the first four bodies is exactly
/// [`CampaignState::export`], so reassembly re-uses the importer.
pub fn state_sections(state: &CampaignState, trace_jsonl: &str) -> Vec<Section> {
    vec![
        Section::new(
            SECTION_META,
            format!("{STATE_HEADER}\npairs_done={}\n", state.pairs_done),
        ),
        Section::new(SECTION_DB, export_db(&state.db)),
        Section::new(SECTION_DEAD_LETTERS, state.dead_letters.export()),
        Section::new(SECTION_PROVENANCE, state.provenance.export()),
        Section::new(SECTION_TRACE, trace_jsonl),
    ]
}

/// Where each appendable store component stood at one checkpoint cut —
/// the cursor a delta generation is written *from*. Captured on the
/// merge thread at a quiescent point, so every field is deterministic.
#[derive(Clone, Debug)]
pub struct DeltaMarks {
    /// Capture-db per-shard row counts + host count.
    pub db: DbMarks,
    /// Dead-letter records.
    pub dead: usize,
    /// Provenance records.
    pub prov: usize,
    /// Trace log per-shard event counts (of the global log).
    pub trace: TraceMark,
}

impl DeltaMarks {
    /// Snapshot the cursors of `state` (and the global trace log) now.
    pub fn capture(state: &CampaignState) -> DeltaMarks {
        DeltaMarks {
            db: state.db.marks(),
            dead: state.dead_letters.len(),
            prov: state.provenance.len(),
            trace: consent_trace::global().mark(),
        }
    }
}

/// The driver's cursor into an open delta chain: where each store
/// component stood at the last durable cut. Marks advance only on
/// [`SaveVerdict::Saved`] — a skipped (memory-only) write leaves them
/// alone so the next delta covers both chunks, and a shed-trace write
/// leaves the trace mark alone so a later healthy delta heals the gap.
#[derive(Debug)]
struct ChainMarks {
    /// Generation of the chain's full base.
    base: u64,
    /// Newest durable chain member (the next delta's `parent=`).
    head: u64,
    /// Delta cuts since the base, for the rebase cadence.
    deltas: u64,
    /// Component cursors at the head.
    marks: DeltaMarks,
}

/// Build the sections of one delta generation: the full (tiny) cursor
/// meta, the chain links (`parent`/`base` generation numbers), and one
/// appended-only section per store component. Total size is O(captures
/// since `marks`) — this is the exact payload the durable driver writes
/// at a delta cut, public so the bench harness measures the real thing.
pub fn delta_state_sections(
    state: &CampaignState,
    marks: &DeltaMarks,
    parent: u64,
    base: u64,
    trace_delta: &str,
) -> Vec<Section> {
    vec![
        Section::new(
            SECTION_META,
            format!("{STATE_HEADER}\npairs_done={}\n", state.pairs_done),
        ),
        Section::new(
            SECTION_DELTA_META,
            format!("{DELTA_META_HEADER}\nparent={parent}\nbase={base}\n"),
        ),
        Section::new(SECTION_DB_DELTA, export_delta(&state.db, &marks.db)),
        Section::new(
            SECTION_DEAD_LETTERS_DELTA,
            state.dead_letters.export_from(marks.dead),
        ),
        Section::new(
            SECTION_PROVENANCE_DELTA,
            state.provenance.export_from(marks.prov),
        ),
        Section::new(SECTION_TRACE_DELTA, trace_delta),
    ]
}

/// Parse a [`SECTION_DELTA_META`] body into `(parent, base)`.
fn parse_delta_meta(body: &str) -> Option<(u64, u64)> {
    let mut lines = body.lines();
    if lines.next()? != DELTA_META_HEADER {
        return None;
    }
    let parent = lines.next()?.strip_prefix("parent=")?.parse().ok()?;
    let base = lines.next()?.strip_prefix("base=")?.parse().ok()?;
    Some((parent, base))
}

/// Reassemble a state from checkpoint section bodies.
fn state_from_parts(
    meta: &str,
    db: &str,
    dead_letters: &str,
    provenance: &str,
) -> Result<CampaignState, String> {
    let text = format!("{meta}{db}{dead_letters}{provenance}");
    CampaignState::import(&text).map_err(|e| format!("line {}: {}", e.line, e.message))
}

/// A `meta` section reconstructed from an intact capture-db section —
/// the cursor always equals the number of stored captures.
fn rebuilt_meta(db_text: &str) -> Option<String> {
    let db = import_db(db_text).ok()?;
    Some(format!("{STATE_HEADER}\npairs_done={}\n", db.len()))
}

/// Try to salvage a state (and its trace + watch-state snapshots) from
/// the individually intact sections of one quarantined generation. The
/// `watch-state` section is optional — losing it only resets detector
/// windows, never measurement state.
fn salvage_from(
    q: &consent_checkpoint::QuarantinedGeneration,
) -> Option<(CampaignState, String, String, String)> {
    let sec = |name: &str| q.salvaged.iter().find(|s| s.name == name);
    let db = sec(SECTION_DB)?;
    let dl = sec(SECTION_DEAD_LETTERS)?;
    let prov = sec(SECTION_PROVENANCE)?;
    let trace = sec(SECTION_TRACE)?;
    let watch = sec(WATCH_STATE_SECTION)
        .map(|s| s.body.clone())
        .unwrap_or_default();
    let (meta, how) = match sec(SECTION_META) {
        Some(m) => (m.body.clone(), "meta intact"),
        None => (rebuilt_meta(&db.body)?, "meta rebuilt from capture count"),
    };
    let state = state_from_parts(&meta, &db.body, &dl.body, &prov.body).ok()?;
    Some((state, trace.body.clone(), watch, how.to_string()))
}

/// A fully reassembled delta chain.
struct AssembledChain {
    state: CampaignState,
    /// Base trace JSONL + each delta's events, concatenated. Importable
    /// as-is (the importer is order-insensitive and re-sorts on export).
    trace: String,
    /// The head's `watch-state` blob (empty if absent).
    watch: String,
    /// Chain length excluding the base, for the report.
    deltas: u64,
    /// The base generation, for the report.
    base: u64,
}

/// Why a chain could not be used, and which generations it takes down.
struct ChainFailure {
    reason: String,
    /// Chain members to quarantine: the head, every delta walked before
    /// the failure, and the failed member itself. Members *older* than
    /// the failure stay live — the next recovery pass reassembles the
    /// shorter chain that ends just below it.
    implicated: Vec<u64>,
}

/// Walk a delta chain from its head down the `parent=` links to the
/// full base, then replay every delta in ascending order: capture rows
/// through [`apply_delta`] (the normal insert path, so seals and
/// telemetry reconcile), dead-letter/provenance lines by text
/// concatenation, trace JSONL by concatenation. The reassembled state
/// passes the same semantic import as a full generation.
fn assemble_chain(
    store: &CheckpointStore,
    head: consent_checkpoint::Checkpoint,
) -> Result<AssembledChain, ChainFailure> {
    let sec = |c: &consent_checkpoint::Checkpoint, name: &str| {
        c.section(name).map(|s| s.body.clone()).unwrap_or_default()
    };
    // Newest-first walk; `members` collects the delta generations.
    let mut members = vec![head];
    let mut implicated = vec![members[0].generation];
    let base = loop {
        let Some(cur) = members.last() else {
            // Unreachable by construction (the walk starts with the
            // head), but a graceful chain failure beats a panic inside
            // recovery.
            return Err(ChainFailure {
                reason: "chain walk lost its head".into(),
                implicated,
            });
        };
        let Some((parent, _chain_base)) = parse_delta_meta(&sec(cur, SECTION_DELTA_META)) else {
            return Err(ChainFailure {
                reason: format!(
                    "generation {}: malformed delta-meta section",
                    cur.generation
                ),
                implicated,
            });
        };
        if parent >= cur.generation {
            return Err(ChainFailure {
                reason: format!(
                    "generation {}: non-decreasing parent link {parent}",
                    cur.generation
                ),
                implicated,
            });
        }
        let scan = match store.scan_generation(parent) {
            Ok(scan) => scan,
            Err(e) => {
                return Err(ChainFailure {
                    reason: format!("chain parent generation {parent} unreadable: {e}"),
                    implicated,
                })
            }
        };
        if !scan.intact() {
            implicated.push(parent);
            return Err(ChainFailure {
                reason: format!(
                    "chain member generation {parent} corrupt: {}",
                    scan.describe()
                ),
                implicated,
            });
        }
        let Some(ckpt) = scan.into_checkpoint() else {
            implicated.push(parent);
            return Err(ChainFailure {
                reason: format!(
                    "chain member generation {parent} scanned intact but yielded no checkpoint"
                ),
                implicated,
            });
        };
        if ckpt.section(SECTION_DELTA_META).is_some() {
            implicated.push(parent);
            members.push(ckpt);
            continue;
        }
        break ckpt;
    };
    // Semantic failures below poison the whole chain, base included.
    let whole_chain = || {
        let mut all = implicated.clone();
        all.push(base.generation);
        all
    };
    let mut db = match import_db(&sec(&base, SECTION_DB)) {
        Ok(db) => db,
        Err(e) => {
            return Err(ChainFailure {
                reason: format!(
                    "chain base generation {} capture-db unimportable: line {}: {}",
                    base.generation, e.line, e.message
                ),
                implicated: whole_chain(),
            })
        }
    };
    let mut dead_letters = sec(&base, SECTION_DEAD_LETTERS);
    let mut provenance = sec(&base, SECTION_PROVENANCE);
    let mut trace = sec(&base, SECTION_TRACE);
    members.reverse(); // ascending: oldest delta first, head last
    for member in &members {
        if let Err(e) = apply_delta(&mut db, &sec(member, SECTION_DB_DELTA)) {
            return Err(ChainFailure {
                reason: format!(
                    "generation {} capture-db delta rejected: line {}: {}",
                    member.generation, e.line, e.message
                ),
                implicated: whole_chain(),
            });
        }
        dead_letters.push_str(&sec(member, SECTION_DEAD_LETTERS_DELTA));
        provenance.push_str(&sec(member, SECTION_PROVENANCE_DELTA));
        trace.push_str(&sec(member, SECTION_TRACE_DELTA));
    }
    let Some(head) = members.last() else {
        return Err(ChainFailure {
            reason: "chain reassembly lost its members".into(),
            implicated: whole_chain(),
        });
    };
    let state = state_from_parts(
        &sec(head, SECTION_META),
        &export_db(&db),
        &dead_letters,
        &provenance,
    )
    .map_err(|e| ChainFailure {
        reason: format!("reassembled chain failed state import: {e}"),
        implicated: whole_chain(),
    })?;
    Ok(AssembledChain {
        state,
        trace,
        watch: sec(head, WATCH_STATE_SECTION),
        deltas: members.len() as u64,
        base: base.generation,
    })
}

/// Open the newest usable state in `store` per the salvage rules in the
/// [module docs](self). Returns the state, the persisted trace-JSONL
/// snapshot that accompanies it, and the full salvage report. A clean
/// empty store yields a fresh state and a clean report.
pub fn recover_state(
    store: &CheckpointStore,
) -> io::Result<(CampaignState, String, SalvageReport)> {
    let (state, trace, _watch, report) = recover_sections(store)?;
    Ok((state, trace, report))
}

/// [`recover_state`] plus the persisted `watch-state` section body
/// (empty when the generation predates the watchdog or lost it to
/// corruption).
fn recover_sections(
    store: &CheckpointStore,
) -> io::Result<(CampaignState, String, String, SalvageReport)> {
    let mut report = SalvageReport::default();
    loop {
        let (ckpt, found) = store.open_latest()?;
        report.absorb(found);
        // A quarantined-but-partially-intact newer generation beats the
        // older fully intact one: fewer pairs to re-crawl.
        for q in report.quarantined.clone() {
            if let Some((state, trace, watch, how)) = salvage_from(&q) {
                report.used_generation = None;
                report.note(format!(
                    "salvaged state ({} pairs) from quarantined generation {} ({how})",
                    state.pairs_done, q.generation
                ));
                return Ok((state, trace, watch, report));
            }
        }
        let Some(ckpt) = ckpt else {
            if !report.is_clean() {
                report.note("no generation usable: restarting campaign from scratch".to_string());
            }
            return Ok((CampaignState::new(), String::new(), String::new(), report));
        };
        if ckpt.section(SECTION_DELTA_META).is_some() {
            let head_gen = ckpt.generation;
            match assemble_chain(store, ckpt) {
                Ok(chain) => {
                    report.used_generation = Some(head_gen);
                    report.note(format!(
                        "recovered delta chain: base generation {} + {} delta(s), head {} ({} pairs)",
                        chain.base, chain.deltas, head_gen, chain.state.pairs_done
                    ));
                    consent_telemetry::count("checkpoint.chain.recovered", 1);
                    consent_telemetry::observe("checkpoint.chain.deltas", chain.deltas);
                    return Ok((chain.state, chain.trace, chain.watch, report));
                }
                Err(fail) => {
                    // A broken link takes down the head and everything
                    // between it and the break; older members stay live
                    // so the next pass can use the shorter chain (or an
                    // older generation, or restart from scratch).
                    report.used_generation = None;
                    for g in fail.implicated {
                        let scan = store.scan_generation(g).ok();
                        let Ok(qpath) = store.quarantine(g) else {
                            report.note(format!(
                                "chain member generation {g} vanished before quarantine"
                            ));
                            continue;
                        };
                        let (valid_prefix, salvaged, verdicts) = match scan {
                            Some(s) => (s.valid_prefix(), s.salvageable(), s.verdicts),
                            None => (0, Vec::new(), Vec::new()),
                        };
                        report.actions.push(format!(
                            "quarantined chain member generation {g} ({}): {}",
                            qpath.display(),
                            fail.reason
                        ));
                        report
                            .quarantined
                            .push(consent_checkpoint::QuarantinedGeneration {
                                generation: g,
                                reason: fail.reason.clone(),
                                valid_prefix,
                                salvaged,
                                verdicts,
                                quarantine_path: Some(qpath.display().to_string()),
                            });
                    }
                    continue;
                }
            }
        }
        let get = |name: &str| ckpt.section(name).map(|s| s.body.as_str()).unwrap_or("");
        match state_from_parts(
            get(SECTION_META),
            get(SECTION_DB),
            get(SECTION_DEAD_LETTERS),
            get(SECTION_PROVENANCE),
        ) {
            Ok(state) => {
                return Ok((
                    state,
                    get(SECTION_TRACE).to_string(),
                    get(WATCH_STATE_SECTION).to_string(),
                    report,
                ))
            }
            Err(e) => {
                // CRC-intact but semantically unimportable (e.g. a
                // hand-edited file): quarantine and fall back like any
                // other corruption.
                let g = ckpt.generation;
                let qpath = store.quarantine(g)?;
                report.used_generation = None;
                report.note(format!(
                    "quarantined generation {g} ({}): sections intact but state import failed: {e}",
                    qpath.display()
                ));
            }
        }
    }
}

/// Open a [`CheckpointStore`] honoring the `CONSENT_IO_CHAOS`
/// environment variable: with a plan set, the store's filesystem seam
/// is wrapped in a [`FaultyVfs`] injecting the scheduled storage
/// faults; without one, this is exactly [`CheckpointStore::open`].
pub fn open_chaos_store(dir: impl AsRef<Path>) -> io::Result<CheckpointStore> {
    let plan = IoFaultPlan::from_env();
    if plan.is_none() {
        CheckpointStore::open(dir)
    } else {
        CheckpointStore::with_vfs(dir, DEFAULT_KEEP, Arc::new(FaultyVfs::new(plan)))
    }
}

/// Run (or resume) a campaign with durable checkpoints.
///
/// Recovers the newest usable state from `store` (salvaging or
/// quarantining corrupt generations as needed), restores the persisted
/// trace events into the global trace log (only when the log is empty —
/// a freshly restarted process — and tracing is enabled), then processes
/// the remaining pairs in chunks of `opts.checkpoint_every`, writing a
/// checkpoint generation after each chunk.
///
/// Determinism: chunking, thread count, crashes, and salvage never
/// change the bytes — a resumed run's final `state.export()` and trace
/// export equal an uninterrupted run's, because pair processing is a
/// pure function of the pair identity and application order is always
/// the deterministic pair order.
pub fn run_durable_campaign(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    store: &CheckpointStore,
    opts: &DurableOpts,
) -> io::Result<DurableRun> {
    let mut sup = Supervisor::new(opts.supervisor);
    let (mut state, trace_jsonl, watch_jsonl, mut salvage) =
        match sup.recover_with(|| recover_sections(store)) {
            Ok(v) => v,
            Err(err) => {
                // The on-disk history is unreadable even after retries.
                // Restart from scratch rather than wedge: pair processing
                // is deterministic, so a full re-crawl reproduces the same
                // final state the history would have yielded.
                let mut report = SalvageReport::default();
                report.note(format!(
                    "storage recovery abandoned ({err}): restarting campaign from scratch"
                ));
                (CampaignState::new(), String::new(), String::new(), report)
            }
        };
    let mut durable_pairs = state.pairs_done;
    if consent_trace::enabled() && !trace_jsonl.is_empty() && consent_trace::global().is_empty() {
        // An unimportable trace section is a durability casualty, not a
        // campaign killer: the measurement state is intact, only the
        // resumed trace export loses byte-identity with an
        // uninterrupted run. Record it loudly and continue — aborting
        // here would wedge a recoverable campaign over observability.
        if let Err(e) = consent_trace::global().import_jsonl(&trace_jsonl) {
            consent_telemetry::count("checkpoint.trace.unimportable", 1);
            salvage.note(format!(
                "recovered trace section unimportable ({e}): continuing without it; \
                 this incarnation's trace export will omit pre-crash events"
            ));
        }
    }

    // Rebase the flight recorder only after recovery and trace import:
    // both re-count work this process never performed (checkpoint
    // import inserts into the CaptureDb, the store counts
    // `checkpoint.opens`), and that traffic must not be attributed to
    // any sample window.
    if let Some(sampler) = &opts.sampler {
        sampler.rebase(state.pairs_done);
    }
    // Same discipline for the watchdog: restore the detector state the
    // previous incarnation persisted (only into a fresh watch — a
    // rejected blob, e.g. after a rule-config change, just restarts the
    // detectors), then swallow the recovery traffic with a rebase.
    if let Some(watch) = &opts.watch {
        if !watch_jsonl.is_empty() && watch.is_fresh() && watch.import_state(&watch_jsonl).is_err()
        {
            consent_telemetry::count("watch.state.rejected", 1);
        }
        watch.rebase(state.pairs_done);
    }

    let mut every = opts.checkpoint_every.max(1);
    let mut cadence_widened = false;
    let mut applied_this_run = 0u64;
    let mut writes_this_run = 0u64;
    let mut result: Option<CampaignResult> = None;
    // The open delta chain, if any. Always `None` at process start —
    // even a resumed run writes a fresh full base at its first cut, so
    // chains never span incarnations and the driver never has to
    // reconstruct disk-relative marks from a recovered state.
    let mut chain: Option<ChainMarks> = None;
    // The health report carries the watchdog's fired alerts on every
    // exit path — a crashed run's report still names what was firing.
    let health_of = |sup: &Supervisor| {
        let mut health = sup.report();
        if let Some(watch) = &opts.watch {
            health.alerts = watch.fired_summaries();
        }
        health
    };
    let crashed =
        |state: CampaignState, result: Option<CampaignResult>, durable_pairs| DurableRun {
            state,
            result: result.unwrap_or_default(),
            outcome: DurableOutcome::Crashed {
                crashpoint: opts.crash.describe(),
                durable_pairs,
            },
            salvage: SalvageReport::default(),
            health: HealthReport::default(),
            bundle: None,
        };
    loop {
        let mut chunk = every;
        if let Some(n) = opts.crash.apply_point() {
            let remaining = n.saturating_sub(applied_this_run);
            if remaining == 0 {
                // Died immediately after the Nth applied pair — before
                // any checkpoint covering it could be written.
                let mut run = crashed(state, result, durable_pairs);
                run.salvage = salvage;
                run.health = health_of(&sup);
                return Ok(run);
            }
            chunk = chunk.min(remaining);
        }
        let popts = ParallelOpts {
            threads: opts.threads,
            config: opts.config,
            max_pairs: Some(chunk),
        };
        let before = state.pairs_done;
        let run = resume_campaign_parallel(world, domains, day, vantages, seed, &popts, state);
        state = run.state;
        let did = state.pairs_done - before;
        // Heartbeat: cumulative pairs applied, advanced once per chunk.
        // Executor-agnostic (counted here, not in the workers), so its
        // per-window delta is deterministic at any thread count.
        consent_telemetry::count("campaign.progress", did);
        applied_this_run += did;
        result = Some(match result {
            Some(acc) => acc.merge(run.result),
            None => run.result,
        });
        if opts
            .crash
            .apply_point()
            .is_some_and(|n| applied_this_run >= n)
        {
            let mut out = crashed(state, result, durable_pairs);
            out.salvage = salvage;
            out.health = health_of(&sup);
            return Ok(out);
        }
        if did > 0 || durable_pairs != state.pairs_done {
            writes_this_run += 1;
            // Checkpoint cadence: pairs of work covered by this write
            // (write size/latency are recorded by the store itself).
            consent_telemetry::observe("campaign.checkpoint.cadence_pairs", did);
            // This cut is a delta iff a chain is open and its rebase
            // cadence hasn't elapsed; otherwise it's a full snapshot
            // (which, in delta mode, opens or rebases the chain). The
            // chain cursor is bound here, at the decision — the write
            // closures below never have to re-derive (or trust) it.
            let delta_chain = match (opts.mode, &chain) {
                (CheckpointMode::Delta { rebase_every }, Some(c)) if c.deltas < rebase_every => {
                    Some((c.head, c.base, c.marks.clone()))
                }
                _ => None,
            };
            let delta_write = delta_chain.is_some();
            // The full-export snapshot is only needed for full cuts —
            // skipping it on delta cuts is half the point: a delta cut
            // must not touch O(campaign) bytes anywhere.
            let trace_snapshot = if delta_write {
                String::new()
            } else {
                consent_trace::global().export_jsonl()
            };
            // Stage the watch window covering this cut *before* the
            // write: the post-window detector state rides inside the
            // checkpoint, and the window only becomes observable
            // (commit) once that checkpoint is durable.
            let watch_blob = opts.watch.as_ref().and_then(|w| w.stage(state.pairs_done));
            let with_watch = |mut sections: Vec<Section>| {
                if let Some(blob) = &watch_blob {
                    sections.push(Section::new(WATCH_STATE_SECTION, blob.clone()));
                }
                sections
            };
            // Rebuild this cut's sections at a degradation level; a
            // shed-trace level empties the trace (delta or snapshot).
            let sections_at = |shed: bool| -> Vec<Section> {
                if let Some((head, base, marks)) = &delta_chain {
                    let trace_delta = if shed {
                        String::new()
                    } else {
                        consent_trace::global().export_jsonl_since(&marks.trace)
                    };
                    delta_state_sections(&state, marks, *head, *base, &trace_delta)
                } else {
                    let trace = if shed { "" } else { trace_snapshot.as_str() };
                    state_sections(&state, trace)
                }
            };
            if let Some(keep_bytes) = opts.crash.write_truncation(writes_this_run) {
                let sections = with_watch(sections_at(false));
                if store.save_torn(&sections, keep_bytes).is_err() {
                    // The dying process's torn write failed outright
                    // (e.g. injected storage chaos): even fewer bytes
                    // reached the disk, which changes nothing about the
                    // crash semantics — nothing durable was added.
                    consent_telemetry::count("checkpoint.io_fault", 1);
                }
                // The torn generation is not durable; the previous cut
                // is — and the staged watch window dies with the
                // process, exactly like the sampler's unticked window.
                if let Some(watch) = &opts.watch {
                    watch.abort();
                }
                let mut out = crashed(state, result, durable_pairs);
                out.salvage = salvage;
                out.health = health_of(&sup);
                return Ok(out);
            }
            // Supervised write: retries, backoff, and ladder descent
            // all happen inside. The attempt closure rebuilds sections
            // at the supervisor's current level so a mid-save descent
            // to shed-trace takes effect on the very next attempt. A
            // delta write pins the chain base against rotation; a full
            // write imposes no floor (rotation may drop the old chain).
            let verdict = sup.save_with(state.pairs_done, |level| {
                let sections = with_watch(sections_at(level >= DegradeLevel::ShedTrace));
                if let Some((_, base, _)) = &delta_chain {
                    store.save_with_min_retained(&sections, *base)
                } else {
                    store.save(&sections)
                }
            });
            if let SaveVerdict::Saved(generation) = verdict {
                durable_pairs = state.pairs_done;
                if matches!(opts.mode, CheckpointMode::Delta { .. }) {
                    // Advance the chain cursor to this durable cut. The
                    // trace mark stays put on a shed write so the next
                    // healthy delta re-covers the shed window (mirroring
                    // full mode, where the next snapshot re-exports all).
                    let shed = sup.level() >= DegradeLevel::ShedTrace;
                    let mut marks = DeltaMarks::capture(&state);
                    if shed {
                        marks.trace = chain
                            .as_ref()
                            .map(|c| c.marks.trace.clone())
                            .unwrap_or_default();
                    }
                    let rebased = !delta_write && chain.is_some();
                    chain = Some(match chain.take() {
                        Some(mut c) if delta_write => {
                            c.head = generation;
                            c.deltas += 1;
                            c.marks = marks;
                            consent_telemetry::count("checkpoint.delta.writes", 1);
                            c
                        }
                        _ => ChainMarks {
                            base: generation,
                            head: generation,
                            deltas: 0,
                            marks,
                        },
                    });
                    if rebased {
                        consent_telemetry::count("checkpoint.rebase", 1);
                    }
                    consent_telemetry::gauge_set(
                        "checkpoint.chain.len",
                        chain.as_ref().map_or(0, |c| c.deltas as i64 + 1),
                    );
                }
                // Sample only once the covering checkpoint is durable:
                // a window that could still be lost to a crash must
                // never appear in the OBS export, or a resumed run
                // would re-emit (and double) it.
                if let Some(sampler) = &opts.sampler {
                    sampler.tick_at(state.pairs_done);
                }
                // Same rule for the watchdog, via its staged window.
                if let Some(watch) = &opts.watch {
                    watch.commit();
                }
            } else if let Some(watch) = &opts.watch {
                // Skipped write (memory-only): the window stays open and
                // the next durable cut will cover it too.
                watch.abort();
            }
            // Entering wide-cadence widens the interval once, for the
            // rest of the run (memory-only keeps the widened value;
            // the chunk size also paces crashpoint checks).
            if !cadence_widened && sup.level() >= DegradeLevel::WideCadence {
                cadence_widened = true;
                every = every.saturating_mul(opts.supervisor.cadence_factor.max(1));
            }
        }
        if run.complete {
            let mut health = health_of(&sup);
            let result = result.unwrap_or_default();
            let mut bundle = None;
            let mut bundle_failed = false;
            if let Some(spec) = &opts.bundle {
                if sup.level() >= DegradeLevel::MemoryOnly {
                    // The supervisor has already concluded this disk
                    // cannot hold a checkpoint; don't fight it for an
                    // archive. The caller still has the in-memory state.
                    consent_telemetry::count("bundle.pack.skipped", 1);
                    health.events.push(crate::supervisor::HealthEvent {
                        pairs_done: state.pairs_done,
                        level: sup.level(),
                        reason: "bundle pack skipped: storage degraded to memory-only".into(),
                    });
                } else {
                    let ctx = ArchiveContext::from_campaign(day, domains, vantages, &seed);
                    let artifacts = CampaignArtifacts {
                        results: vec![&result],
                        trace_jsonl: if consent_trace::enabled() {
                            consent_trace::global().export_jsonl()
                        } else {
                            String::new()
                        },
                        obs_jsonl: opts.sampler.as_ref().map(|s| s.export_jsonl()),
                        alerts_jsonl: opts.watch.as_ref().map(|w| w.export_jsonl()),
                        gvl_json: spec.gvl_json.clone(),
                    };
                    match pack_campaign_bundle(
                        &spec.dir,
                        &state,
                        &ctx,
                        &artifacts,
                        spec.provider.as_deref(),
                    ) {
                        Ok((report, _fsck)) => bundle = Some(report),
                        Err(e) => {
                            // The campaign itself finished; only the
                            // archive is missing. Degrade instead of
                            // erroring so the measurement survives.
                            bundle_failed = true;
                            consent_telemetry::count("bundle.pack.failures", 1);
                            health.events.push(crate::supervisor::HealthEvent {
                                pairs_done: state.pairs_done,
                                level: sup.level(),
                                reason: format!("bundle pack failed: {e}"),
                            });
                            health.last_error = Some(format!("bundle pack: {e}"));
                        }
                    }
                }
            }
            let outcome = if sup.degraded() || bundle_failed {
                DurableOutcome::Degraded(health.clone())
            } else {
                DurableOutcome::Complete
            };
            return Ok(DurableRun {
                state,
                result,
                outcome,
                salvage,
                health,
                bundle,
            });
        }
        debug_assert!(did > 0, "incomplete campaign made no progress");
        if did == 0 {
            return Err(io::Error::other(
                "durable campaign made no progress on an incomplete state",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{build_toplist, run_campaign_with};
    use crate::resilience::{BreakerConfig, RetryPolicy};
    use consent_faultsim::FaultProfile;
    use consent_webgraph::{AdoptionConfig, WorldConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-durable-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn quiet() -> CampaignConfig {
        CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        }
    }

    fn small_state() -> CampaignState {
        let world = World::new(WorldConfig {
            n_sites: 400,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 6, SeedTree::new(7));
        run_campaign_with(
            &world,
            &list,
            consent_util::Day::from_ymd(2020, 5, 15),
            &[Vantage::eu_cloud()],
            SeedTree::new(9),
            &quiet(),
        )
        .state
    }

    #[test]
    fn sections_concatenate_to_the_state_export() {
        let state = small_state();
        let sections = state_sections(&state, "{\"kind\":\"trace_event\"}\n");
        assert_eq!(
            sections.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec![
                SECTION_META,
                SECTION_DB,
                SECTION_DEAD_LETTERS,
                SECTION_PROVENANCE,
                SECTION_TRACE
            ],
        );
        let concat: String = sections[..4].iter().map(|s| s.body.as_str()).collect();
        assert_eq!(concat, state.export());
    }

    #[test]
    fn save_then_recover_round_trips() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        store.save(&state_sections(&state, "trace\n")).unwrap();
        // "trace\n" is not valid JSONL, but recover_state only carries
        // the snapshot; importing it is the driver's job.
        let (back, trace, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export());
        assert_eq!(trace, "trace\n");
        assert!(report.is_clean());
        assert_eq!(report.used_generation, Some(1));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_recovers_fresh() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (state, trace, report) = recover_state(&store).unwrap();
        assert_eq!(state.pairs_done, 0);
        assert!(trace.is_empty());
        assert!(report.is_clean());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_meta_is_rebuilt_from_intact_sections() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        let g = store.save(&state_sections(&state, "")).unwrap();
        // Flip one byte inside the meta body: it is the first section,
        // so its bytes start right after the `#end-header` line.
        let path = store.path_for(g);
        let mut bytes = std::fs::read(&path).unwrap();
        let marker = b"#end-header\n";
        let start = bytes
            .windows(marker.len())
            .position(|w| w == marker)
            .unwrap()
            + marker.len();
        bytes[start + 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export(), "{}", report.render());
        assert_eq!(report.used_generation, None);
        assert_eq!(report.quarantined.len(), 1);
        assert!(
            report.actions.iter().any(|a| a.contains("meta rebuilt")),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    fn small_world() -> (World, Vec<String>) {
        let world = World::new(WorldConfig {
            n_sites: 400,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 6, SeedTree::new(7));
        (world, list)
    }

    #[test]
    fn delta_mode_matches_full_mode_and_recovers() {
        let (world, list) = small_world();
        let day = consent_util::Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let run = |mode: CheckpointMode| {
            let dir = tmp_dir();
            let store = CheckpointStore::open(&dir).unwrap();
            let opts = DurableOpts {
                config: quiet(),
                checkpoint_every: 4,
                mode,
                ..DurableOpts::default()
            };
            let out = run_durable_campaign(
                &world,
                &list,
                day,
                &vantages,
                SeedTree::new(9),
                &store,
                &opts,
            )
            .unwrap();
            assert!(out.outcome.finished());
            (dir, store, out)
        };
        let (dir_full, _, full) = run(CheckpointMode::Full);
        let (dir_delta, store, delta) = run(CheckpointMode::Delta { rebase_every: 3 });
        // Byte-identity across modes: deltas change durability cost,
        // never the measurement.
        assert_eq!(full.state.export(), delta.state.export());
        // 6 pairs at cadence 4 → a full base then one delta head.
        let gens = store.generations().unwrap();
        assert_eq!(gens, vec![1, 2]);
        let head = store.scan_generation(2).unwrap();
        assert!(
            head.section(SECTION_DELTA_META).is_some(),
            "head not a delta"
        );
        assert!(
            head.section(SECTION_DB).is_none(),
            "delta carries a full db"
        );
        // Recovery walks the chain back to the final state.
        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), delta.state.export(), "{}", report.render());
        assert_eq!(report.used_generation, Some(2));
        assert!(
            report
                .actions
                .iter()
                .any(|a| a.contains("recovered delta chain")),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(dir_full).unwrap();
        std::fs::remove_dir_all(dir_delta).unwrap();
    }

    #[test]
    fn corrupt_delta_falls_back_to_its_base() {
        let (world, list) = small_world();
        let day = consent_util::Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let opts = DurableOpts {
            config: quiet(),
            checkpoint_every: 4,
            mode: CheckpointMode::Delta { rebase_every: 8 },
            ..DurableOpts::default()
        };
        run_durable_campaign(
            &world,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &store,
            &opts,
        )
        .unwrap();
        // Flip a byte in the delta head's payload; the chain must fall
        // back to the intact full base (4 of 6 pairs).
        let path = store.path_for(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.pairs_done, 4, "{}", report.render());
        assert_eq!(report.used_generation, Some(1));
        assert!(store.quarantine_dir().join("gen-00000002.ckpt").is_file());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn broken_chain_middle_quarantines_down_to_the_break() {
        let (world, list) = small_world();
        let day = consent_util::Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let opts = DurableOpts {
            config: quiet(),
            checkpoint_every: 2,
            mode: CheckpointMode::Delta { rebase_every: 8 },
            ..DurableOpts::default()
        };
        let run = run_durable_campaign(
            &world,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &store,
            &opts,
        )
        .unwrap();
        // 6 pairs at cadence 2 → base + two deltas.
        assert_eq!(store.generations().unwrap(), vec![1, 2, 3]);
        // Corrupt the *middle* delta: the head (3) is intact but
        // unusable without it, so both quarantine; the base survives.
        let path = store.path_for(2);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.pairs_done, 2, "{}", report.render());
        assert_eq!(report.used_generation, Some(1));
        assert!(store.quarantine_dir().join("gen-00000002.ckpt").is_file());
        assert!(store.quarantine_dir().join("gen-00000003.ckpt").is_file());
        // Resuming from the shortened chain still reconciles.
        let resumed = run_durable_campaign(
            &world,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &store,
            &opts,
        )
        .unwrap();
        assert_eq!(resumed.state.export(), run.state.export());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rebase_cadence_writes_fresh_bases() {
        let (world, list) = small_world();
        let day = consent_util::Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let opts = DurableOpts {
            config: quiet(),
            checkpoint_every: 1,
            mode: CheckpointMode::Delta { rebase_every: 2 },
            ..DurableOpts::default()
        };
        run_durable_campaign(
            &world,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &store,
            &opts,
        )
        .unwrap();
        // 6 cuts with rebase_every=2 wrote full, Δ, Δ, full, Δ, Δ; the
        // rebase at generation 4 unpinned the first chain, so rotation
        // (keep 4) then shed its base and first delta. Generation 3
        // survives as an orphaned delta — harmless, because recovery
        // starts from the head's chain, not from stray members.
        let gens = store.generations().unwrap();
        assert_eq!(gens, vec![3, 4, 5, 6]);
        let kinds: Vec<bool> = gens
            .into_iter()
            .map(|g| {
                store
                    .scan_generation(g)
                    .unwrap()
                    .section(SECTION_DELTA_META)
                    .is_some()
            })
            .collect();
        assert_eq!(kinds, vec![true, false, true, true]);
        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.pairs_done, 6, "{}", report.render());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn intact_but_unimportable_generation_is_quarantined() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        store.save(&state_sections(&state, "")).unwrap();
        // A second generation whose sections checksum fine but whose
        // cursor lies about the stored rows.
        let mut lying = state_sections(&state, "");
        lying[0].body = format!("{STATE_HEADER}\npairs_done=999\n");
        store.save(&lying).unwrap();

        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export());
        assert_eq!(report.used_generation, Some(1));
        assert!(
            report
                .actions
                .iter()
                .any(|a| a.contains("state import failed")),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn completed_run_packs_a_verified_replayable_bundle() {
        let (world, list) = small_world();
        let day = consent_util::Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud()];
        let ckpt_dir = tmp_dir();
        let bundle_dir = tmp_dir();
        let provider: Arc<ExportFn> = Arc::new(|state: &CampaignState, ctx: &ArchiveContext| {
            vec![(
                "summary".to_string(),
                format!(
                    "pairs={}\ndomains={}\n",
                    state.pairs_done,
                    ctx.domains.len()
                ),
            )]
        });
        let store = CheckpointStore::open(&ckpt_dir).unwrap();
        let run = run_durable_campaign(
            &world,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &store,
            &DurableOpts {
                config: quiet(),
                checkpoint_every: 3,
                bundle: Some(BundleSpec {
                    dir: bundle_dir.clone(),
                    provider: Some(Arc::clone(&provider)),
                    gvl_json: Some("{}".into()),
                }),
                ..DurableOpts::default()
            },
        )
        .unwrap();
        assert_eq!(run.outcome, DurableOutcome::Complete);
        let report = run.bundle.expect("completed run packed a bundle");
        assert!(report.manifest.section("state").is_some());
        assert!(report.manifest.section("analysis").is_some());
        assert!(report.manifest.section("gvl").is_some());
        // The archive alone reproduces the campaign state and the
        // provider's exports byte-for-byte.
        let replay = crate::archive::replay_campaign_bundle(&bundle_dir, Some(&*provider)).unwrap();
        assert!(replay.ok(), "{}", replay.summary());
        assert_eq!(replay.pairs, run.state.pairs_done);
        std::fs::remove_dir_all(ckpt_dir).unwrap();
        std::fs::remove_dir_all(bundle_dir).unwrap();
    }
}
