//! Crash-safe campaign execution over a durable checkpoint store.
//!
//! The plain executors ([`resume_campaign`](crate::resume_campaign),
//! [`resume_campaign_parallel`]) keep state in memory and leave
//! persistence to the caller. This module closes the loop:
//! [`run_durable_campaign`] processes pairs in chunks and writes each
//! cut to a [`CheckpointStore`] as a five-section checkpoint — the three
//! `CampaignState` sections plus a cursor line and the global trace
//! log's JSONL export — so a process death at any instant loses at most
//! one chunk of work.
//!
//! # Recovery and salvage rules
//!
//! On start, [`recover_state`] walks the store newest-generation-first:
//!
//! 1. A generation that validates end-to-end (every section CRC intact)
//!    is reassembled and imported. If the *semantic* import fails despite
//!    intact CRCs, the generation is quarantined like a corrupt one and
//!    the walk continues.
//! 2. A corrupt generation is quarantined by the store, but its
//!    individually intact sections are still considered: if `capture-db`,
//!    `dead-letters`, `provenance`, and `trace-jsonl` all survived, the
//!    state is salvaged from them — rebuilding the tiny `meta` cursor
//!    section from the capture count when it was the casualty. The
//!    `trace-jsonl` section is required because a resumed run must
//!    reproduce the uninterrupted run's trace export byte-for-byte,
//!    which is impossible if already-applied pairs lost their events.
//! 3. Otherwise the next-older generation is tried; with none left the
//!    campaign restarts fresh.
//!
//! Every decision is recorded in the returned
//! [`SalvageReport`]. Because pair processing is deterministic, any
//! pairs lost to a quarantined generation are simply re-crawled, and the
//! final exports reconcile byte-for-byte with an uninterrupted run.
//!
//! # Deterministic crashes
//!
//! [`DurableOpts::crash`] accepts a [`CrashPlan`]
//! (`CONSENT_CRASHPOINT`): the driver dies — cooperatively, returning
//! [`DurableOutcome::Crashed`] — immediately after the Nth applied pair
//! (before the covering checkpoint is written) or by tearing the Nth
//! checkpoint write after a byte budget. `tests/it_durability.rs` sweeps
//! every such crashpoint of a small campaign and asserts resumed runs
//! are byte-identical to uninterrupted ones.
//!
//! # Storage faults and self-healing
//!
//! Every checkpoint write runs under a
//! [`Supervisor`]: transient storage
//! errors are retried with capped deterministic backoff out of a
//! per-campaign budget, persistent ones (`ENOSPC`) descend the
//! degradation ladder — shed trace section → widen cadence →
//! memory-only — so the run always ends [`DurableOutcome::Complete`],
//! [`DurableOutcome::Degraded`] (with a loud
//! [`HealthReport`]), or
//! [`DurableOutcome::Crashed`], never wedged. Faults are injected
//! deterministically at the store's [`Vfs`](consent_checkpoint::Vfs)
//! seam via `consent-faultsim`'s [`IoFaultPlan`] / [`FaultyVfs`]
//! (`CONSENT_IO_CHAOS`, honored by [`open_chaos_store`]). Whatever the
//! disk does, the final `CampaignState` export stays byte-identical —
//! only *durability* degrades, never the measurement.

use std::io;
use std::path::Path;
use std::sync::Arc;

use consent_checkpoint::{CheckpointStore, Section, DEFAULT_KEEP};
use consent_faultsim::{CrashPlan, FaultyVfs, IoFaultPlan};
use consent_httpsim::Vantage;
use consent_obs::Sampler;
use consent_util::{Day, SeedTree};
use consent_watch::{Watch, WATCH_STATE_SECTION};
use consent_webgraph::World;

pub use consent_checkpoint::SalvageReport;

use crate::campaign::{CampaignConfig, CampaignResult, CampaignState, STATE_HEADER};
use crate::export::export as export_db;
use crate::export::import as import_db;
use crate::parallel::{resume_campaign_parallel, ParallelOpts};
use crate::supervisor::{DegradeLevel, HealthReport, SaveVerdict, Supervisor, SupervisorPolicy};

/// Checkpoint section holding the state header + `pairs_done` cursor.
pub const SECTION_META: &str = "meta";
/// Checkpoint section holding the capture database.
pub const SECTION_DB: &str = "capture-db";
/// Checkpoint section holding the dead-letter queue.
pub const SECTION_DEAD_LETTERS: &str = "dead-letters";
/// Checkpoint section holding the provenance log.
pub const SECTION_PROVENANCE: &str = "provenance";
/// Checkpoint section holding the trace log's JSONL export.
pub const SECTION_TRACE: &str = "trace-jsonl";

/// How a durable campaign runs.
#[derive(Clone, Debug)]
pub struct DurableOpts {
    /// Worker threads per chunk (`<= 1` is the sequential executor).
    pub threads: usize,
    /// Campaign behavior: chaos profile, retry schedule, breaker.
    pub config: CampaignConfig,
    /// Pairs per checkpoint: after every `checkpoint_every` applied
    /// pairs a new generation is written. Clamped to at least 1.
    pub checkpoint_every: u64,
    /// Deterministic crash schedule for this run ([`CrashPlan::none`]
    /// for production use).
    pub crash: CrashPlan,
    /// Optional flight-recorder sampler. The driver rebases it to the
    /// recovered cursor after recovery (so a resumed process's
    /// re-import traffic is not attributed to any window) and, in
    /// logical-tick mode, ticks it at `state.pairs_done` immediately
    /// after every successful checkpoint write — so a sample exists iff
    /// its window is durable, which is what makes the `OBS` export
    /// byte-identical across thread counts and kill-halfway resumes.
    pub sampler: Option<Arc<Sampler>>,
    /// Optional SLO/anomaly watchdog. Mirrors the sampler's lifecycle —
    /// rebased to the recovered cursor (after importing the
    /// `watch-state` checkpoint section persisted by the previous
    /// incarnation) and advanced only at durable checkpoint cuts, via a
    /// two-phase protocol: the driver *stages* the window before each
    /// save (the watch state blob rides inside the checkpoint), then
    /// *commits* on a durable write or *aborts* on a skipped one. An
    /// alert event therefore exists iff the window it describes is
    /// durable, which is what makes the `ALERTS` export byte-identical
    /// across thread counts and kill-halfway resumes.
    pub watch: Option<Arc<Watch>>,
    /// Self-healing policy for storage faults: retry budget, backoff
    /// caps, cadence widening, recovery attempts (see
    /// [`Supervisor`]).
    pub supervisor: SupervisorPolicy,
}

impl Default for DurableOpts {
    /// Sequential, default config, checkpoint every 25 pairs, no crash.
    fn default() -> DurableOpts {
        DurableOpts {
            threads: 1,
            config: CampaignConfig::default(),
            checkpoint_every: 25,
            crash: CrashPlan::none(),
            sampler: None,
            watch: None,
            supervisor: SupervisorPolicy::default(),
        }
    }
}

/// How a durable run ended. Never "wedged": a campaign always reaches
/// one of these three verdicts, whatever the disk does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DurableOutcome {
    /// Every pair was processed and the final checkpoint is on disk.
    Complete,
    /// Every pair was processed, but storage faults forced the
    /// supervisor down its degradation ladder — the campaign *state* is
    /// still byte-identical to a healthy run, but durability guarantees
    /// were shed along the way (see the report's ladder level).
    Degraded(HealthReport),
    /// The configured [`CrashPlan`] fired: the simulated process died.
    Crashed {
        /// The crashpoint that fired (its `Display` form).
        crashpoint: String,
        /// `pairs_done` of the last checkpoint known durable on disk —
        /// everything after it dies with the process and is re-crawled
        /// on resume.
        durable_pairs: u64,
    },
}

impl DurableOutcome {
    /// True when every pair was processed (`Complete` or `Degraded`).
    pub fn finished(&self) -> bool {
        !matches!(self, DurableOutcome::Crashed { .. })
    }
}

/// The result of one [`run_durable_campaign`] invocation.
#[derive(Debug)]
pub struct DurableRun {
    /// Cumulative state at exit (on a crash, the in-memory state the
    /// dead process would have lost back to `durable_pairs`).
    pub state: CampaignState,
    /// Captures processed by this invocation only.
    pub result: CampaignResult,
    /// Whether the run completed, degraded, or a crashpoint fired.
    pub outcome: DurableOutcome,
    /// Everything recovery found and did when opening the store.
    pub salvage: SalvageReport,
    /// The supervisor's full ledger for this run — populated even for
    /// `Complete` outcomes (a healed transient fault leaves traces
    /// here without degrading the run).
    pub health: HealthReport,
}

/// Build the five checkpoint sections for a state + trace snapshot.
/// The concatenation of the first four bodies is exactly
/// [`CampaignState::export`], so reassembly re-uses the importer.
pub fn state_sections(state: &CampaignState, trace_jsonl: &str) -> Vec<Section> {
    vec![
        Section::new(
            SECTION_META,
            format!("{STATE_HEADER}\npairs_done={}\n", state.pairs_done),
        ),
        Section::new(SECTION_DB, export_db(&state.db)),
        Section::new(SECTION_DEAD_LETTERS, state.dead_letters.export()),
        Section::new(SECTION_PROVENANCE, state.provenance.export()),
        Section::new(SECTION_TRACE, trace_jsonl),
    ]
}

/// Reassemble a state from checkpoint section bodies.
fn state_from_parts(
    meta: &str,
    db: &str,
    dead_letters: &str,
    provenance: &str,
) -> Result<CampaignState, String> {
    let text = format!("{meta}{db}{dead_letters}{provenance}");
    CampaignState::import(&text).map_err(|e| format!("line {}: {}", e.line, e.message))
}

/// A `meta` section reconstructed from an intact capture-db section —
/// the cursor always equals the number of stored captures.
fn rebuilt_meta(db_text: &str) -> Option<String> {
    let db = import_db(db_text).ok()?;
    Some(format!("{STATE_HEADER}\npairs_done={}\n", db.len()))
}

/// Try to salvage a state (and its trace + watch-state snapshots) from
/// the individually intact sections of one quarantined generation. The
/// `watch-state` section is optional — losing it only resets detector
/// windows, never measurement state.
fn salvage_from(
    q: &consent_checkpoint::QuarantinedGeneration,
) -> Option<(CampaignState, String, String, String)> {
    let sec = |name: &str| q.salvaged.iter().find(|s| s.name == name);
    let db = sec(SECTION_DB)?;
    let dl = sec(SECTION_DEAD_LETTERS)?;
    let prov = sec(SECTION_PROVENANCE)?;
    let trace = sec(SECTION_TRACE)?;
    let watch = sec(WATCH_STATE_SECTION)
        .map(|s| s.body.clone())
        .unwrap_or_default();
    let (meta, how) = match sec(SECTION_META) {
        Some(m) => (m.body.clone(), "meta intact"),
        None => (rebuilt_meta(&db.body)?, "meta rebuilt from capture count"),
    };
    let state = state_from_parts(&meta, &db.body, &dl.body, &prov.body).ok()?;
    Some((state, trace.body.clone(), watch, how.to_string()))
}

/// Open the newest usable state in `store` per the salvage rules in the
/// [module docs](self). Returns the state, the persisted trace-JSONL
/// snapshot that accompanies it, and the full salvage report. A clean
/// empty store yields a fresh state and a clean report.
pub fn recover_state(
    store: &CheckpointStore,
) -> io::Result<(CampaignState, String, SalvageReport)> {
    let (state, trace, _watch, report) = recover_sections(store)?;
    Ok((state, trace, report))
}

/// [`recover_state`] plus the persisted `watch-state` section body
/// (empty when the generation predates the watchdog or lost it to
/// corruption).
fn recover_sections(
    store: &CheckpointStore,
) -> io::Result<(CampaignState, String, String, SalvageReport)> {
    let mut report = SalvageReport::default();
    loop {
        let (ckpt, found) = store.open_latest()?;
        report.absorb(found);
        // A quarantined-but-partially-intact newer generation beats the
        // older fully intact one: fewer pairs to re-crawl.
        for q in report.quarantined.clone() {
            if let Some((state, trace, watch, how)) = salvage_from(&q) {
                report.used_generation = None;
                report.note(format!(
                    "salvaged state ({} pairs) from quarantined generation {} ({how})",
                    state.pairs_done, q.generation
                ));
                return Ok((state, trace, watch, report));
            }
        }
        let Some(ckpt) = ckpt else {
            if !report.is_clean() {
                report.note("no generation usable: restarting campaign from scratch".to_string());
            }
            return Ok((CampaignState::new(), String::new(), String::new(), report));
        };
        let get = |name: &str| ckpt.section(name).map(|s| s.body.as_str()).unwrap_or("");
        match state_from_parts(
            get(SECTION_META),
            get(SECTION_DB),
            get(SECTION_DEAD_LETTERS),
            get(SECTION_PROVENANCE),
        ) {
            Ok(state) => {
                return Ok((
                    state,
                    get(SECTION_TRACE).to_string(),
                    get(WATCH_STATE_SECTION).to_string(),
                    report,
                ))
            }
            Err(e) => {
                // CRC-intact but semantically unimportable (e.g. a
                // hand-edited file): quarantine and fall back like any
                // other corruption.
                let g = ckpt.generation;
                let qpath = store.quarantine(g)?;
                report.used_generation = None;
                report.note(format!(
                    "quarantined generation {g} ({}): sections intact but state import failed: {e}",
                    qpath.display()
                ));
            }
        }
    }
}

/// Open a [`CheckpointStore`] honoring the `CONSENT_IO_CHAOS`
/// environment variable: with a plan set, the store's filesystem seam
/// is wrapped in a [`FaultyVfs`] injecting the scheduled storage
/// faults; without one, this is exactly [`CheckpointStore::open`].
pub fn open_chaos_store(dir: impl AsRef<Path>) -> io::Result<CheckpointStore> {
    let plan = IoFaultPlan::from_env();
    if plan.is_none() {
        CheckpointStore::open(dir)
    } else {
        CheckpointStore::with_vfs(dir, DEFAULT_KEEP, Arc::new(FaultyVfs::new(plan)))
    }
}

/// Run (or resume) a campaign with durable checkpoints.
///
/// Recovers the newest usable state from `store` (salvaging or
/// quarantining corrupt generations as needed), restores the persisted
/// trace events into the global trace log (only when the log is empty —
/// a freshly restarted process — and tracing is enabled), then processes
/// the remaining pairs in chunks of `opts.checkpoint_every`, writing a
/// checkpoint generation after each chunk.
///
/// Determinism: chunking, thread count, crashes, and salvage never
/// change the bytes — a resumed run's final `state.export()` and trace
/// export equal an uninterrupted run's, because pair processing is a
/// pure function of the pair identity and application order is always
/// the deterministic pair order.
pub fn run_durable_campaign(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    store: &CheckpointStore,
    opts: &DurableOpts,
) -> io::Result<DurableRun> {
    let mut sup = Supervisor::new(opts.supervisor);
    let (mut state, trace_jsonl, watch_jsonl, salvage) =
        match sup.recover_with(|| recover_sections(store)) {
            Ok(v) => v,
            Err(err) => {
                // The on-disk history is unreadable even after retries.
                // Restart from scratch rather than wedge: pair processing
                // is deterministic, so a full re-crawl reproduces the same
                // final state the history would have yielded.
                let mut report = SalvageReport::default();
                report.note(format!(
                    "storage recovery abandoned ({err}): restarting campaign from scratch"
                ));
                (CampaignState::new(), String::new(), String::new(), report)
            }
        };
    let mut durable_pairs = state.pairs_done;
    if consent_trace::enabled() && !trace_jsonl.is_empty() && consent_trace::global().is_empty() {
        consent_trace::global()
            .import_jsonl(&trace_jsonl)
            .map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("recovered checkpoint has unimportable trace section: {e}"),
                )
            })?;
    }

    // Rebase the flight recorder only after recovery and trace import:
    // both re-count work this process never performed (checkpoint
    // import inserts into the CaptureDb, the store counts
    // `checkpoint.opens`), and that traffic must not be attributed to
    // any sample window.
    if let Some(sampler) = &opts.sampler {
        sampler.rebase(state.pairs_done);
    }
    // Same discipline for the watchdog: restore the detector state the
    // previous incarnation persisted (only into a fresh watch — a
    // rejected blob, e.g. after a rule-config change, just restarts the
    // detectors), then swallow the recovery traffic with a rebase.
    if let Some(watch) = &opts.watch {
        if !watch_jsonl.is_empty() && watch.is_fresh() && watch.import_state(&watch_jsonl).is_err()
        {
            consent_telemetry::count("watch.state.rejected", 1);
        }
        watch.rebase(state.pairs_done);
    }

    let mut every = opts.checkpoint_every.max(1);
    let mut cadence_widened = false;
    let mut applied_this_run = 0u64;
    let mut writes_this_run = 0u64;
    let mut result: Option<CampaignResult> = None;
    // The health report carries the watchdog's fired alerts on every
    // exit path — a crashed run's report still names what was firing.
    let health_of = |sup: &Supervisor| {
        let mut health = sup.report();
        if let Some(watch) = &opts.watch {
            health.alerts = watch.fired_summaries();
        }
        health
    };
    let crashed =
        |state: CampaignState, result: Option<CampaignResult>, durable_pairs| DurableRun {
            state,
            result: result.unwrap_or_default(),
            outcome: DurableOutcome::Crashed {
                crashpoint: opts.crash.describe(),
                durable_pairs,
            },
            salvage: SalvageReport::default(),
            health: HealthReport::default(),
        };
    loop {
        let mut chunk = every;
        if let Some(n) = opts.crash.apply_point() {
            let remaining = n.saturating_sub(applied_this_run);
            if remaining == 0 {
                // Died immediately after the Nth applied pair — before
                // any checkpoint covering it could be written.
                let mut run = crashed(state, result, durable_pairs);
                run.salvage = salvage;
                run.health = health_of(&sup);
                return Ok(run);
            }
            chunk = chunk.min(remaining);
        }
        let popts = ParallelOpts {
            threads: opts.threads,
            config: opts.config,
            max_pairs: Some(chunk),
        };
        let before = state.pairs_done;
        let run = resume_campaign_parallel(world, domains, day, vantages, seed, &popts, state);
        state = run.state;
        let did = state.pairs_done - before;
        // Heartbeat: cumulative pairs applied, advanced once per chunk.
        // Executor-agnostic (counted here, not in the workers), so its
        // per-window delta is deterministic at any thread count.
        consent_telemetry::count("campaign.progress", did);
        applied_this_run += did;
        result = Some(match result {
            Some(acc) => acc.merge(run.result),
            None => run.result,
        });
        if opts
            .crash
            .apply_point()
            .is_some_and(|n| applied_this_run >= n)
        {
            let mut out = crashed(state, result, durable_pairs);
            out.salvage = salvage;
            out.health = health_of(&sup);
            return Ok(out);
        }
        if did > 0 || durable_pairs != state.pairs_done {
            writes_this_run += 1;
            // Checkpoint cadence: pairs of work covered by this write
            // (write size/latency are recorded by the store itself).
            consent_telemetry::observe("campaign.checkpoint.cadence_pairs", did);
            let trace_snapshot = consent_trace::global().export_jsonl();
            // Stage the watch window covering this cut *before* the
            // write: the post-window detector state rides inside the
            // checkpoint, and the window only becomes observable
            // (commit) once that checkpoint is durable.
            let watch_blob = opts.watch.as_ref().and_then(|w| w.stage(state.pairs_done));
            let with_watch = |mut sections: Vec<Section>| {
                if let Some(blob) = &watch_blob {
                    sections.push(Section::new(WATCH_STATE_SECTION, blob.clone()));
                }
                sections
            };
            if let Some(keep_bytes) = opts.crash.write_truncation(writes_this_run) {
                let sections = with_watch(state_sections(&state, &trace_snapshot));
                if store.save_torn(&sections, keep_bytes).is_err() {
                    // The dying process's torn write failed outright
                    // (e.g. injected storage chaos): even fewer bytes
                    // reached the disk, which changes nothing about the
                    // crash semantics — nothing durable was added.
                    consent_telemetry::count("checkpoint.io_fault", 1);
                }
                // The torn generation is not durable; the previous cut
                // is — and the staged watch window dies with the
                // process, exactly like the sampler's unticked window.
                if let Some(watch) = &opts.watch {
                    watch.abort();
                }
                let mut out = crashed(state, result, durable_pairs);
                out.salvage = salvage;
                out.health = health_of(&sup);
                return Ok(out);
            }
            // Supervised write: retries, backoff, and ladder descent
            // all happen inside. The attempt closure rebuilds sections
            // at the supervisor's current level so a mid-save descent
            // to shed-trace takes effect on the very next attempt.
            let verdict = sup.save_with(state.pairs_done, |level| {
                let trace = if level >= DegradeLevel::ShedTrace {
                    ""
                } else {
                    trace_snapshot.as_str()
                };
                store.save(&with_watch(state_sections(&state, trace)))
            });
            if matches!(verdict, SaveVerdict::Saved(_)) {
                durable_pairs = state.pairs_done;
                // Sample only once the covering checkpoint is durable:
                // a window that could still be lost to a crash must
                // never appear in the OBS export, or a resumed run
                // would re-emit (and double) it.
                if let Some(sampler) = &opts.sampler {
                    sampler.tick_at(state.pairs_done);
                }
                // Same rule for the watchdog, via its staged window.
                if let Some(watch) = &opts.watch {
                    watch.commit();
                }
            } else if let Some(watch) = &opts.watch {
                // Skipped write (memory-only): the window stays open and
                // the next durable cut will cover it too.
                watch.abort();
            }
            // Entering wide-cadence widens the interval once, for the
            // rest of the run (memory-only keeps the widened value;
            // the chunk size also paces crashpoint checks).
            if !cadence_widened && sup.level() >= DegradeLevel::WideCadence {
                cadence_widened = true;
                every = every.saturating_mul(opts.supervisor.cadence_factor.max(1));
            }
        }
        if run.complete {
            let health = health_of(&sup);
            let outcome = if sup.degraded() {
                DurableOutcome::Degraded(health.clone())
            } else {
                DurableOutcome::Complete
            };
            return Ok(DurableRun {
                state,
                result: result.unwrap_or_default(),
                outcome,
                salvage,
                health,
            });
        }
        debug_assert!(did > 0, "incomplete campaign made no progress");
        if did == 0 {
            return Err(io::Error::other(
                "durable campaign made no progress on an incomplete state",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{build_toplist, run_campaign_with};
    use crate::resilience::{BreakerConfig, RetryPolicy};
    use consent_faultsim::FaultProfile;
    use consent_webgraph::{AdoptionConfig, WorldConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "consent-durable-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn quiet() -> CampaignConfig {
        CampaignConfig {
            fault_profile: FaultProfile::none(),
            retry: RetryPolicy::paper(),
            breaker: BreakerConfig::default(),
        }
    }

    fn small_state() -> CampaignState {
        let world = World::new(WorldConfig {
            n_sites: 400,
            seed: 42,
            adoption: AdoptionConfig::default(),
        });
        let list = build_toplist(&world, 6, SeedTree::new(7));
        run_campaign_with(
            &world,
            &list,
            consent_util::Day::from_ymd(2020, 5, 15),
            &[Vantage::eu_cloud()],
            SeedTree::new(9),
            &quiet(),
        )
        .state
    }

    #[test]
    fn sections_concatenate_to_the_state_export() {
        let state = small_state();
        let sections = state_sections(&state, "{\"kind\":\"trace_event\"}\n");
        assert_eq!(
            sections.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec![
                SECTION_META,
                SECTION_DB,
                SECTION_DEAD_LETTERS,
                SECTION_PROVENANCE,
                SECTION_TRACE
            ],
        );
        let concat: String = sections[..4].iter().map(|s| s.body.as_str()).collect();
        assert_eq!(concat, state.export());
    }

    #[test]
    fn save_then_recover_round_trips() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        store.save(&state_sections(&state, "trace\n")).unwrap();
        // "trace\n" is not valid JSONL, but recover_state only carries
        // the snapshot; importing it is the driver's job.
        let (back, trace, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export());
        assert_eq!(trace, "trace\n");
        assert!(report.is_clean());
        assert_eq!(report.used_generation, Some(1));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_recovers_fresh() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let (state, trace, report) = recover_state(&store).unwrap();
        assert_eq!(state.pairs_done, 0);
        assert!(trace.is_empty());
        assert!(report.is_clean());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_meta_is_rebuilt_from_intact_sections() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        let g = store.save(&state_sections(&state, "")).unwrap();
        // Flip one byte inside the meta body: it is the first section,
        // so its bytes start right after the `#end-header` line.
        let path = store.path_for(g);
        let mut bytes = std::fs::read(&path).unwrap();
        let marker = b"#end-header\n";
        let start = bytes
            .windows(marker.len())
            .position(|w| w == marker)
            .unwrap()
            + marker.len();
        bytes[start + 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export(), "{}", report.render());
        assert_eq!(report.used_generation, None);
        assert_eq!(report.quarantined.len(), 1);
        assert!(
            report.actions.iter().any(|a| a.contains("meta rebuilt")),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn intact_but_unimportable_generation_is_quarantined() {
        let dir = tmp_dir();
        let store = CheckpointStore::open(&dir).unwrap();
        let state = small_state();
        store.save(&state_sections(&state, "")).unwrap();
        // A second generation whose sections checksum fine but whose
        // cursor lies about the stored rows.
        let mut lying = state_sections(&state, "");
        lying[0].body = format!("{STATE_HEADER}\npairs_done=999\n");
        store.save(&lying).unwrap();

        let (back, _, report) = recover_state(&store).unwrap();
        assert_eq!(back.export(), state.export());
        assert_eq!(report.used_generation, Some(1));
        assert!(
            report
                .actions
                .iter()
                .any(|a| a.contains("state import failed")),
            "{}",
            report.render()
        );
        std::fs::remove_dir_all(dir).unwrap();
    }
}
