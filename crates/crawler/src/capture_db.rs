//! The central capture database: a sharded, columnar, append-only store.
//!
//! §3.2: "All crawl data is stored in a central database, which can be
//! queried using a custom API." Like Netograph (which "does not store
//! page contents due to storage constraints") we keep a compact summary
//! per capture: the final eTLD+1, day, vantage, outcome, and the detected
//! CMPs — everything the longitudinal analyses consume.
//!
//! # Layout
//!
//! The store is organized for a million-domain longitudinal crawl where
//! the hot path is *append* (one row per processed pair) and the cold
//! path is *scan* (analyses and exports). Rows live in [`SHARD_COUNT`]
//! shards keyed by a stable FNV-1a hash of the domain, each shard a list
//! of fixed-capacity columnar segments:
//!
//! ```text
//! CaptureDb
//! ├── interner: host string ↔ u32 id (id = first-insert order)
//! ├── shard 0: [ sealed seg ][ sealed seg ][ active tail → ]
//! ├── shard 1: [ sealed seg ][ active tail → ]
//! │   ...                 each segment = SEGMENT_ROWS parallel columns:
//! └── shard 15             domain_id:u32 | day:i32 | loc:u8 | status:u8
//!                          | cmps:u8 bitmask | flags:u8 (redir, dialog)
//! ```
//!
//! A segment seals when it reaches [`SEGMENT_ROWS`] rows and a fresh
//! active tail starts; sealed segments are never mutated again. Because
//! sealing depends only on the shard's row count, the full layout is a
//! pure function of the insertion history — which is what lets the
//! columnar checkpoint export stay byte-identical across thread counts
//! and kill-halfway resumes (insertions always happen on the merge
//! thread in deterministic pair order).
//!
//! The per-shard row counts (see [`CaptureDb::marks`]) are the delta-
//! checkpoint cursor: everything past a mark is exactly the set of rows
//! appended since that mark was taken. `docs/STORAGE.md` is the
//! normative spec of the on-disk serialization of this layout.
//!
//! # Append and seal
//!
//! ```
//! use consent_crawler::{CaptureDb, CaptureSummary, CmpSet, SEGMENT_ROWS};
//! use consent_httpsim::{CaptureStatus, Location};
//! use consent_util::Day;
//!
//! let mut db = CaptureDb::new();
//! let row = |i: u32| CaptureSummary {
//!     domain: "example.com".into(),
//!     day: Day::from_ymd(2020, 1, 1) + i as i32,
//!     location: Location::EuCloud,
//!     status: CaptureStatus::Ok,
//!     cmps: CmpSet::empty(),
//!     redirected: false,
//!     dialog_visible: false,
//! };
//! // Fill one segment exactly: the tail seals and a new one opens on
//! // the next append.
//! for i in 0..SEGMENT_ROWS as u32 {
//!     db.insert(row(i));
//! }
//! assert_eq!(db.sealed_segments(), 1);
//! db.insert(row(SEGMENT_ROWS as u32));
//! assert_eq!(db.len(), SEGMENT_ROWS as u64 + 1);
//! assert_eq!(db.domain_history("example.com").len(), SEGMENT_ROWS + 1);
//! ```

use consent_httpsim::{Capture, CaptureStatus, Location};
use consent_psl::PublicSuffixList;
use consent_util::Day;
use consent_webgraph::{Cmp, ALL_CMPS};
use std::collections::{BTreeMap, HashMap};

/// Number of domain shards. Fixed by the storage format (STORAGE.md):
/// changing it changes every shard assignment and therefore the export
/// bytes.
pub const SHARD_COUNT: usize = 16;

/// Rows per segment. A segment seals exactly when it holds this many
/// rows, so segment boundaries are a pure function of insert history.
pub const SEGMENT_ROWS: usize = 256;

/// Stable shard assignment: FNV-1a over the domain bytes, mod
/// [`SHARD_COUNT`]. Part of the storage format — see STORAGE.md.
pub fn shard_of(domain: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in domain.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// Compact bitmask of detected CMPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmpSet(u8);

impl CmpSet {
    /// Empty set.
    pub fn empty() -> CmpSet {
        CmpSet(0)
    }

    /// Add a CMP.
    pub fn insert(&mut self, cmp: Cmp) {
        self.0 |= 1 << cmp_index(cmp);
    }

    /// Membership test.
    pub fn contains(&self, cmp: Cmp) -> bool {
        self.0 & (1 << cmp_index(cmp)) != 0
    }

    /// Number of CMPs in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate members in [`ALL_CMPS`] order.
    pub fn iter(&self) -> CmpSetIter {
        CmpSetIter { set: *self, pos: 0 }
    }

    /// The raw bitmask, bit i = `ALL_CMPS[i]` (the storage column value).
    pub(crate) fn bits(self) -> u8 {
        self.0
    }

    /// Rebuild from a raw bitmask (inverse of [`bits`](Self::bits)).
    pub(crate) fn from_bits(bits: u8) -> CmpSet {
        CmpSet(bits)
    }
}

/// Iterator over a [`CmpSet`]'s members, in [`ALL_CMPS`] order.
#[derive(Clone, Debug)]
pub struct CmpSetIter {
    set: CmpSet,
    pos: usize,
}

impl Iterator for CmpSetIter {
    type Item = Cmp;

    fn next(&mut self) -> Option<Cmp> {
        while self.pos < ALL_CMPS.len() {
            let cmp = ALL_CMPS[self.pos];
            self.pos += 1;
            if self.set.contains(cmp) {
                return Some(cmp);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining members are exactly the set bits not yet visited.
        let remaining = ALL_CMPS[self.pos..]
            .iter()
            .filter(|&&c| self.set.contains(c))
            .count();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for CmpSetIter {}

impl IntoIterator for CmpSet {
    type Item = Cmp;
    type IntoIter = CmpSetIter;

    fn into_iter(self) -> CmpSetIter {
        self.iter()
    }
}

impl IntoIterator for &CmpSet {
    type Item = Cmp;
    type IntoIter = CmpSetIter;

    fn into_iter(self) -> CmpSetIter {
        self.iter()
    }
}

impl FromIterator<Cmp> for CmpSet {
    fn from_iter<I: IntoIterator<Item = Cmp>>(cmps: I) -> CmpSet {
        let mut s = CmpSet(0);
        for c in cmps {
            s.insert(c);
        }
        s
    }
}

fn cmp_index(cmp: Cmp) -> u8 {
    ALL_CMPS
        .iter()
        .position(|&c| c == cmp)
        .expect("cmp in registry") as u8
}

/// One stored capture summary (the materialized row view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Final registrable domain (eTLD+1) after redirects.
    pub domain: String,
    /// Capture day.
    pub day: Day,
    /// Crawl location.
    pub location: Location,
    /// Outcome.
    pub status: CaptureStatus,
    /// Detected CMPs (usually 0 or 1).
    pub cmps: CmpSet,
    /// True if the seed URL's eTLD+1 differs from the final one
    /// (top-level redirect, §3.2: ~11 % of crawls).
    pub redirected: bool,
    /// A consent dialog was visible.
    pub dialog_visible: bool,
}

/// Row flag bits (the `flags` column).
pub(crate) const FLAG_REDIRECTED: u8 = 1;
pub(crate) const FLAG_DIALOG: u8 = 2;

/// One fixed-capacity columnar segment: six parallel columns of at most
/// [`SEGMENT_ROWS`] values each. Sealed segments are immutable.
#[derive(Debug, Default, Clone)]
pub(crate) struct Segment {
    pub(crate) domain_ids: Vec<u32>,
    pub(crate) days: Vec<i32>,
    pub(crate) locations: Vec<u8>,
    pub(crate) statuses: Vec<u8>,
    pub(crate) cmps: Vec<u8>,
    pub(crate) flags: Vec<u8>,
}

impl Segment {
    fn with_capacity() -> Segment {
        Segment {
            domain_ids: Vec::with_capacity(SEGMENT_ROWS),
            days: Vec::with_capacity(SEGMENT_ROWS),
            locations: Vec::with_capacity(SEGMENT_ROWS),
            statuses: Vec::with_capacity(SEGMENT_ROWS),
            cmps: Vec::with_capacity(SEGMENT_ROWS),
            flags: Vec::with_capacity(SEGMENT_ROWS),
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.domain_ids.len()
    }

    fn is_full(&self) -> bool {
        self.rows() == SEGMENT_ROWS
    }
}

/// One domain shard: zero or more sealed segments plus the active tail.
#[derive(Debug, Default)]
struct Shard {
    /// All segments; every segment but the last is sealed (full).
    segments: Vec<Segment>,
}

impl Shard {
    fn rows(&self) -> u32 {
        self.segments.iter().map(|s| s.rows() as u32).sum()
    }

    /// Append one row, sealing the tail when it fills. Returns true if
    /// a segment sealed on this append.
    fn append(
        &mut self,
        domain_id: u32,
        day: i32,
        loc: u8,
        status: u8,
        cmps: u8,
        flags: u8,
    ) -> bool {
        if self.segments.last().is_none_or(Segment::is_full) {
            self.segments.push(Segment::with_capacity());
        }
        let tail = self.segments.last_mut().expect("tail segment");
        tail.domain_ids.push(domain_id);
        tail.days.push(day);
        tail.locations.push(loc);
        tail.statuses.push(status);
        tail.cmps.push(cmps);
        tail.flags.push(flags);
        tail.is_full()
    }
}

/// Per-shard row counts at one instant: the delta-checkpoint cursor.
///
/// Taken with [`CaptureDb::marks`] at a durable checkpoint cut;
/// everything appended past the marks is exactly the set of rows the
/// next delta section must carry (see `docs/STORAGE.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbMarks {
    /// Interned host count at the mark.
    pub hosts: u32,
    /// Row count per shard at the mark, indexed by shard.
    pub shard_rows: Vec<u32>,
}

/// The capture store: interned hosts plus [`SHARD_COUNT`] columnar
/// shards (see the [module docs](self) for the layout).
#[derive(Debug)]
pub struct CaptureDb {
    /// Host names in id order; `hosts[id]` is the interned string.
    hosts: Vec<String>,
    /// Host name → id (inverse of `hosts`).
    host_ids: HashMap<String, u32>,
    /// The columnar shards.
    shards: Vec<Shard>,
    /// Per-domain row index: domain id → row indexes within the
    /// domain's shard, in insertion order. BTree keyed by name so
    /// domain iteration is sorted without materializing.
    by_domain: BTreeMap<String, Vec<u32>>,
    total: u64,
    redirected: u64,
    multi_cmp: u64,
    sealed: u64,
}

impl Default for CaptureDb {
    fn default() -> CaptureDb {
        CaptureDb {
            hosts: Vec::new(),
            host_ids: HashMap::new(),
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            by_domain: BTreeMap::new(),
            total: 0,
            redirected: 0,
            multi_cmp: 0,
            sealed: 0,
        }
    }
}

pub(crate) fn location_bits(l: Location) -> u8 {
    match l {
        Location::UsCloud => 0,
        Location::EuCloud => 1,
        Location::EuUniversity => 2,
    }
}

pub(crate) fn location_from_bits(b: u8) -> Option<Location> {
    Some(match b {
        0 => Location::UsCloud,
        1 => Location::EuCloud,
        2 => Location::EuUniversity,
        _ => return None,
    })
}

pub(crate) fn status_bits(s: CaptureStatus) -> u8 {
    match s {
        CaptureStatus::Ok => 0,
        CaptureStatus::Timeout => 1,
        CaptureStatus::AntiBotInterstitial => 2,
        CaptureStatus::LegallyBlocked => 3,
        CaptureStatus::HttpError => 4,
        CaptureStatus::ConnectionFailed => 5,
        CaptureStatus::ConnectionReset => 6,
        CaptureStatus::Truncated => 7,
    }
}

pub(crate) fn status_from_bits(b: u8) -> Option<CaptureStatus> {
    Some(match b {
        0 => CaptureStatus::Ok,
        1 => CaptureStatus::Timeout,
        2 => CaptureStatus::AntiBotInterstitial,
        3 => CaptureStatus::LegallyBlocked,
        4 => CaptureStatus::HttpError,
        5 => CaptureStatus::ConnectionFailed,
        6 => CaptureStatus::ConnectionReset,
        7 => CaptureStatus::Truncated,
        _ => return None,
    })
}

impl CaptureDb {
    /// Empty database.
    pub fn new() -> CaptureDb {
        CaptureDb::default()
    }

    /// Summarize a full capture and insert it.
    pub fn ingest(&mut self, capture: &Capture, cmps: CmpSet, psl: &PublicSuffixList) {
        let final_domain = psl
            .registrable_domain(&capture.final_host)
            .unwrap_or_else(|| capture.final_host.clone());
        let (seed_host, _) = consent_httpsim::split_url(&capture.seed_url);
        let seed_domain = psl
            .registrable_domain(&seed_host)
            .unwrap_or_else(|| seed_host.clone());
        let summary = CaptureSummary {
            domain: final_domain.clone(),
            day: capture.day,
            location: capture.vantage.location,
            status: capture.status,
            cmps,
            redirected: seed_domain != final_domain,
            dialog_visible: capture.dialog_visible,
        };
        self.insert(summary);
    }

    /// Insert a pre-built summary, appending one row to the domain's
    /// shard (sealing the tail segment when it fills).
    ///
    /// This is the telemetry reconciliation anchor: the
    /// `capture_db.insert{location,status}` counter family increments
    /// here and nowhere else, so its sum always equals [`len`](Self::len)
    /// across all databases touched while recording was on. Segment
    /// seals are counted as `capture_db.segment.sealed`.
    pub fn insert(&mut self, summary: CaptureSummary) {
        if consent_telemetry::enabled() {
            consent_telemetry::count_labeled(
                consent_telemetry::CAPTURE_FAMILY,
                &[
                    ("location", &summary.location.to_string()),
                    ("status", summary.status.name()),
                ],
                1,
            );
        }
        self.total += 1;
        if summary.redirected {
            self.redirected += 1;
        }
        if summary.cmps.len() > 1 {
            self.multi_cmp += 1;
        }
        let id = self.intern(&summary.domain);
        let shard = shard_of(&summary.domain);
        let mut flags = 0u8;
        if summary.redirected {
            flags |= FLAG_REDIRECTED;
        }
        if summary.dialog_visible {
            flags |= FLAG_DIALOG;
        }
        let row = self.shards[shard].rows();
        let sealed = self.shards[shard].append(
            id,
            summary.day.0,
            location_bits(summary.location),
            status_bits(summary.status),
            summary.cmps.bits(),
            flags,
        );
        if sealed {
            self.sealed += 1;
            consent_telemetry::count("capture_db.segment.sealed", 1);
        }
        self.by_domain.entry(summary.domain).or_default().push(row);
    }

    /// Intern a host, assigning the next id on first sight.
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.host_ids.get(name) {
            return id;
        }
        let id = self.hosts.len() as u32;
        self.hosts.push(name.to_owned());
        self.host_ids.insert(name.to_owned(), id);
        id
    }

    /// Pre-populate the interning table in id order (checkpoint import
    /// path). The caller must feed hosts in exactly their original
    /// first-insert order or later appends would diverge.
    pub(crate) fn preintern(&mut self, name: &str) {
        self.intern(name);
    }

    /// Interned host names, in id order.
    pub(crate) fn host_table(&self) -> &[String] {
        &self.hosts
    }

    /// The segments of one shard, sealed-first with the active tail last.
    pub(crate) fn shard_segments(&self, shard: usize) -> &[Segment] {
        &self.shards[shard].segments
    }

    /// Append a raw row by column values (delta-import path). Telemetry
    /// and counters go through [`insert`](Self::insert), so replays
    /// reconcile identically to original inserts.
    pub(crate) fn insert_row(
        &mut self,
        domain_id: u32,
        day: i32,
        loc: u8,
        status: u8,
        cmps: u8,
        flags: u8,
    ) -> Result<(), String> {
        let domain = self
            .hosts
            .get(domain_id as usize)
            .ok_or_else(|| format!("domain id {domain_id} out of range"))?
            .clone();
        let location = location_from_bits(loc).ok_or_else(|| format!("bad location {loc}"))?;
        let status = status_from_bits(status).ok_or_else(|| format!("bad status {status}"))?;
        if flags & !(FLAG_REDIRECTED | FLAG_DIALOG) != 0 {
            return Err(format!("bad flags {flags}"));
        }
        self.insert(CaptureSummary {
            domain,
            day: Day(day),
            location,
            status,
            cmps: CmpSet::from_bits(cmps),
            redirected: flags & FLAG_REDIRECTED != 0,
            dialog_visible: flags & FLAG_DIALOG != 0,
        });
        Ok(())
    }

    /// Materialize the row at `(shard, row)`.
    fn row(&self, shard: usize, row: u32) -> CaptureSummary {
        let seg = &self.shards[shard].segments[row as usize / SEGMENT_ROWS];
        let i = row as usize % SEGMENT_ROWS;
        CaptureSummary {
            domain: self.hosts[seg.domain_ids[i] as usize].clone(),
            day: Day(seg.days[i]),
            location: location_from_bits(seg.locations[i]).expect("stored location"),
            status: status_from_bits(seg.statuses[i]).expect("stored status"),
            cmps: CmpSet::from_bits(seg.cmps[i]),
            redirected: seg.flags[i] & FLAG_REDIRECTED != 0,
            dialog_visible: seg.flags[i] & FLAG_DIALOG != 0,
        }
    }

    /// Total stored captures.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no captures stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct domains observed.
    pub fn domain_count(&self) -> usize {
        self.by_domain.len()
    }

    /// Number of sealed (immutable, full) segments across all shards.
    pub fn sealed_segments(&self) -> u64 {
        self.sealed
    }

    /// The delta cursor: current per-shard row counts and host count.
    pub fn marks(&self) -> DbMarks {
        DbMarks {
            hosts: self.hosts.len() as u32,
            shard_rows: self.shards.iter().map(Shard::rows).collect(),
        }
    }

    /// Fraction of captures whose seed redirected across eTLD+1.
    pub fn redirect_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.redirected as f64 / self.total as f64
        }
    }

    /// Fraction of captures with more than one CMP (paper: 0.01 %).
    pub fn multi_cmp_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.multi_cmp as f64 / self.total as f64
        }
    }

    /// All captures of one domain, materialized in insertion (time)
    /// order from the domain's shard.
    pub fn domain_history(&self, domain: &str) -> Vec<CaptureSummary> {
        consent_telemetry::count("capture_db.query.domain_history", 1);
        let Some(rows) = self.by_domain.get(domain) else {
            return Vec::new();
        };
        let shard = shard_of(domain);
        rows.iter().map(|&r| self.row(shard, r)).collect()
    }

    /// Iterate all `(domain, history)` pairs in domain order, each
    /// history materialized from its shard's columns.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Vec<CaptureSummary>)> {
        consent_telemetry::count("capture_db.query.scan", 1);
        self.by_domain.iter().map(|(d, rows)| {
            let shard = shard_of(d);
            (
                d.as_str(),
                rows.iter().map(|&r| self.row(shard, r)).collect(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(domain: &str, day: Day, cmps: CmpSet, redirected: bool) -> CaptureSummary {
        CaptureSummary {
            domain: domain.into(),
            day,
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps,
            redirected,
            dialog_visible: false,
        }
    }

    #[test]
    fn cmp_set_semantics() {
        let mut s = CmpSet::empty();
        assert!(s.is_empty());
        s.insert(Cmp::Quantcast);
        s.insert(Cmp::OneTrust);
        s.insert(Cmp::Quantcast); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(Cmp::OneTrust));
        assert!(!s.contains(Cmp::TrustArc));
        let members: Vec<Cmp> = s.iter().collect();
        assert_eq!(members, [Cmp::OneTrust, Cmp::Quantcast]);
        let from = CmpSet::from_iter([Cmp::LiveRamp]);
        assert!(from.contains(Cmp::LiveRamp));
        assert_eq!(from.len(), 1);
        assert_eq!(CmpSet::from_bits(s.bits()), s);
    }

    #[test]
    fn cmp_set_into_iterator() {
        // The full set round-trips through IntoIterator in ALL_CMPS order.
        let full = CmpSet::from_iter(ALL_CMPS);
        let members: Vec<Cmp> = full.into_iter().collect();
        assert_eq!(members, ALL_CMPS);
        assert_eq!(full.iter().len(), ALL_CMPS.len());

        // Both owned and by-reference forms drive a for loop.
        let set = CmpSet::from_iter([Cmp::Cookiebot, Cmp::OneTrust]);
        let mut seen = Vec::new();
        for cmp in &set {
            seen.push(cmp);
        }
        for cmp in set {
            assert!(seen.contains(&cmp));
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(CmpSet::empty().into_iter().count(), 0);

        // size_hint stays exact midway through iteration.
        let mut it = full.iter();
        assert_eq!(it.size_hint(), (ALL_CMPS.len(), Some(ALL_CMPS.len())));
        it.next();
        assert_eq!(it.len(), ALL_CMPS.len() - 1);
    }

    #[test]
    fn db_counters() {
        let mut db = CaptureDb::new();
        assert!(db.is_empty());
        let d = Day::from_ymd(2020, 1, 1);
        db.insert(summary(
            "a.com",
            d,
            CmpSet::from_iter([Cmp::OneTrust]),
            false,
        ));
        db.insert(summary("a.com", d + 1, CmpSet::empty(), true));
        db.insert(summary(
            "b.com",
            d,
            CmpSet::from_iter([Cmp::OneTrust, Cmp::Quantcast]),
            false,
        ));
        assert_eq!(db.len(), 3);
        assert_eq!(db.domain_count(), 2);
        assert!((db.redirect_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((db.multi_cmp_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(db.domain_history("a.com").len(), 2);
        assert_eq!(db.domain_history("missing.com").len(), 0);
        assert_eq!(db.iter().count(), 2);
    }

    #[test]
    fn shard_function_is_stable() {
        // Pinned values: changing the hash or shard count is a format
        // break and must fail loudly (STORAGE.md pins these).
        assert_eq!(shard_of("example.com"), shard_of("example.com"));
        assert!(shard_of("example.com") < SHARD_COUNT);
        let spread: std::collections::HashSet<usize> = (0..200)
            .map(|i| shard_of(&format!("site-{i}.net")))
            .collect();
        assert!(spread.len() > SHARD_COUNT / 2, "degenerate shard spread");
    }

    #[test]
    fn segments_seal_at_fixed_capacity() {
        let mut db = CaptureDb::new();
        let d = Day::from_ymd(2020, 1, 1);
        // All rows of one domain land in one shard.
        for i in 0..(SEGMENT_ROWS as i32 * 2 + 10) {
            db.insert(summary("seal.me", d + i, CmpSet::empty(), false));
        }
        assert_eq!(db.sealed_segments(), 2);
        let shard = shard_of("seal.me");
        let segs = db.shard_segments(shard);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].rows(), SEGMENT_ROWS);
        assert_eq!(segs[1].rows(), SEGMENT_ROWS);
        assert_eq!(segs[2].rows(), 10);
        // History is materialized back in insertion order.
        let hist = db.domain_history("seal.me");
        assert_eq!(hist.len(), SEGMENT_ROWS * 2 + 10);
        assert_eq!(hist[0].day, d);
        assert_eq!(hist.last().unwrap().day, d + (SEGMENT_ROWS as i32 * 2 + 9));
    }

    #[test]
    fn marks_track_per_shard_growth() {
        let mut db = CaptureDb::new();
        let d = Day::from_ymd(2020, 1, 1);
        let before = db.marks();
        assert_eq!(before.hosts, 0);
        assert_eq!(before.shard_rows, vec![0; SHARD_COUNT]);
        db.insert(summary("a.com", d, CmpSet::empty(), false));
        db.insert(summary("b.com", d, CmpSet::empty(), false));
        let after = db.marks();
        assert_eq!(after.hosts, 2);
        assert_eq!(after.shard_rows.iter().sum::<u32>(), 2);
        assert!(after.shard_rows[shard_of("a.com")] >= 1);
    }

    #[test]
    fn ingest_normalizes_to_etld1() {
        use consent_httpsim::{Capture, Vantage};
        let psl = PublicSuffixList::embedded();
        let mut db = CaptureDb::new();
        let capture = Capture {
            seed_url: "https://short-alias.net/x".into(),
            final_url: "https://www.example.co.uk/".into(),
            final_host: "www.example.co.uk".into(),
            day: Day::from_ymd(2020, 5, 1),
            vantage: Vantage::eu_cloud(),
            status: CaptureStatus::Ok,
            requests: vec![],
            cookies: vec![],
            dialog_visible: true,
            dom: None,
        };
        db.ingest(&capture, CmpSet::from_iter([Cmp::Quantcast]), &psl);
        let hist = db.domain_history("example.co.uk");
        assert_eq!(hist.len(), 1);
        assert!(hist[0].redirected);
        assert!(hist[0].dialog_visible);
        assert!(hist[0].cmps.contains(Cmp::Quantcast));
    }
}
