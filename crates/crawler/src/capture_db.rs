//! The central capture database and its query API.
//!
//! §3.2: "All crawl data is stored in a central database, which can be
//! queried using a custom API." Like Netograph (which "does not store
//! page contents due to storage constraints") we keep a compact summary
//! per capture: the final eTLD+1, day, vantage, outcome, and the detected
//! CMPs — everything the longitudinal analyses consume.

use consent_httpsim::{Capture, CaptureStatus, Location};
use consent_psl::PublicSuffixList;
use consent_util::Day;
use consent_webgraph::{Cmp, ALL_CMPS};
use std::collections::BTreeMap;

/// Compact bitmask of detected CMPs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CmpSet(u8);

impl CmpSet {
    /// Empty set.
    pub fn empty() -> CmpSet {
        CmpSet(0)
    }

    /// Add a CMP.
    pub fn insert(&mut self, cmp: Cmp) {
        self.0 |= 1 << cmp_index(cmp);
    }

    /// Membership test.
    pub fn contains(&self, cmp: Cmp) -> bool {
        self.0 & (1 << cmp_index(cmp)) != 0
    }

    /// Number of CMPs in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate members in [`ALL_CMPS`] order.
    pub fn iter(&self) -> CmpSetIter {
        CmpSetIter { set: *self, pos: 0 }
    }
}

/// Iterator over a [`CmpSet`]'s members, in [`ALL_CMPS`] order.
#[derive(Clone, Debug)]
pub struct CmpSetIter {
    set: CmpSet,
    pos: usize,
}

impl Iterator for CmpSetIter {
    type Item = Cmp;

    fn next(&mut self) -> Option<Cmp> {
        while self.pos < ALL_CMPS.len() {
            let cmp = ALL_CMPS[self.pos];
            self.pos += 1;
            if self.set.contains(cmp) {
                return Some(cmp);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Remaining members are exactly the set bits not yet visited.
        let remaining = ALL_CMPS[self.pos..]
            .iter()
            .filter(|&&c| self.set.contains(c))
            .count();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for CmpSetIter {}

impl IntoIterator for CmpSet {
    type Item = Cmp;
    type IntoIter = CmpSetIter;

    fn into_iter(self) -> CmpSetIter {
        self.iter()
    }
}

impl IntoIterator for &CmpSet {
    type Item = Cmp;
    type IntoIter = CmpSetIter;

    fn into_iter(self) -> CmpSetIter {
        self.iter()
    }
}

impl FromIterator<Cmp> for CmpSet {
    fn from_iter<I: IntoIterator<Item = Cmp>>(cmps: I) -> CmpSet {
        let mut s = CmpSet(0);
        for c in cmps {
            s.insert(c);
        }
        s
    }
}

fn cmp_index(cmp: Cmp) -> u8 {
    ALL_CMPS
        .iter()
        .position(|&c| c == cmp)
        .expect("cmp in registry") as u8
}

/// One stored capture summary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaptureSummary {
    /// Final registrable domain (eTLD+1) after redirects.
    pub domain: String,
    /// Capture day.
    pub day: Day,
    /// Crawl location.
    pub location: Location,
    /// Outcome.
    pub status: CaptureStatus,
    /// Detected CMPs (usually 0 or 1).
    pub cmps: CmpSet,
    /// True if the seed URL's eTLD+1 differs from the final one
    /// (top-level redirect, §3.2: ~11 % of crawls).
    pub redirected: bool,
    /// A consent dialog was visible.
    pub dialog_visible: bool,
}

/// The capture store, indexed by domain.
#[derive(Debug, Default)]
pub struct CaptureDb {
    by_domain: BTreeMap<String, Vec<CaptureSummary>>,
    total: u64,
    redirected: u64,
    multi_cmp: u64,
}

impl CaptureDb {
    /// Empty database.
    pub fn new() -> CaptureDb {
        CaptureDb::default()
    }

    /// Summarize a full capture and insert it.
    pub fn ingest(&mut self, capture: &Capture, cmps: CmpSet, psl: &PublicSuffixList) {
        let final_domain = psl
            .registrable_domain(&capture.final_host)
            .unwrap_or_else(|| capture.final_host.clone());
        let (seed_host, _) = consent_httpsim::split_url(&capture.seed_url);
        let seed_domain = psl
            .registrable_domain(&seed_host)
            .unwrap_or_else(|| seed_host.clone());
        let summary = CaptureSummary {
            domain: final_domain.clone(),
            day: capture.day,
            location: capture.vantage.location,
            status: capture.status,
            cmps,
            redirected: seed_domain != final_domain,
            dialog_visible: capture.dialog_visible,
        };
        self.insert(summary);
    }

    /// Insert a pre-built summary.
    ///
    /// This is the telemetry reconciliation anchor: the
    /// `capture_db.insert{location,status}` counter family increments
    /// here and nowhere else, so its sum always equals [`len`](Self::len)
    /// across all databases touched while recording was on.
    pub fn insert(&mut self, summary: CaptureSummary) {
        if consent_telemetry::enabled() {
            consent_telemetry::count_labeled(
                consent_telemetry::CAPTURE_FAMILY,
                &[
                    ("location", &summary.location.to_string()),
                    ("status", summary.status.name()),
                ],
                1,
            );
        }
        self.total += 1;
        if summary.redirected {
            self.redirected += 1;
        }
        if summary.cmps.len() > 1 {
            self.multi_cmp += 1;
        }
        self.by_domain
            .entry(summary.domain.clone())
            .or_default()
            .push(summary);
    }

    /// Total stored captures.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if no captures stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct domains observed.
    pub fn domain_count(&self) -> usize {
        self.by_domain.len()
    }

    /// Fraction of captures whose seed redirected across eTLD+1.
    pub fn redirect_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.redirected as f64 / self.total as f64
        }
    }

    /// Fraction of captures with more than one CMP (paper: 0.01 %).
    pub fn multi_cmp_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.multi_cmp as f64 / self.total as f64
        }
    }

    /// All captures of one domain, in insertion (time) order.
    pub fn domain_history(&self, domain: &str) -> &[CaptureSummary] {
        consent_telemetry::count("capture_db.query.domain_history", 1);
        self.by_domain.get(domain).map_or(&[], Vec::as_slice)
    }

    /// Iterate all `(domain, history)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[CaptureSummary])> {
        consent_telemetry::count("capture_db.query.scan", 1);
        self.by_domain
            .iter()
            .map(|(d, v)| (d.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(domain: &str, day: Day, cmps: CmpSet, redirected: bool) -> CaptureSummary {
        CaptureSummary {
            domain: domain.into(),
            day,
            location: Location::EuCloud,
            status: CaptureStatus::Ok,
            cmps,
            redirected,
            dialog_visible: false,
        }
    }

    #[test]
    fn cmp_set_semantics() {
        let mut s = CmpSet::empty();
        assert!(s.is_empty());
        s.insert(Cmp::Quantcast);
        s.insert(Cmp::OneTrust);
        s.insert(Cmp::Quantcast); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(Cmp::OneTrust));
        assert!(!s.contains(Cmp::TrustArc));
        let members: Vec<Cmp> = s.iter().collect();
        assert_eq!(members, [Cmp::OneTrust, Cmp::Quantcast]);
        let from = CmpSet::from_iter([Cmp::LiveRamp]);
        assert!(from.contains(Cmp::LiveRamp));
        assert_eq!(from.len(), 1);
    }

    #[test]
    fn cmp_set_into_iterator() {
        // The full set round-trips through IntoIterator in ALL_CMPS order.
        let full = CmpSet::from_iter(ALL_CMPS);
        let members: Vec<Cmp> = full.into_iter().collect();
        assert_eq!(members, ALL_CMPS);
        assert_eq!(full.iter().len(), ALL_CMPS.len());

        // Both owned and by-reference forms drive a for loop.
        let set = CmpSet::from_iter([Cmp::Cookiebot, Cmp::OneTrust]);
        let mut seen = Vec::new();
        for cmp in &set {
            seen.push(cmp);
        }
        for cmp in set {
            assert!(seen.contains(&cmp));
        }
        assert_eq!(seen.len(), 2);
        assert_eq!(CmpSet::empty().into_iter().count(), 0);

        // size_hint stays exact midway through iteration.
        let mut it = full.iter();
        assert_eq!(it.size_hint(), (ALL_CMPS.len(), Some(ALL_CMPS.len())));
        it.next();
        assert_eq!(it.len(), ALL_CMPS.len() - 1);
    }

    #[test]
    fn db_counters() {
        let mut db = CaptureDb::new();
        assert!(db.is_empty());
        let d = Day::from_ymd(2020, 1, 1);
        db.insert(summary(
            "a.com",
            d,
            CmpSet::from_iter([Cmp::OneTrust]),
            false,
        ));
        db.insert(summary("a.com", d + 1, CmpSet::empty(), true));
        db.insert(summary(
            "b.com",
            d,
            CmpSet::from_iter([Cmp::OneTrust, Cmp::Quantcast]),
            false,
        ));
        assert_eq!(db.len(), 3);
        assert_eq!(db.domain_count(), 2);
        assert!((db.redirect_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert!((db.multi_cmp_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(db.domain_history("a.com").len(), 2);
        assert_eq!(db.domain_history("missing.com").len(), 0);
        assert_eq!(db.iter().count(), 2);
    }

    #[test]
    fn ingest_normalizes_to_etld1() {
        use consent_httpsim::{Capture, Vantage};
        let psl = PublicSuffixList::embedded();
        let mut db = CaptureDb::new();
        let capture = Capture {
            seed_url: "https://short-alias.net/x".into(),
            final_url: "https://www.example.co.uk/".into(),
            final_host: "www.example.co.uk".into(),
            day: Day::from_ymd(2020, 5, 1),
            vantage: Vantage::eu_cloud(),
            status: CaptureStatus::Ok,
            requests: vec![],
            cookies: vec![],
            dialog_visible: true,
            dom: None,
        };
        db.ingest(&capture, CmpSet::from_iter([Cmp::Quantcast]), &psl);
        let hist = db.domain_history("example.co.uk");
        assert_eq!(hist.len(), 1);
        assert!(hist[0].redirected);
        assert!(hist[0].dialog_visible);
        assert!(hist[0].cmps.contains(Cmp::Quantcast));
    }
}
