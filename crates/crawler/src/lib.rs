//! # consent-crawler
//!
//! The Netograph-style measurement platform: a reshare-skewed social
//! media URL feed ([`feed`]), the 1h/48h deduplication queue ([`queue`]),
//! the end-to-end capture pipeline with 50/50 US/EU vantage assignment
//! ([`platform`]), the central capture database and query API
//! ([`capture_db`]), toplist crawl campaigns across the six Table 1
//! vantage configurations ([`campaign`]), and the robustness layer:
//! outcome classification, retry policy, and circuit breaking
//! ([`resilience`]), dead-letter records for abandoned pairs
//! ([`dead_letter`]), per-pair provenance records and causal traces
//! (`consent_trace`), and checkpoint/resume via
//! [`campaign::CampaignState`]. Campaigns scale across cores with the
//! deterministic [`parallel`] executor, whose output is byte-identical
//! to the sequential runner at any thread count, and persist across
//! process deaths with the [`durable`] driver, which checkpoints into a
//! crash-safe [`consent_checkpoint::CheckpointStore`] and salvages
//! corrupt checkpoints on recovery. When the *disk itself* fails, the
//! [`supervisor`] self-heals: transient storage faults are retried out
//! of a budget and persistent ones descend a degradation ladder
//! (shed trace → widen cadence → memory-only), so campaigns always end
//! `Complete`, `Degraded`, or `Crashed` — never wedged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod campaign;
pub mod capture_db;
pub mod dead_letter;
pub mod durable;
pub mod export;
pub mod feed;
pub mod parallel;
pub mod platform;
pub mod queue;
pub mod resilience;
pub mod supervisor;

pub use archive::{
    build_bundle_input, pack_campaign_bundle, replay_campaign_bundle, ArchiveContext,
    CampaignArtifacts, ExportFn, ReplayReport, CONFIG_HEADER,
};
pub use campaign::{
    build_toplist, resume_campaign, run_campaign, run_campaign_with, CampaignCapture,
    CampaignConfig, CampaignResult, CampaignRun, CampaignState,
};
pub use capture_db::{
    shard_of, CaptureDb, CaptureSummary, CmpSet, DbMarks, SEGMENT_ROWS, SHARD_COUNT,
};
pub use dead_letter::{vantage_code, vantage_from, AttemptRecord, DeadLetter, DeadLetterQueue};
pub use durable::{
    delta_state_sections, open_chaos_store, recover_state, run_durable_campaign, state_sections,
    BundleSpec, CheckpointMode, DeltaMarks, DurableOpts, DurableOutcome, DurableRun, SECTION_DB,
    SECTION_DB_DELTA, SECTION_DEAD_LETTERS, SECTION_DEAD_LETTERS_DELTA, SECTION_DELTA_META,
    SECTION_META, SECTION_PROVENANCE, SECTION_PROVENANCE_DELTA, SECTION_TRACE, SECTION_TRACE_DELTA,
};
pub use export::{
    apply_delta, export as export_db, export_delta, import as import_db, FORMAT_VERSION,
    LEGACY_FORMAT_VERSION,
};
pub use feed::{Feed, FeedConfig, FeedItem, FeedSource};
pub use parallel::{resume_campaign_parallel, run_campaign_parallel, ParallelOpts};
pub use platform::{Platform, RunStats};
pub use queue::{Admission, DedupQueue};
pub use resilience::{
    BreakerConfig, BreakerState, CircuitBreaker, Outcome, RetryPolicy, RetrySpacing,
};
pub use supervisor::{
    DegradeLevel, HealthEvent, HealthReport, SaveVerdict, Supervisor, SupervisorPolicy,
};
