//! # consent-crawler
//!
//! The Netograph-style measurement platform: a reshare-skewed social
//! media URL feed ([`feed`]), the 1h/48h deduplication queue ([`queue`]),
//! the end-to-end capture pipeline with 50/50 US/EU vantage assignment
//! ([`platform`]), the central capture database and query API
//! ([`capture_db`]), and toplist crawl campaigns across the six Table 1
//! vantage configurations ([`campaign`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod capture_db;
pub mod export;
pub mod feed;
pub mod platform;
pub mod queue;

pub use campaign::{build_toplist, run_campaign, CampaignCapture, CampaignResult};
pub use capture_db::{CaptureDb, CaptureSummary, CmpSet};
pub use export::{export as export_db, import as import_db};
pub use feed::{Feed, FeedConfig, FeedItem, FeedSource};
pub use platform::{Platform, RunStats};
pub use queue::{Admission, DedupQueue};
