//! The parallel campaign executor.
//!
//! The paper's scale (Tranco-10k × six vantages × a week of retries,
//! ~161 M crawls over the study) makes the sequential triple loop in
//! [`resume_campaign`] the throughput ceiling of the whole pipeline.
//! This module shards the `(domain, vantage)` pair stream across a
//! `std::thread` worker pool and merges the per-worker shards back into
//! one [`CampaignState`] whose export is **byte-identical** to the
//! sequential run at any thread count.
//!
//! # Why the merge can be deterministic
//!
//! Each pair is crawled by `process_pair_contained` (the same
//! panic-containing wrapper the sequential loop calls), whose underlying
//! `process_pair` is a pure function of
//! the pair identity: every random draw inside the engine and the fault
//! plan is keyed by `(host, day, vantage, attempt)`, trace ids come from
//! [`consent_trace::stable_id`], and the per-pair
//! [`CircuitBreaker`](crate::resilience::CircuitBreaker) lives on the
//! worker's stack. Workers therefore never race on campaign state: a
//! worker's only shared-mutable touchpoints are the commutative
//! telemetry registry and the lock-sharded trace log (whose JSONL export
//! sorts by `(trace_id, seq)`, with sequence numbers drawn from
//! per-trace counters — so the interleaving of workers is invisible in
//! the export).
//!
//! Pair *application* — [`CaptureDb`](crate::CaptureDb) ingestion,
//! provenance, dead letters, result columns — is order-sensitive, so it
//! never happens on a worker. Workers push `(pair_index, PairOutput)`
//! into private shards; after the pool joins, the shards are flattened,
//! sorted by pair index (the same vantage-major, rank-minor order the
//! sequential loop walks), and applied on the calling thread. Because
//! application is single-threaded and the capture store is append-only
//! (columnar segments that seal at fixed capacity, never at cut
//! boundaries — see `docs/STORAGE.md`), the store's physical layout is
//! a pure function of the insert history: host interning order, segment
//! boundaries, and per-shard row order are identical at any thread
//! count. A checkpoint cut anywhere — including a kill halfway through
//! a budgeted run — resumes to the same bytes because the first
//! `pairs_done` pairs of the order are exactly the ones already
//! applied, and that same property is what lets delta checkpoints
//! describe "everything since the last cut" as plain per-shard row
//! ranges ([`CaptureDb::marks`](crate::CaptureDb::marks)).

use crate::campaign::{
    apply_pair, process_pair_contained, resume_campaign, CampaignCapture, CampaignConfig,
    CampaignResult, CampaignRun, CampaignState, PairOutput,
};
use consent_faultsim::FaultyEngine;
use consent_fingerprint::Detector;
use consent_httpsim::{Vantage, WorldProber};
use consent_psl::PublicSuffixList;
use consent_toplist::resolve_all;
use consent_util::{Day, SeedTree};
use consent_webgraph::World;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

/// How a parallel campaign shards its work.
#[derive(Clone, Debug)]
pub struct ParallelOpts {
    /// Worker threads. `0` and `1` both run the sequential code path
    /// ([`resume_campaign`]) unchanged.
    pub threads: usize,
    /// Campaign behavior: chaos profile, retry schedule, breaker.
    pub config: CampaignConfig,
    /// Cap on pairs processed by this invocation (for incremental
    /// checkpointing); `None` runs to completion.
    pub max_pairs: Option<u64>,
}

impl Default for ParallelOpts {
    /// One worker per available core, default [`CampaignConfig`], no
    /// pair budget.
    fn default() -> ParallelOpts {
        ParallelOpts {
            threads: thread::available_parallelism().map_or(1, |n| n.get()),
            config: CampaignConfig::default(),
            max_pairs: None,
        }
    }
}

impl ParallelOpts {
    /// Options with an explicit worker count and defaults elsewhere.
    pub fn with_threads(threads: usize) -> ParallelOpts {
        ParallelOpts {
            threads,
            ..ParallelOpts::default()
        }
    }
}

/// Run a full campaign across a worker pool.
///
/// Semantically identical to
/// [`run_campaign_with`](crate::run_campaign_with) — same captures, same
/// checkpoint bytes, same trace export — only faster on multicore
/// hardware. `opts.threads <= 1` *is* the sequential runner.
///
/// ```
/// use consent_crawler::{build_toplist, run_campaign_parallel, run_campaign_with};
/// use consent_crawler::{CampaignConfig, ParallelOpts, RetryPolicy, BreakerConfig};
/// use consent_faultsim::FaultProfile;
/// use consent_httpsim::Vantage;
/// use consent_util::{Day, SeedTree};
/// use consent_webgraph::{AdoptionConfig, World, WorldConfig};
///
/// let world = World::new(WorldConfig {
///     n_sites: 300,
///     seed: 42,
///     adoption: AdoptionConfig::default(),
/// });
/// let list = build_toplist(&world, 8, SeedTree::new(7));
/// let day = Day::from_ymd(2020, 5, 15);
/// let config = CampaignConfig {
///     fault_profile: FaultProfile::mild(),
///     retry: RetryPolicy::paper(),
///     breaker: BreakerConfig::default(),
/// };
/// let opts = ParallelOpts { threads: 2, config, max_pairs: None };
///
/// let parallel = run_campaign_parallel(
///     &world, &list, day, &[Vantage::eu_cloud()], SeedTree::new(9), &opts,
/// );
/// let sequential = run_campaign_with(
///     &world, &list, day, &[Vantage::eu_cloud()], SeedTree::new(9), &config,
/// );
/// // Byte-identical checkpoints at any thread count.
/// assert_eq!(parallel.state.export(), sequential.state.export());
/// assert!(parallel.complete);
/// ```
pub fn run_campaign_parallel(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    opts: &ParallelOpts,
) -> CampaignRun {
    resume_campaign_parallel(
        world,
        domains,
        day,
        vantages,
        seed,
        opts,
        CampaignState::new(),
    )
}

/// Run (or continue) a campaign from a checkpoint across a worker pool.
///
/// The counterpart of [`resume_campaign`]: the first `state.pairs_done`
/// pairs of the deterministic vantage-major order are skipped without
/// re-crawling, and at most `opts.max_pairs` further pairs are processed.
/// Because application order is restored before any state is touched, a
/// parallel run interrupted anywhere — even mid-merge, where the
/// checkpoint on disk still holds the previous cut — resumes to the
/// same bytes as an uninterrupted sequential run.
pub fn resume_campaign_parallel(
    world: &World,
    domains: &[String],
    day: Day,
    vantages: &[Vantage],
    seed: SeedTree,
    opts: &ParallelOpts,
    mut state: CampaignState,
) -> CampaignRun {
    if opts.threads <= 1 {
        return resume_campaign(
            world,
            domains,
            day,
            vantages,
            seed,
            &opts.config,
            state,
            opts.max_pairs,
        );
    }
    let _span = consent_telemetry::span("campaign.run");
    let engine = FaultyEngine::from_world(world, opts.config.fault_profile, seed);
    let prober = WorldProber::new(world, seed.child("prober"));
    // Same three resolution rounds as the sequential runner (§3.2);
    // resolution is a pure function of the seed.
    let attempt_days = [day - 7, day - 4, day - 1];
    let seeds = resolve_all(domains.iter().cloned(), &prober, &attempt_days);
    let schedule = opts.config.retry.schedule(day);
    let detector = Detector::hostname_only();
    let psl = PublicSuffixList::embedded();

    let total_pairs = (vantages.len() * seeds.len()) as u64;
    let start = state.pairs_done.min(total_pairs);
    let end = start
        .saturating_add(opts.max_pairs.unwrap_or(u64::MAX))
        .min(total_pairs);
    consent_telemetry::count("campaign.pairs_skipped", start);
    consent_telemetry::gauge_set("campaign.parallel.workers", opts.threads as i64);

    // Work distribution: a shared cursor over the pair order. Claiming
    // one index per fetch keeps the pool balanced when per-pair cost
    // varies (retries, breaker opens); each pair is milliseconds of
    // work, so contention on the counter is negligible.
    let next = AtomicU64::new(start);
    let n_seeds = seeds.len() as u64;
    let shards: Vec<Vec<(u64, PairOutput)>> = thread::scope(|sc| {
        let handles: Vec<_> = (0..opts.threads)
            .map(|_| {
                sc.spawn(|| {
                    let mut shard: Vec<(u64, PairOutput)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= end {
                            break;
                        }
                        // Live-plane gauges (scraped by consent-obs):
                        // the claimed cursor position and how many pairs
                        // are being crawled right now. Both race across
                        // workers by design — they are health signals,
                        // not accounting — and the whole
                        // `campaign.parallel.*` family is denied from
                        // deterministic samples.
                        consent_telemetry::gauge_set("campaign.parallel.cursor", idx as i64);
                        consent_telemetry::gauge_add("campaign.parallel.in_flight", 1);
                        let col = (idx / n_seeds) as usize;
                        let i = (idx % n_seeds) as usize;
                        let out = process_pair_contained(
                            &engine,
                            &seeds[i],
                            i + 1,
                            col,
                            vantages[col],
                            day,
                            &schedule,
                            &opts.config,
                            &detector,
                        );
                        consent_telemetry::gauge_add("campaign.parallel.in_flight", -1);
                        shard.push((idx, out));
                    }
                    consent_telemetry::observe("campaign.parallel.shard_pairs", shard.len() as u64);
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign worker panicked"))
            .collect()
    });

    // Order-restoring merge: pair indices are unique, so the sort is
    // deterministic no matter how the pool interleaved, and applying in
    // ascending order reproduces the sequential insertion order exactly.
    let mut outputs: Vec<(u64, PairOutput)> = shards.into_iter().flatten().collect();
    outputs.sort_unstable_by_key(|&(idx, _)| idx);
    let mut columns: Vec<(Vantage, Vec<CampaignCapture>)> =
        vantages.iter().map(|&v| (v, Vec::new())).collect();
    consent_telemetry::gauge_set("campaign.parallel.merge_backlog", outputs.len() as i64);
    for (_, out) in outputs {
        apply_pair(&mut state, &mut columns, day, out, &psl);
        consent_telemetry::gauge_add("campaign.parallel.merge_backlog", -1);
    }
    let complete = state.pairs_done == total_pairs;
    CampaignRun {
        result: CampaignResult { columns, seeds },
        state,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{build_toplist, run_campaign_with};
    use crate::resilience::{BreakerConfig, RetryPolicy};
    use consent_faultsim::FaultProfile;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 2_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn opts(threads: usize, profile: FaultProfile) -> ParallelOpts {
        ParallelOpts {
            threads,
            config: CampaignConfig {
                fault_profile: profile,
                retry: RetryPolicy::paper(),
                breaker: BreakerConfig::default(),
            },
            max_pairs: None,
        }
    }

    #[test]
    fn zero_and_one_thread_take_the_sequential_path() {
        let w = world();
        let list = build_toplist(&w, 30, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let seq = run_campaign_with(
            &w,
            &list,
            day,
            &[Vantage::us_cloud()],
            SeedTree::new(9),
            &opts(1, FaultProfile::none()).config,
        );
        for threads in [0, 1] {
            let run = run_campaign_parallel(
                &w,
                &list,
                day,
                &[Vantage::us_cloud()],
                SeedTree::new(9),
                &opts(threads, FaultProfile::none()),
            );
            assert!(run.complete);
            assert_eq!(run.state.export(), seq.state.export());
        }
    }

    #[test]
    fn worker_pool_matches_sequential_bytes() {
        let w = world();
        let list = build_toplist(&w, 40, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
        let seq = run_campaign_with(
            &w,
            &list,
            day,
            &vantages,
            SeedTree::new(9),
            &opts(1, FaultProfile::mild()).config,
        );
        for threads in [2, 3, 8] {
            let par = run_campaign_parallel(
                &w,
                &list,
                day,
                &vantages,
                SeedTree::new(9),
                &opts(threads, FaultProfile::mild()),
            );
            assert!(par.complete);
            assert_eq!(
                par.state.export(),
                seq.state.export(),
                "divergence at {threads} threads"
            );
            for ((va, ca), (vb, cb)) in par.result.columns.iter().zip(seq.result.columns.iter()) {
                assert_eq!(va, vb);
                assert_eq!(ca.len(), cb.len());
                for (x, y) in ca.iter().zip(cb.iter()) {
                    assert_eq!(x.capture, y.capture);
                    assert_eq!(x.attempts, y.attempts);
                    assert_eq!(x.outcome, y.outcome);
                }
            }
        }
    }

    #[test]
    fn budgeted_parallel_run_stops_at_the_cut() {
        let w = world();
        let list = build_toplist(&w, 30, SeedTree::new(7));
        let day = Day::from_ymd(2020, 5, 15);
        let vantages = [Vantage::eu_cloud(), Vantage::us_cloud()];
        let mut o = opts(4, FaultProfile::mild());
        o.max_pairs = Some(25);
        let first = run_campaign_parallel(&w, &list, day, &vantages, SeedTree::new(9), &o);
        assert!(!first.complete);
        assert_eq!(first.state.pairs_done, 25);
        assert_eq!(first.state.db.len(), 25);
        // Resume the remainder in parallel and land on the sequential bytes.
        o.max_pairs = None;
        let second =
            resume_campaign_parallel(&w, &list, day, &vantages, SeedTree::new(9), &o, first.state);
        assert!(second.complete);
        let seq = run_campaign_with(&w, &list, day, &vantages, SeedTree::new(9), &o.config);
        assert_eq!(second.state.export(), seq.state.export());
    }
}
