//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Object Format understood by `chrome://tracing` and
//! Perfetto: a `traceEvents` array of `B`/`E`/`i` events plus
//! `thread_name` metadata, with one thread track per vantage (read from
//! the root event's `vantage` attribute) so the six Table 1 columns
//! render as six parallel swimlanes.
//!
//! Timestamps are synthetic: the simulator records no wall clock (that
//! would break byte-stable replays), so each thread track carries a
//! logical clock that advances by one per event and leaves a two-tick
//! gap between traces. The result is loadable, ordered, and
//! deterministic — durations are event counts, not seconds.

use crate::event::{Phase, TraceEvent};
use consent_util::Json;
use std::collections::BTreeMap;

/// Thread label for traces whose root has no `vantage` attribute.
const DEFAULT_TRACK: &str = "main";

/// Build the Chrome trace-event document from events sorted by
/// `(trace_id, seq)` (the order [`crate::TraceLog::snapshot`] returns).
pub fn export_chrome(events: &[TraceEvent]) -> Json {
    // Group into traces; input order keeps each trace contiguous.
    let mut traces: Vec<(u64, Vec<&TraceEvent>)> = Vec::new();
    for e in events {
        match traces.last_mut() {
            Some((id, group)) if *id == e.trace_id => group.push(e),
            _ => traces.push((e.trace_id, vec![e])),
        }
    }

    // One thread track per vantage label, tids assigned in sorted order.
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    for (_, group) in &traces {
        let label = group
            .first()
            .and_then(|e| e.attr("vantage"))
            .unwrap_or(DEFAULT_TRACK);
        tids.entry(label).or_insert(0);
    }
    for (i, tid) in tids.values_mut().enumerate() {
        *tid = i as u64 + 1;
    }

    let mut out: Vec<Json> = Vec::new();
    for (label, tid) in &tids {
        out.push(Json::object([
            ("ph".to_string(), Json::str("M")),
            ("pid".to_string(), Json::int(1)),
            ("tid".to_string(), Json::int(*tid as i64)),
            ("ts".to_string(), Json::int(0)),
            ("name".to_string(), Json::str("thread_name")),
            (
                "args".to_string(),
                Json::object([("name".to_string(), Json::str(format!("vantage {label}")))]),
            ),
        ]));
    }

    let mut clocks: BTreeMap<u64, u64> = BTreeMap::new();
    for (_, group) in &traces {
        let label = group
            .first()
            .and_then(|e| e.attr("vantage"))
            .unwrap_or(DEFAULT_TRACK);
        let tid = tids[label];
        let base = *clocks.entry(tid).or_insert(0);
        let mut max_seq = 0u64;
        for e in group {
            max_seq = max_seq.max(e.seq);
            let mut fields = vec![
                ("name".to_string(), Json::str(e.name)),
                ("ph".to_string(), Json::str(e.phase.code())),
                ("pid".to_string(), Json::int(1)),
                ("tid".to_string(), Json::int(tid as i64)),
                ("ts".to_string(), Json::int((base + e.seq) as i64)),
            ];
            if e.phase == Phase::Instant {
                // Thread-scoped instant marker.
                fields.push(("s".to_string(), Json::str("t")));
            }
            if !e.attrs.is_empty() {
                fields.push((
                    "args".to_string(),
                    Json::object(
                        e.attrs
                            .iter()
                            .map(|(k, v)| (k.to_string(), Json::str(v.clone()))),
                    ),
                ));
            }
            out.push(Json::object(fields));
        }
        clocks.insert(tid, base + max_seq + 2);
    }

    Json::object([
        ("traceEvents".to_string(), Json::array(out)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
}

/// [`export_chrome`] serialized to a compact JSON string.
pub fn export_chrome_string(events: &[TraceEvent]) -> String {
    export_chrome(events).to_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(trace_id: u64, vantage: &str) -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                trace_id,
                span_id: 1,
                parent: 0,
                seq: 0,
                phase: Phase::Begin,
                name: "pair",
                attrs: vec![("vantage", vantage.to_string())],
            },
            TraceEvent {
                trace_id,
                span_id: 2,
                parent: 1,
                seq: 1,
                phase: Phase::Instant,
                name: "detect",
                attrs: Vec::new(),
            },
            TraceEvent {
                trace_id,
                span_id: 1,
                parent: 0,
                seq: 2,
                phase: Phase::End,
                name: "pair",
                attrs: Vec::new(),
            },
        ]
    }

    #[test]
    fn one_track_per_vantage_with_required_keys() {
        let mut events = pair(3, "eu-fast-enus");
        events.extend(pair(5, "us-fast-enus"));
        events.extend(pair(8, "eu-fast-enus"));
        let text = export_chrome_string(&events);
        let doc = Json::parse(&text).unwrap();
        let list = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 2 metadata + 3 traces * 3 events.
        assert_eq!(list.len(), 2 + 9);
        let mut tracks = Vec::new();
        for e in list {
            for key in ["ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key}: {e:?}");
            }
            if e.get("ph").and_then(Json::as_str) == Some("M") {
                tracks.push(
                    e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_string(),
                );
            }
        }
        assert_eq!(tracks, vec!["vantage eu-fast-enus", "vantage us-fast-enus"]);
        // Per-track timestamps strictly increase across traces: the two
        // EU traces (ids 3 and 8) occupy non-overlapping tick ranges.
        let eu_ts: Vec<f64> = list
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Json::as_str) != Some("M")
                    && e.get("tid").and_then(Json::as_f64) == Some(1.0)
            })
            .map(|e| e.get("ts").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(eu_ts, vec![0.0, 1.0, 2.0, 4.0, 5.0, 6.0]);
        // Instant events carry the scope marker.
        assert!(list.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("i")
                && e.get("s").and_then(Json::as_str) == Some("t")
        }));
    }
}
