//! Reconstructing and pretty-printing the causal tree of one trace.

use crate::event::{Phase, TraceEvent};

/// One node of a [`TraceTree`]: a span (with its Begin event and the
/// seq of its End) or an instant event (a leaf).
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// The Begin event (for spans) or the Instant event (for leaves).
    pub begin: TraceEvent,
    /// The sequence number of the matching End event; for instants,
    /// the event's own seq.
    pub end_seq: Option<u64>,
    /// Child spans and instant events, in emission order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// The node's event name.
    pub fn name(&self) -> &'static str {
        self.begin.name
    }

    /// Attribute lookup on the node's opening event.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.begin.attr(key)
    }

    /// True for span nodes, false for instant leaves.
    pub fn is_span(&self) -> bool {
        self.begin.phase == Phase::Begin
    }

    /// Every node in this subtree (including `self`) named `name`, in
    /// depth-first emission order.
    pub fn find_all<'a>(&'a self, name: &str, out: &mut Vec<&'a TraceNode>) {
        if self.begin.name == name {
            out.push(self);
        }
        for child in &self.children {
            child.find_all(name, out);
        }
    }
}

/// The causal tree of one trace.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The root span (the `start_trace` span).
    pub root: TraceNode,
}

impl TraceTree {
    /// Rebuild the tree from one trace's events (sorted by `seq`, as
    /// returned by [`crate::TraceLog::trace`]). Returns `None` for a
    /// malformed stream: unbalanced Begin/End, an End closing the wrong
    /// span, events outside the root, or an unclosed root.
    pub fn build(events: &[TraceEvent]) -> Option<TraceTree> {
        let mut stack: Vec<TraceNode> = Vec::new();
        let mut root: Option<TraceNode> = None;
        for e in events {
            if root.is_some() {
                return None; // events after the root closed
            }
            match e.phase {
                Phase::Begin => stack.push(TraceNode {
                    begin: e.clone(),
                    end_seq: None,
                    children: Vec::new(),
                }),
                Phase::Instant => stack.last_mut()?.children.push(TraceNode {
                    begin: e.clone(),
                    end_seq: Some(e.seq),
                    children: Vec::new(),
                }),
                Phase::End => {
                    let mut node = stack.pop()?;
                    if node.begin.span_id != e.span_id {
                        return None;
                    }
                    node.end_seq = Some(e.seq);
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => root = Some(node),
                    }
                }
            }
        }
        if !stack.is_empty() {
            return None;
        }
        root.map(|root| TraceTree { root })
    }

    /// Every node named `name`, depth-first.
    pub fn find_all(&self, name: &str) -> Vec<&TraceNode> {
        let mut out = Vec::new();
        self.root.find_all(name, &mut out);
        out
    }

    /// Pretty-print the tree for single-capture debugging: one line per
    /// node, spans marked `+`, instants `-`, attributes inline.
    pub fn render(&self) -> String {
        let mut out = format!("trace {:016x}\n", self.root.begin.trace_id);
        render_node(&self.root, 0, &mut out);
        out
    }
}

fn render_node(node: &TraceNode, depth: usize, out: &mut String) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(if node.is_span() { "+ " } else { "- " });
    out.push_str(node.begin.name);
    for (k, v) in &node.begin.attrs {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('\n');
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(span_id: u64, parent: u64, seq: u64, phase: Phase, name: &'static str) -> TraceEvent {
        TraceEvent {
            trace_id: 9,
            span_id,
            parent,
            seq,
            phase,
            name,
            attrs: Vec::new(),
        }
    }

    fn sample() -> Vec<TraceEvent> {
        vec![
            e(1, 0, 0, Phase::Begin, "pair"),
            e(2, 1, 1, Phase::Begin, "attempt"),
            e(3, 2, 2, Phase::Instant, "fault.injected"),
            e(2, 1, 3, Phase::End, "attempt"),
            e(4, 1, 4, Phase::Instant, "dead_letter"),
            e(1, 0, 5, Phase::End, "pair"),
        ]
    }

    #[test]
    fn builds_and_renders_the_tree() {
        let tree = TraceTree::build(&sample()).unwrap();
        assert_eq!(tree.root.name(), "pair");
        assert_eq!(tree.root.end_seq, Some(5));
        assert_eq!(tree.root.children.len(), 2);
        let attempts = tree.find_all("attempt");
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].is_span());
        assert_eq!(attempts[0].children[0].name(), "fault.injected");
        assert!(!attempts[0].children[0].is_span());
        let text = tree.render();
        assert!(text.starts_with("trace 0000000000000009\n"));
        assert!(text.contains("+ pair"));
        assert!(text.contains("  + attempt"));
        assert!(text.contains("    - fault.injected"));
        assert!(text.contains("  - dead_letter"));
    }

    #[test]
    fn rejects_malformed_streams() {
        // Unclosed root.
        assert!(TraceTree::build(&sample()[..5]).is_none());
        // End closing the wrong span.
        let mut wrong = sample();
        wrong[3].span_id = 9;
        assert!(TraceTree::build(&wrong).is_none());
        // Events after the root closed.
        let mut tail = sample();
        tail.push(e(5, 1, 6, Phase::Instant, "late"));
        assert!(TraceTree::build(&tail).is_none());
        // Instant before any span opened.
        assert!(TraceTree::build(&[e(1, 0, 0, Phase::Instant, "x")]).is_none());
        // Empty stream.
        assert!(TraceTree::build(&[]).is_none());
    }
}
