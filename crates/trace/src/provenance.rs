//! Per-capture provenance records.
//!
//! A [`Provenance`] is the distilled acquisition record of one
//! `(domain, vantage)` campaign pair: every attempt with its day,
//! outcome status, and injected fault, plus the final classification
//! and quality flags. The campaign builds these records
//! *unconditionally* — they are state, not instrumentation, so a
//! checkpoint exported with tracing disabled is byte-identical to one
//! exported with tracing enabled — and [`Provenance::from_tree`]
//! rebuilds the same record from a captured trace, which is how the
//! trace layer is cross-checked end to end.

use crate::tree::TraceTree;
use consent_util::Json;
use std::fmt;

/// One attempt inside a pair's provenance record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttemptProvenance {
    /// The schedule day the attempt ran (rendered `YYYY-MM-DD`).
    pub day: String,
    /// Final status of the attempt, as the stable capture-db status
    /// code (`ok`, `timeout`, `antibot`, …).
    pub status: String,
    /// The fault the chaos plan decided for this attempt, if any
    /// (stable fault name: `brownout`, `reset`, …). Always `None` under
    /// `FaultProfile::none`.
    pub fault: Option<String>,
}

/// The acquisition record of one `(domain, vantage)` pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Toplist domain.
    pub domain: String,
    /// Toplist rank (1-based).
    pub rank: u64,
    /// Stable vantage code (e.g. `eu-fast-enus`).
    pub vantage: String,
    /// The campaign's nominal day (rendered `YYYY-MM-DD`).
    pub day: String,
    /// The pair's trace id (present even when tracing was disabled, so
    /// a later traced replay can be joined against this record).
    pub trace_id: u64,
    /// Every attempt, in schedule order (at least one).
    pub attempts: Vec<AttemptProvenance>,
    /// Final outcome classification (stable name: `success`, …).
    pub outcome: String,
    /// Status code of the final attempt.
    pub final_status: String,
    /// True if the anti-bot circuit breaker opened.
    pub breaker_opened: bool,
    /// True if the pair was abandoned to the dead-letter queue.
    pub dead_lettered: bool,
}

impl Provenance {
    /// True if the kept capture is usable but cut short (§3.5 counts
    /// these separately from clean captures).
    pub fn degraded(&self) -> bool {
        matches!(self.final_status.as_str(), "timeout" | "truncated")
    }

    /// The faults injected across this pair's attempts, in order.
    pub fn injected_faults(&self) -> impl Iterator<Item = &str> {
        self.attempts.iter().filter_map(|a| a.fault.as_deref())
    }

    /// One JSON object for reports and the `trace_explain` example.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("kind".to_string(), Json::str("provenance")),
            ("domain".to_string(), Json::str(self.domain.clone())),
            ("rank".to_string(), Json::int(self.rank as i64)),
            ("vantage".to_string(), Json::str(self.vantage.clone())),
            ("day".to_string(), Json::str(self.day.clone())),
            (
                "trace".to_string(),
                Json::str(format!("{:016x}", self.trace_id)),
            ),
            (
                "attempts".to_string(),
                Json::array(self.attempts.iter().map(|a| {
                    Json::object([
                        ("day".to_string(), Json::str(a.day.clone())),
                        ("status".to_string(), Json::str(a.status.clone())),
                        (
                            "fault".to_string(),
                            match &a.fault {
                                Some(f) => Json::str(f.clone()),
                                None => Json::Null,
                            },
                        ),
                    ])
                })),
            ),
            ("outcome".to_string(), Json::str(self.outcome.clone())),
            (
                "final_status".to_string(),
                Json::str(self.final_status.clone()),
            ),
            (
                "breaker_opened".to_string(),
                Json::Bool(self.breaker_opened),
            ),
            ("dead_lettered".to_string(), Json::Bool(self.dead_lettered)),
            ("degraded".to_string(), Json::Bool(self.degraded())),
        ])
    }

    /// Distill a provenance record from a captured pair trace. Returns
    /// `None` if the tree is not a well-formed `pair` trace. The result
    /// is field-identical to the record the campaign stored in its
    /// [`ProvenanceLog`] — asserted by `tests/it_trace.rs` and
    /// `examples/trace_explain.rs`.
    pub fn from_tree(tree: &TraceTree) -> Option<Provenance> {
        let root = &tree.root;
        if root.name() != "pair" {
            return None;
        }
        let domain = root.attr("domain")?.to_string();
        let rank: u64 = root.attr("rank")?.parse().ok()?;
        let vantage = root.attr("vantage")?.to_string();
        let day = root.attr("day")?.to_string();
        let mut attempts = Vec::new();
        let mut breaker_opened = false;
        let mut outcome = String::new();
        let mut final_status = String::new();
        for child in &root.children {
            if child.name() != "attempt" {
                continue;
            }
            let attempt_day = child.attr("day")?.to_string();
            let mut status = String::new();
            let mut fault = None;
            for inner in &child.children {
                match inner.name() {
                    "attempt.outcome" => {
                        status = inner.attr("status")?.to_string();
                        outcome = inner.attr("outcome")?.to_string();
                    }
                    "fault.injected" => fault = inner.attr("fault").map(str::to_string),
                    "breaker.open" => breaker_opened = true,
                    _ => {}
                }
            }
            final_status.clone_from(&status);
            attempts.push(AttemptProvenance {
                day: attempt_day,
                status,
                fault,
            });
        }
        if attempts.is_empty() {
            return None;
        }
        let dead_lettered = root.children.iter().any(|c| c.name() == "dead_letter");
        Some(Provenance {
            domain,
            rank,
            vantage,
            day,
            trace_id: root.begin.trace_id,
            attempts,
            outcome,
            final_status,
            breaker_opened,
            dead_lettered,
        })
    }
}

/// The campaign's provenance store: one record per processed pair, in
/// processing order, persisted inside `CampaignState` checkpoints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceLog {
    records: Vec<Provenance>,
}

/// Import error for the provenance line format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceImportError {
    /// 1-based line number (0 for header problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ProvenanceImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "provenance import error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ProvenanceImportError {}

const HEADER: &str = "#consent-provenance v1";

impl ProvenanceLog {
    /// Empty log.
    pub fn new() -> ProvenanceLog {
        ProvenanceLog::default()
    }

    /// Record one processed pair. Also bumps the
    /// `campaign.provenance{outcome=…}` telemetry family so run reports
    /// reconcile with the stored records.
    pub fn push(&mut self, record: Provenance) {
        consent_telemetry::count_labeled("campaign.provenance", &[("outcome", &record.outcome)], 1);
        self.records.push(record);
    }

    /// All records, in processing order.
    pub fn records(&self) -> &[Provenance] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no pair has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for one `(domain, vantage-code)` pair, if present.
    pub fn find(&self, domain: &str, vantage: &str) -> Option<&Provenance> {
        self.records
            .iter()
            .find(|p| p.domain == domain && p.vantage == vantage)
    }

    /// The record with the given trace id, if present.
    pub fn by_trace(&self, trace_id: u64) -> Option<&Provenance> {
        self.records.iter().find(|p| p.trace_id == trace_id)
    }

    /// Serialize to the line format: one record per line, tab-separated,
    /// attempts as `day:status:fault` comma lists (`-` for no fault).
    pub fn export(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&self.export_from(0));
        out
    }

    /// The record lines of entries `from..` only, without the header —
    /// the body of a provenance delta checkpoint section. Appending
    /// these lines to the base export reconstructs the full export,
    /// which is how chain recovery reassembles the log (STORAGE.md).
    /// Cost is proportional to the records past `from`. `from` past the
    /// end yields an empty string.
    pub fn export_from(&self, from: usize) -> String {
        let mut out = String::new();
        for r in self.records.iter().skip(from) {
            let attempts: Vec<String> = r
                .attempts
                .iter()
                .map(|a| {
                    format!(
                        "{}:{}:{}",
                        a.day,
                        a.status,
                        a.fault.as_deref().unwrap_or("-")
                    )
                })
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{:016x}\t{}\t{}\t{}\t{}\t{}\n",
                r.domain,
                r.rank,
                r.vantage,
                r.day,
                r.trace_id,
                r.outcome,
                r.final_status,
                u8::from(r.breaker_opened),
                u8::from(r.dead_lettered),
                attempts.join(","),
            ));
        }
        out
    }

    /// Parse the line format back. Records go straight into the store —
    /// import must not re-count telemetry the original run counted.
    pub fn import(text: &str) -> Result<ProvenanceLog, ProvenanceImportError> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or(ProvenanceImportError {
            line: 0,
            message: "empty input".into(),
        })?;
        if header != HEADER {
            return Err(ProvenanceImportError {
                line: 0,
                message: format!("unsupported header {header:?}"),
            });
        }
        let mut log = ProvenanceLog::new();
        for (i, line) in lines {
            if line.is_empty() {
                continue;
            }
            let err = |message: String| ProvenanceImportError {
                line: i + 1,
                message,
            };
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 10 {
                return Err(err(format!("expected 10 fields, got {}", fields.len())));
            }
            let rank: u64 = fields[1]
                .parse()
                .map_err(|e| err(format!("bad rank: {e}")))?;
            let trace_id = u64::from_str_radix(fields[4], 16)
                .map_err(|e| err(format!("bad trace id: {e}")))?;
            let flag = |s: &str, what: &str| match s {
                "0" => Ok(false),
                "1" => Ok(true),
                other => Err(err(format!("bad {what} flag {other:?}"))),
            };
            let breaker_opened = flag(fields[7], "breaker")?;
            let dead_lettered = flag(fields[8], "dead-letter")?;
            let mut attempts = Vec::new();
            if !fields[9].is_empty() {
                for part in fields[9].split(',') {
                    let bits: Vec<&str> = part.split(':').collect();
                    if bits.len() != 3 {
                        return Err(err(format!("bad attempt {part:?}")));
                    }
                    attempts.push(AttemptProvenance {
                        day: bits[0].to_string(),
                        status: bits[1].to_string(),
                        fault: (bits[2] != "-").then(|| bits[2].to_string()),
                    });
                }
            }
            if attempts.is_empty() {
                return Err(err("record without attempts".into()));
            }
            log.records.push(Provenance {
                domain: fields[0].to_string(),
                rank,
                vantage: fields[2].to_string(),
                day: fields[3].to_string(),
                trace_id,
                attempts,
                outcome: fields[5].to_string(),
                final_status: fields[6].to_string(),
                breaker_opened,
                dead_lettered,
            });
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Phase, TraceEvent};

    fn sample() -> Provenance {
        Provenance {
            domain: "a.example".into(),
            rank: 12,
            vantage: "eu-fast-enus".into(),
            day: "2020-05-15".into(),
            trace_id: 0xfeed_f00d_dead_beef,
            attempts: vec![
                AttemptProvenance {
                    day: "2020-05-15".into(),
                    status: "timeout".into(),
                    fault: Some("timeout".into()),
                },
                AttemptProvenance {
                    day: "2020-05-17".into(),
                    status: "ok".into(),
                    fault: None,
                },
            ],
            outcome: "success".into(),
            final_status: "ok".into(),
            breaker_opened: false,
            dead_lettered: false,
        }
    }

    #[test]
    fn log_roundtrips_through_the_line_format() {
        let mut log = ProvenanceLog::new();
        log.push(sample());
        log.push(Provenance {
            domain: "b.example".into(),
            rank: 40,
            vantage: "us-fast-enus".into(),
            outcome: "transient".into(),
            final_status: "antibot".into(),
            breaker_opened: true,
            dead_lettered: true,
            ..sample()
        });
        let text = log.export();
        let back = ProvenanceLog::import(&text).unwrap();
        assert_eq!(back, log);
        assert_eq!(back.export(), text);
        assert_eq!(back.len(), 2);
        assert!(
            back.find("b.example", "us-fast-enus")
                .unwrap()
                .dead_lettered
        );
        assert_eq!(
            back.by_trace(0xfeed_f00d_dead_beef).unwrap().domain,
            "a.example"
        );
        assert!(back.find("a.example", "uni-ext-de").is_none());
    }

    #[test]
    fn import_rejects_corruption() {
        assert!(ProvenanceLog::import("").is_err());
        assert!(ProvenanceLog::import("#nope\n").is_err());
        let h = format!("{HEADER}\n");
        assert!(ProvenanceLog::import(&format!("{h}too\tfew\n")).is_err());
        let ok = "a\t1\teu-fast-enus\t2020-05-15\t0000000000000001\tsuccess\tok\t0\t0\t2020-05-15:ok:-\n";
        assert!(ProvenanceLog::import(&format!("{h}{ok}")).is_ok());
        let bad_rank = ok.replace("a\t1", "a\tNaN");
        assert!(ProvenanceLog::import(&format!("{h}{bad_rank}")).is_err());
        let bad_trace = ok.replace("0000000000000001", "zzzz");
        assert!(ProvenanceLog::import(&format!("{h}{bad_trace}")).is_err());
        let bad_flag = ok.replace("\t0\t0\t", "\t2\t0\t");
        assert!(ProvenanceLog::import(&format!("{h}{bad_flag}")).is_err());
        let no_attempts = ok.replace("2020-05-15:ok:-", "");
        assert!(ProvenanceLog::import(&format!("{h}{no_attempts}")).is_err());
        let bad_attempt = ok.replace("2020-05-15:ok:-", "2020-05-15~ok");
        assert!(ProvenanceLog::import(&format!("{h}{bad_attempt}")).is_err());
        let e = ProvenanceLog::import(&format!("{h}bad\n")).unwrap_err();
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn degraded_and_faults_derive_from_fields() {
        let p = sample();
        assert!(!p.degraded());
        assert_eq!(p.injected_faults().collect::<Vec<_>>(), vec!["timeout"]);
        let cut = Provenance {
            final_status: "truncated".into(),
            ..sample()
        };
        assert!(cut.degraded());
        let json = cut.to_json().to_compact();
        let doc = consent_util::Json::parse(&json).unwrap();
        assert_eq!(doc.get("degraded").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("attempts")
                .and_then(|a| a.at(1))
                .and_then(|a| a.get("fault")),
            Some(&Json::Null)
        );
    }

    #[test]
    fn from_tree_matches_the_stored_record() {
        // Hand-build the event stream the campaign emits for `sample()`.
        let a = |k: &'static str, v: &str| (k, v.to_string());
        let events = vec![
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 1,
                parent: 0,
                seq: 0,
                phase: Phase::Begin,
                name: "pair",
                attrs: vec![
                    a("domain", "a.example"),
                    a("rank", "12"),
                    a("vantage", "eu-fast-enus"),
                    a("day", "2020-05-15"),
                ],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 2,
                parent: 1,
                seq: 1,
                phase: Phase::Begin,
                name: "attempt",
                attrs: vec![a("attempt", "1"), a("day", "2020-05-15")],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 3,
                parent: 2,
                seq: 2,
                phase: Phase::Instant,
                name: "fault.injected",
                attrs: vec![a("fault", "timeout")],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 4,
                parent: 2,
                seq: 3,
                phase: Phase::Instant,
                name: "attempt.outcome",
                attrs: vec![a("status", "timeout"), a("outcome", "degraded")],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 2,
                parent: 1,
                seq: 4,
                phase: Phase::End,
                name: "attempt",
                attrs: Vec::new(),
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 5,
                parent: 1,
                seq: 5,
                phase: Phase::Begin,
                name: "attempt",
                attrs: vec![a("attempt", "2"), a("day", "2020-05-17")],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 6,
                parent: 5,
                seq: 6,
                phase: Phase::Instant,
                name: "attempt.outcome",
                attrs: vec![a("status", "ok"), a("outcome", "success")],
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 5,
                parent: 1,
                seq: 7,
                phase: Phase::End,
                name: "attempt",
                attrs: Vec::new(),
            },
            TraceEvent {
                trace_id: 0xfeed_f00d_dead_beef,
                span_id: 1,
                parent: 0,
                seq: 8,
                phase: Phase::End,
                name: "pair",
                attrs: Vec::new(),
            },
        ];
        let tree = TraceTree::build(&events).unwrap();
        let mut expected = sample();
        expected.outcome = "success".into();
        assert_eq!(Provenance::from_tree(&tree), Some(expected));
        // A non-pair tree distills to nothing.
        let other = TraceTree::build(&[
            TraceEvent {
                trace_id: 1,
                span_id: 1,
                parent: 0,
                seq: 0,
                phase: Phase::Begin,
                name: "other",
                attrs: Vec::new(),
            },
            TraceEvent {
                trace_id: 1,
                span_id: 1,
                parent: 0,
                seq: 1,
                phase: Phase::End,
                name: "other",
                attrs: Vec::new(),
            },
        ])
        .unwrap();
        assert_eq!(Provenance::from_tree(&other), None);
    }
}
