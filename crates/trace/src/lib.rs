//! consent-trace: causal tracing and per-capture provenance for the
//! consent-management measurement pipeline.
//!
//! The crate has two coupled layers:
//!
//! * **Tracing** — a process-global, disabled-by-default [`TraceLog`]
//!   of [`TraceEvent`]s. The campaign opens one trace per
//!   `(domain, vantage)` pair via [`start_trace`]; nested work records
//!   [`span`]s (attempts, page loads) and instant [`event`]s (injected
//!   faults, retry decisions, breaker transitions, CMP detections).
//!   Ids and sequence numbers are drawn from per-trace counters seeded
//!   by [`stable_id`], so a replay of the same campaign seed produces a
//!   byte-identical [JSONL export](TraceLog::export_jsonl) — and so
//!   does an interrupted-and-resumed replay, because the export sorts
//!   by `(trace_id, seq)` and every pair's events are self-numbered.
//! * **Provenance** — a [`Provenance`] record per pair, built by the
//!   campaign *unconditionally* (tracing on or off) and persisted in
//!   `CampaignState` checkpoints via [`ProvenanceLog`]. When tracing is
//!   on, [`Provenance::from_tree`] distills the identical record from
//!   the pair's [`TraceTree`], which cross-checks the two layers.
//!
//! Exporters: [`TraceLog::export_jsonl`] (byte-stable line format),
//! [`export_chrome`] (Chrome `trace_event` JSON loadable in Perfetto,
//! one thread track per vantage), and [`TraceTree::render`] (a
//! pretty-printed causal tree for single-capture debugging). The JSONL
//! export round-trips: [`TraceLog::import_jsonl`] restores a persisted
//! log (durable checkpoints carry one) such that re-exporting is
//! byte-identical.
//!
//! Disabled cost: each instrumentation site performs one relaxed atomic
//! load and returns; attribute closures never run, so nothing is
//! allocated or formatted (same discipline as `consent_telemetry`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod ctx;
mod event;
mod import;
mod log;
mod provenance;
mod tree;

pub use chrome::{export_chrome, export_chrome_string};
pub use ctx::{active, event, span, start_trace, AttrList, SpanGuard, TraceGuard};
pub use event::{Phase, TraceEvent};
pub use import::TraceImportError;
pub use log::{TraceLog, TraceMark};
pub use provenance::{AttemptProvenance, Provenance, ProvenanceImportError, ProvenanceLog};
pub use tree::{TraceNode, TraceTree};

use std::sync::OnceLock;

static GLOBAL: OnceLock<TraceLog> = OnceLock::new();

/// The process-global trace log. Created disabled: until [`enable`] is
/// called, every instrumentation site is one relaxed atomic load.
pub fn global() -> &'static TraceLog {
    GLOBAL.get_or_init(TraceLog::disabled)
}

/// Turn global recording on.
pub fn enable() {
    global().set_enabled(true);
}

/// Turn global recording off. Spans already open still emit their End
/// events (armed guards record unconditionally), so recorded trees stay
/// well-formed.
pub fn disable() {
    global().set_enabled(false);
}

/// Is the global log recording?
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

/// Drop every event in the global log (the enable flag is untouched).
pub fn clear() {
    global().clear();
}

/// Deterministic 64-bit id from a list of string parts. Same splitmix64
/// finalizer as `consent_util::SeedTree`, so ids are stable across runs,
/// platforms, and process restarts — the property that makes resumed
/// replays byte-identical to uninterrupted ones. Never returns 0 (0 is
/// the "no parent" sentinel in [`TraceEvent`]).
pub fn stable_id(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Separator step so ["ab","c"] != ["a","bc"].
        h ^= 0x9e37_79b9_7f4a_7c15;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = h;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_id_is_deterministic_and_separator_safe() {
        let a = stable_id(&["pair", "a.example", "eu-fast-enus"]);
        let b = stable_id(&["pair", "a.example", "eu-fast-enus"]);
        assert_eq!(a, b);
        assert_ne!(a, 0);
        assert_ne!(a, stable_id(&["pair", "a.example", "us-fast-enus"]));
        assert_ne!(stable_id(&["ab", "c"]), stable_id(&["a", "bc"]));
        assert_ne!(stable_id(&[]), 0);
    }

    #[test]
    fn global_toggle_controls_the_free_functions() {
        // This is the only test in the crate touching the global log;
        // integration coverage lives in tests/it_trace.rs.
        assert!(!enabled());
        {
            let _t = start_trace("pair", 42, |a| a.push("vantage", "eu-fast-enus"));
            let _ = span("attempt", |_| {}); // inert: log is disabled
            event("fault.injected", |a| a.push("fault", "reset"));
        }
        assert!(global().is_empty(), "disabled log must record nothing");

        enable();
        assert!(enabled());
        let id = stable_id(&["pair", "test"]);
        {
            let _t = start_trace("pair", id, |a| a.push("vantage", "eu-fast-enus"));
            assert!(active());
            // A nested start_trace is inert and must not disturb ids.
            {
                let _nested = start_trace("pair", 7, |_| {});
                event("inner", |_| {});
            }
            let s = span("attempt", |a| a.push("attempt", "1"));
            event("fault.injected", |a| a.push("fault", "reset"));
            drop(s);
        }
        assert!(!active());
        let events = global().trace(id);
        let tree = TraceTree::build(&events).expect("well-formed tree");
        assert_eq!(tree.root.name(), "pair");
        assert_eq!(tree.find_all("inner").len(), 1);
        assert_eq!(tree.find_all("fault.injected").len(), 1);
        assert!(global().trace(7).is_empty(), "nested trace must be inert");

        // Mid-flight disable: the armed guard still closes its span.
        clear();
        let id2 = stable_id(&["pair", "midflight"]);
        {
            let _t = start_trace("pair", id2, |_| {});
            let s = span("attempt", |_| {});
            disable();
            assert!(!active());
            event("dropped", |_| {}); // gated off: no event
            drop(s);
        }
        let events = global().trace(id2);
        let tree = TraceTree::build(&events).expect("armed guards keep trees closed");
        assert_eq!(tree.find_all("dropped").len(), 0);
        assert_eq!(tree.find_all("attempt").len(), 1);

        clear();
        assert!(!enabled());
    }
}
