//! JSONL re-import for persisted trace logs.
//!
//! Durable checkpoints persist the trace log (see `consent-checkpoint`
//! and the crawler's durable driver) so a resumed process can restore
//! the events of pairs that are already applied and will not be
//! re-crawled. Importing inverts [`TraceLog::export_jsonl`]: feeding an
//! export back through [`TraceLog::import_jsonl`] and exporting again is
//! byte-identical, because JSON objects serialize with deterministically
//! ordered keys in both directions.
//!
//! [`TraceEvent`] stores names and attribute keys as `&'static str`
//! (instrumentation sites use literals). Imported strings are interned
//! in a process-global table instead: each *distinct* name leaks once.
//! The alphabet is the fixed set of instrumentation names, so the table
//! is small and bounded for any number of imports.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use consent_util::Json;
use parking_lot::Mutex;

use crate::event::{Phase, TraceEvent};
use crate::log::TraceLog;

/// A malformed line in a trace JSONL import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceImportError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl std::fmt::Display for TraceImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace import: line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceImportError {}

fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeSet::new()));
    let mut table = table.lock();
    if let Some(&existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

fn bad(line: usize, message: impl Into<String>) -> TraceImportError {
    TraceImportError {
        line,
        message: message.into(),
    }
}

fn field_u64(obj: &Json, key: &str, line: usize) -> Result<u64, TraceImportError> {
    let v = obj
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(line, format!("missing numeric field {key:?}")))?;
    if v < 0.0 || v.fract() != 0.0 || v >= 9_007_199_254_740_992.0 {
        return Err(bad(line, format!("field {key:?} is not a valid u64: {v}")));
    }
    Ok(v as u64)
}

fn parse_line(text: &str, line: usize) -> Result<TraceEvent, TraceImportError> {
    let json = Json::parse(text).map_err(|e| bad(line, format!("not valid JSON: {e:?}")))?;
    match json.get("kind").and_then(Json::as_str) {
        Some("trace_event") => {}
        other => {
            return Err(bad(
                line,
                format!("kind is {other:?}, expected \"trace_event\""),
            ))
        }
    }
    let trace_hex = json
        .get("trace")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(line, "missing string field \"trace\""))?;
    let trace_id = (trace_hex.len() == 16)
        .then(|| u64::from_str_radix(trace_hex, 16).ok())
        .flatten()
        .ok_or_else(|| bad(line, format!("bad trace id {trace_hex:?}")))?;
    let phase = match json.get("ph").and_then(Json::as_str) {
        Some("B") => Phase::Begin,
        Some("E") => Phase::End,
        Some("i") => Phase::Instant,
        other => return Err(bad(line, format!("bad phase {other:?}"))),
    };
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad(line, "missing string field \"name\""))?;
    let mut attrs: Vec<(&'static str, String)> = Vec::new();
    if let Some(args) = json.get("args") {
        let obj = args
            .as_object()
            .ok_or_else(|| bad(line, "\"args\" is not an object"))?;
        for (k, v) in obj {
            let v = v
                .as_str()
                .ok_or_else(|| bad(line, format!("attr {k:?} is not a string")))?;
            attrs.push((intern(k), v.to_string()));
        }
    }
    Ok(TraceEvent {
        trace_id,
        span_id: field_u64(&json, "span", line)?,
        parent: field_u64(&json, "parent", line)?,
        seq: field_u64(&json, "seq", line)?,
        phase,
        name: intern(name),
        attrs,
    })
}

impl TraceLog {
    /// Append every event of a JSONL export (see
    /// [`TraceLog::export_jsonl`]) to this log. Returns the number of
    /// events imported; on a malformed line nothing before it is rolled
    /// back (callers importing into a fresh log should discard it on
    /// error). Blank lines are rejected — an export never contains them.
    pub fn import_jsonl(&self, text: &str) -> Result<usize, TraceImportError> {
        let mut n = 0;
        for (i, line) in text.lines().enumerate() {
            let event = parse_line(line, i + 1)?;
            self.record(event);
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_log() -> TraceLog {
        let log = TraceLog::new();
        log.record(TraceEvent {
            trace_id: 0xfeed_f00d_dead_beef,
            span_id: 1,
            parent: 0,
            seq: 0,
            phase: Phase::Begin,
            name: "pair",
            attrs: vec![
                ("vantage", "eu-ext".to_string()),
                ("domain", "a.example".to_string()),
            ],
        });
        log.record(TraceEvent {
            trace_id: 0xfeed_f00d_dead_beef,
            span_id: 1,
            parent: 0,
            seq: 1,
            phase: Phase::End,
            name: "pair",
            attrs: Vec::new(),
        });
        log.record(TraceEvent {
            trace_id: 3,
            span_id: 2,
            parent: 1,
            seq: 4,
            phase: Phase::Instant,
            name: "fault.injected",
            attrs: vec![("fault", "timeout".to_string())],
        });
        log
    }

    #[test]
    fn export_import_export_is_byte_identical() {
        let log = demo_log();
        let exported = log.export_jsonl();
        let fresh = TraceLog::new();
        let n = fresh.import_jsonl(&exported).unwrap();
        assert_eq!(n, 3);
        assert_eq!(fresh.export_jsonl(), exported);
        // Attrs come back in sorted-key order (JSON objects are
        // BTreeMaps), which the JSON layer already canonicalized at
        // export time — so events match up to attr reordering.
        let canon = |log: &TraceLog| -> Vec<TraceEvent> {
            log.snapshot()
                .into_iter()
                .map(|mut e| {
                    e.attrs.sort_by_key(|(k, _)| *k);
                    e
                })
                .collect()
        };
        assert_eq!(canon(&fresh), canon(&log));
    }

    #[test]
    fn import_is_additive() {
        let log = demo_log();
        let exported = log.export_jsonl();
        let fresh = TraceLog::new();
        fresh.import_jsonl(&exported).unwrap();
        fresh.import_jsonl(&exported).unwrap();
        assert_eq!(fresh.len(), 6);
    }

    #[test]
    fn malformed_lines_report_position() {
        let log = demo_log();
        let mut exported = log.export_jsonl();
        exported.push_str("not json\n");
        let fresh = TraceLog::new();
        let err = fresh.import_jsonl(&exported).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.to_string().contains("line 4"));

        for (line, why) in [
            ("{\"kind\":\"other\"}", "kind"),
            (
                "{\"kind\":\"trace_event\",\"trace\":\"xyz\"}",
                "trace id",
            ),
            (
                "{\"kind\":\"trace_event\",\"trace\":\"0000000000000003\",\"ph\":\"Q\"}",
                "phase",
            ),
            (
                "{\"kind\":\"trace_event\",\"trace\":\"0000000000000003\",\"ph\":\"i\",\"name\":\"x\",\"span\":-1,\"parent\":0,\"seq\":0}",
                "span",
            ),
        ] {
            let err = TraceLog::new().import_jsonl(line).unwrap_err();
            assert_eq!(err.line, 1, "{line}");
            assert!(err.message.contains(why), "{line} -> {}", err.message);
        }
    }

    #[test]
    fn interning_reuses_known_names() {
        let log = TraceLog::new();
        log.import_jsonl(
            "{\"kind\":\"trace_event\",\"name\":\"pair\",\"parent\":0,\"ph\":\"B\",\"seq\":0,\"span\":1,\"trace\":\"0000000000000007\"}\n",
        )
        .unwrap();
        let snap = log.snapshot();
        assert_eq!(snap[0].name, "pair");
        assert_eq!(snap[0].trace_id, 7);
    }
}
