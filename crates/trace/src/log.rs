//! The lock-sharded trace log.
//!
//! Events land in one of a fixed number of shards keyed by trace id, so
//! concurrent traced pipelines contend only when they interleave traces
//! onto the same shard. A [`snapshot`](TraceLog::snapshot) normalizes
//! the whole log into `(trace_id, seq)` order, which is what makes the
//! JSONL export byte-stable across replays *and* across checkpoint
//! resumes: the set of recorded events is identical, and the sort
//! erases any difference in arrival order.

use crate::event::TraceEvent;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

const SHARDS: usize = 16;

/// An append-only log of [`TraceEvent`]s behind an enable flag.
///
/// Like `consent_telemetry::Registry`, the disabled state is the
/// default for the process-global instance and costs exactly one
/// relaxed atomic load per instrumentation site.
#[derive(Debug, Default)]
pub struct TraceLog {
    enabled: AtomicBool,
    shards: [Mutex<Vec<TraceEvent>>; SHARDS],
}

impl TraceLog {
    /// A recording log.
    pub fn new() -> TraceLog {
        let log = TraceLog::default();
        log.enabled.store(true, Ordering::Relaxed);
        log
    }

    /// A log whose instrumentation entry points are no-ops (the global
    /// default).
    pub fn disabled() -> TraceLog {
        TraceLog::default()
    }

    /// Is this log recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append one event unconditionally. The crate's free functions
    /// gate on [`enabled`](Self::enabled) *before*
    /// building the event; armed guards call this directly on drop so a
    /// span that emitted a Begin always emits its End, keeping trees
    /// well-formed even when recording is disabled mid-flight.
    pub fn record(&self, event: TraceEvent) {
        self.shards[(event.trace_id as usize) % SHARDS]
            .lock()
            .push(event);
    }

    /// Drop every recorded event (the enable flag is left unchanged).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every recorded event, sorted by `(trace_id, seq)`.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            all.extend(shard.lock().iter().cloned());
        }
        all.sort_by_key(|e| (e.trace_id, e.seq));
        all
    }

    /// The events of one trace, sorted by `seq`.
    pub fn trace(&self, trace_id: u64) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self.shards[(trace_id as usize) % SHARDS]
            .lock()
            .iter()
            .filter(|e| e.trace_id == trace_id)
            .cloned()
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Every distinct trace id, sorted.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = Vec::new();
        for shard in &self.shards {
            ids.extend(shard.lock().iter().map(|e| e.trace_id));
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// JSONL export: one event object per line, in `(trace_id, seq)`
    /// order. Byte-identical for identical seeds (and for interrupted +
    /// resumed replays of the same campaign).
    pub fn export_jsonl(&self) -> String {
        jsonl(self.snapshot())
    }

    /// The current high-water mark: per-shard event counts. Taken at a
    /// quiescent point (no concurrent recorders), everything recorded
    /// past the mark is exactly the set of events that arrived since —
    /// the delta-checkpoint cursor for the trace log.
    pub fn mark(&self) -> TraceMark {
        TraceMark {
            counts: std::array::from_fn(|i| self.shards[i].lock().len()),
        }
    }

    /// JSONL export of only the events recorded after `mark`, in the
    /// same `(trace_id, seq)` sorted line format as
    /// [`export_jsonl`](Self::export_jsonl). At a checkpoint cut the
    /// post-mark *set* of events is deterministic (all of a chunk's
    /// workers have joined), and the sort erases arrival order — so
    /// delta trace sections are byte-stable even though each one is not
    /// a byte-suffix of the full export. Concatenating a base export
    /// with its deltas therefore carries the full event set, and a
    /// re-import + re-export reproduces the uninterrupted bytes.
    pub fn export_jsonl_since(&self, mark: &TraceMark) -> String {
        let mut events = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock();
            events.extend(shard[mark.counts[i].min(shard.len())..].iter().cloned());
        }
        events.sort_by_key(|e| (e.trace_id, e.seq));
        jsonl(events)
    }
}

/// An opaque cursor into a [`TraceLog`], produced by
/// [`TraceLog::mark`] and consumed by [`TraceLog::export_jsonl_since`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMark {
    counts: [usize; SHARDS],
}

fn jsonl(events: Vec<TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn ev(trace_id: u64, seq: u64) -> TraceEvent {
        TraceEvent {
            trace_id,
            span_id: 1,
            parent: 0,
            seq,
            phase: Phase::Instant,
            name: "t",
            attrs: Vec::new(),
        }
    }

    #[test]
    fn snapshot_normalizes_arrival_order() {
        let log = TraceLog::new();
        // Interleave two traces out of order.
        log.record(ev(7, 1));
        log.record(ev(3, 0));
        log.record(ev(7, 0));
        log.record(ev(3, 1));
        assert_eq!(log.len(), 4);
        let snap = log.snapshot();
        let order: Vec<(u64, u64)> = snap.iter().map(|e| (e.trace_id, e.seq)).collect();
        assert_eq!(order, vec![(3, 0), (3, 1), (7, 0), (7, 1)]);
        assert_eq!(log.trace_ids(), vec![3, 7]);
        assert_eq!(log.trace(7).len(), 2);
        // Shard-crossing ids land in different shards but one export.
        let a = log.export_jsonl();
        let b = log.export_jsonl();
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 4);
        log.clear();
        assert!(log.is_empty());
        assert!(log.export_jsonl().is_empty());
    }

    #[test]
    fn mark_splits_export_into_base_plus_delta_set() {
        let log = TraceLog::new();
        log.record(ev(7, 0));
        log.record(ev(3, 0));
        let mark = log.mark();
        // Fresh marks export nothing.
        assert!(log.export_jsonl_since(&mark).is_empty());
        // Post-mark events land across shards and out of order.
        log.record(ev(23, 1)); // shard 7, same as trace 7
        log.record(ev(3, 1));
        log.record(ev(23, 0));
        let delta = log.export_jsonl_since(&mark);
        assert_eq!(delta.lines().count(), 3);
        // The delta is itself (trace_id, seq)-sorted and byte-stable.
        assert_eq!(delta, log.export_jsonl_since(&mark));
        // Base + delta carries the full event set: re-importing the
        // concatenation into a fresh log reproduces the full export.
        let full = log.export_jsonl();
        let base = {
            let l = TraceLog::new();
            l.record(ev(7, 0));
            l.record(ev(3, 0));
            l.export_jsonl()
        };
        let merged = TraceLog::new();
        merged.import_jsonl(&format!("{base}{delta}")).unwrap();
        assert_eq!(merged.export_jsonl(), full);
    }

    #[test]
    fn disabled_log_still_accepts_direct_records() {
        // record() is unconditional by contract: the enabled gate lives
        // in the free functions, and armed guards must always close.
        let log = TraceLog::disabled();
        assert!(!log.enabled());
        log.record(ev(1, 0));
        assert_eq!(log.len(), 1);
        log.set_enabled(true);
        assert!(log.enabled());
    }
}
