//! The trace event model.
//!
//! Every event carries a stable `(trace_id, span_id, parent)` triple
//! that places it in a causal tree, plus a per-trace sequence number
//! that orders it. There is deliberately **no wall-clock timestamp**:
//! the simulator is deterministic and its traces must be byte-stable
//! across replays of the same seed, so ordering is logical (`seq`) and
//! any simulated-time quantities travel as attributes.

use consent_util::Json;

/// The role of an event inside its span tree, mirroring the Chrome
/// trace-event phases the exporter emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span opened (`ph: "B"`).
    Begin,
    /// A span closed (`ph: "E"`).
    End,
    /// A point event inside the enclosing span (`ph: "i"`).
    Instant,
}

impl Phase {
    /// The Chrome trace-event phase code.
    pub fn code(&self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Stable id of the trace this event belongs to (deterministically
    /// derived from the traced entity, e.g. a `(domain, vantage, day)`
    /// pair — see [`crate::stable_id`]).
    pub trace_id: u64,
    /// Id of the node this event creates or closes. The root span of a
    /// trace is always span 1; ids increase in creation order.
    pub span_id: u64,
    /// The enclosing span's id (0 for the root).
    pub parent: u64,
    /// Per-trace sequence number, dense from 0 in emission order.
    pub seq: u64,
    /// Begin/End/Instant.
    pub phase: Phase,
    /// Static event name (e.g. `pair`, `attempt`, `fault.injected`).
    pub name: &'static str,
    /// Key/value attributes. Keys are static; values are small strings.
    pub attrs: Vec<(&'static str, String)>,
}

impl TraceEvent {
    /// Look up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
    }

    /// One JSON object for the JSONL export. The trace id is encoded as
    /// a 16-digit hex string (JSON numbers lose precision above 2^53).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind".to_string(), Json::str("trace_event")),
            (
                "trace".to_string(),
                Json::str(format!("{:016x}", self.trace_id)),
            ),
            ("span".to_string(), Json::int(self.span_id as i64)),
            ("parent".to_string(), Json::int(self.parent as i64)),
            ("seq".to_string(), Json::int(self.seq as i64)),
            ("ph".to_string(), Json::str(self.phase.code())),
            ("name".to_string(), Json::str(self.name)),
        ];
        if !self.attrs.is_empty() {
            fields.push((
                "args".to_string(),
                Json::object(
                    self.attrs
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::str(v.clone()))),
                ),
            ));
        }
        Json::object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_carries_every_field() {
        let e = TraceEvent {
            trace_id: 0xdead_beef,
            span_id: 2,
            parent: 1,
            seq: 3,
            phase: Phase::Instant,
            name: "fault.injected",
            attrs: vec![("fault", "timeout".to_string())],
        };
        let line = e.to_json().to_compact();
        let back = Json::parse(&line).unwrap();
        assert_eq!(
            back.get("trace").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(back.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(back.get("seq").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            back.get("args")
                .and_then(|a| a.get("fault"))
                .and_then(Json::as_str),
            Some("timeout")
        );
        assert_eq!(e.attr("fault"), Some("timeout"));
        assert_eq!(e.attr("nope"), None);
    }
}
