//! The thread-local trace context and its RAII guards.
//!
//! A trace is opened with [`start_trace`], which installs a per-thread
//! context carrying the trace id and two monotonic counters: the next
//! span id and the next sequence number. [`span`] and [`event`] draw
//! from those counters, so id assignment is deterministic as long as
//! the traced code itself is deterministic — there is no global counter
//! whose value could depend on how traces interleave across threads.
//!
//! Every entry point first checks the global log's enable flag (one
//! relaxed atomic load) and only then runs the caller's attribute
//! closure, so a disabled run neither allocates nor formats anything.
//! Guards are *armed* at creation: a span that emitted its Begin event
//! always emits the matching End on drop, even if recording is turned
//! off mid-flight, keeping every recorded tree well-formed.

use crate::event::{Phase, TraceEvent};
use crate::global;
use std::cell::RefCell;

/// The root span id of every trace.
const ROOT_SPAN: u64 = 1;

/// Attribute accumulator passed to the closures of [`start_trace`],
/// [`span`], and [`event`]. The closure only runs when the event is
/// actually recorded.
#[derive(Debug, Default)]
pub struct AttrList {
    items: Vec<(&'static str, String)>,
}

impl AttrList {
    /// Append one key/value attribute.
    pub fn push(&mut self, key: &'static str, value: impl Into<String>) {
        self.items.push((key, value.into()));
    }
}

struct ActiveTrace {
    trace_id: u64,
    next_span: u64,
    next_seq: u64,
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// True when the global log is recording *and* the current thread has
/// an open trace — gate any instrumentation loop that would allocate
/// per item behind this (mirrors `consent_telemetry::enabled`).
#[inline]
pub fn active() -> bool {
    global().enabled() && ACTIVE.with(|a| a.borrow().is_some())
}

/// Guard for a whole trace; closes the root span on drop.
#[must_use = "a trace guard closes its trace on drop; binding it to _ ends the trace immediately"]
#[derive(Debug)]
pub struct TraceGuard {
    armed: bool,
    name: &'static str,
}

/// Guard for one child span; closes it on drop.
#[must_use = "a span guard closes its span on drop; binding it to _ ends the span immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
    name: &'static str,
    span_id: u64,
    parent: u64,
}

/// Open a trace rooted at span 1. Returns an inert guard when the
/// global log is disabled or the thread already has an open trace
/// (traces do not nest — use [`span`] inside an open trace).
pub fn start_trace(
    name: &'static str,
    trace_id: u64,
    attrs: impl FnOnce(&mut AttrList),
) -> TraceGuard {
    if !global().enabled() {
        return TraceGuard { armed: false, name };
    }
    let installed = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_some() {
            return false;
        }
        *slot = Some(ActiveTrace {
            trace_id,
            next_span: ROOT_SPAN + 1,
            next_seq: 1,
            stack: vec![ROOT_SPAN],
        });
        true
    });
    if !installed {
        return TraceGuard { armed: false, name };
    }
    let mut list = AttrList::default();
    attrs(&mut list);
    global().record(TraceEvent {
        trace_id,
        span_id: ROOT_SPAN,
        parent: 0,
        seq: 0,
        phase: Phase::Begin,
        name,
        attrs: list.items,
    });
    TraceGuard { armed: true, name }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some(t) = ACTIVE.with(|a| a.borrow_mut().take()) else {
            return;
        };
        let seq = t.next_seq;
        global().record(TraceEvent {
            trace_id: t.trace_id,
            span_id: ROOT_SPAN,
            parent: 0,
            seq,
            phase: Phase::End,
            name: self.name,
            attrs: Vec::new(),
        });
        // RunReport wiring: traces and their event volume show up in
        // the §3.5 quality columns when telemetry is also recording.
        consent_telemetry::count("trace.traces", 1);
        consent_telemetry::count("trace.events", seq + 1);
    }
}

/// Open a child span under the innermost open span. Inert without an
/// open trace on this thread (or while the log is disabled).
pub fn span(name: &'static str, attrs: impl FnOnce(&mut AttrList)) -> SpanGuard {
    let inert = SpanGuard {
        armed: false,
        name,
        span_id: 0,
        parent: 0,
    };
    if !global().enabled() {
        return inert;
    }
    let ids = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let t = slot.as_mut()?;
        let span_id = t.next_span;
        t.next_span += 1;
        let parent = *t.stack.last().expect("an open trace always has a root");
        let seq = t.next_seq;
        t.next_seq += 1;
        t.stack.push(span_id);
        Some((t.trace_id, span_id, parent, seq))
    });
    let Some((trace_id, span_id, parent, seq)) = ids else {
        return inert;
    };
    let mut list = AttrList::default();
    attrs(&mut list);
    global().record(TraceEvent {
        trace_id,
        span_id,
        parent,
        seq,
        phase: Phase::Begin,
        name,
        attrs: list.items,
    });
    SpanGuard {
        armed: true,
        name,
        span_id,
        parent,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let ids = ACTIVE.with(|a| {
            let mut slot = a.borrow_mut();
            let t = slot.as_mut()?;
            debug_assert_eq!(
                t.stack.last(),
                Some(&self.span_id),
                "span guards must drop in LIFO order"
            );
            t.stack.pop();
            let seq = t.next_seq;
            t.next_seq += 1;
            Some((t.trace_id, seq))
        });
        if let Some((trace_id, seq)) = ids {
            global().record(TraceEvent {
                trace_id,
                span_id: self.span_id,
                parent: self.parent,
                seq,
                phase: Phase::End,
                name: self.name,
                attrs: Vec::new(),
            });
        }
    }
}

/// Record an instant event under the innermost open span. No-op without
/// an open trace on this thread (or while the log is disabled).
pub fn event(name: &'static str, attrs: impl FnOnce(&mut AttrList)) {
    if !global().enabled() {
        return;
    }
    let ids = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        let t = slot.as_mut()?;
        let span_id = t.next_span;
        t.next_span += 1;
        let parent = *t.stack.last().expect("an open trace always has a root");
        let seq = t.next_seq;
        t.next_seq += 1;
        Some((t.trace_id, span_id, parent, seq))
    });
    let Some((trace_id, span_id, parent, seq)) = ids else {
        return;
    };
    let mut list = AttrList::default();
    attrs(&mut list);
    global().record(TraceEvent {
        trace_id,
        span_id,
        parent,
        seq,
        phase: Phase::Instant,
        name,
        attrs: list.items,
    });
}
