//! In-page `__cmp()` API surface.
//!
//! The paper instruments `__cmp('ping', …)` to detect when a consent
//! dialog appears and `__cmp('getConsentData', …)` to read the decision
//! (§3.2). This module models the API as a small state machine attached
//! to a page: commands arrive over simulated time, and the responses
//! mirror the TCF v1.1 JS API spec.

use crate::consent_string::{ConsentString, VendorEncoding};
use consent_util::SimInstant;

/// Result of `__cmp('ping')`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PingResult {
    /// The CMP script has loaded (always true once the stub is replaced).
    pub cmp_loaded: bool,
    /// GDPR applies to this user (per the CMP's geo lookup).
    pub gdpr_applies: bool,
}

/// Result of `__cmp('getConsentData')`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsentData {
    /// The base64url consent string, if a decision exists.
    pub consent_data: Option<String>,
    /// GDPR applies.
    pub gdpr_applies: bool,
    /// True if the consent dialog has been fully shown to the user.
    pub has_global_scope: bool,
}

/// Lifecycle of the CMP on one page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpState {
    /// The stub is installed but the main script hasn't loaded yet.
    Stub,
    /// Loaded, dialog not (yet) shown.
    Loaded,
    /// Dialog currently displayed.
    DialogShown,
    /// User made a decision; consent string available.
    Decided,
}

/// A simulated in-page CMP exposing the `__cmp` API.
#[derive(Clone, Debug)]
pub struct CmpApi {
    state: CmpState,
    gdpr_applies: bool,
    consent: Option<ConsentString>,
    /// Timeline markers the experiment harness reads.
    pub loaded_at: Option<SimInstant>,
    /// When the dialog became visible.
    pub dialog_shown_at: Option<SimInstant>,
    /// When the user's decision was stored.
    pub decided_at: Option<SimInstant>,
}

impl CmpApi {
    /// A fresh stub, as injected in the page `<head>`.
    pub fn new(gdpr_applies: bool) -> CmpApi {
        CmpApi {
            state: CmpState::Stub,
            gdpr_applies,
            consent: None,
            loaded_at: None,
            dialog_shown_at: None,
            decided_at: None,
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CmpState {
        self.state
    }

    /// Main CMP script finished loading.
    pub fn script_loaded(&mut self, at: SimInstant) {
        if self.state == CmpState::Stub {
            self.state = CmpState::Loaded;
            self.loaded_at = Some(at);
        }
    }

    /// Dialog rendered. No-op unless loaded. Returns whether it was shown
    /// (an existing decision suppresses the dialog — "repeated visitors
    /// will not be counted", §3.2).
    pub fn show_dialog(&mut self, at: SimInstant) -> bool {
        match self.state {
            CmpState::Loaded if self.consent.is_none() => {
                self.state = CmpState::DialogShown;
                self.dialog_shown_at = Some(at);
                true
            }
            _ => false,
        }
    }

    /// Store the user's decision and close the dialog.
    pub fn store_decision(&mut self, consent: ConsentString, at: SimInstant) {
        self.consent = Some(consent);
        self.decided_at = Some(at);
        self.state = CmpState::Decided;
    }

    /// Pre-load an existing global consent cookie (a returning visitor).
    pub fn preload_consent(&mut self, consent: ConsentString) {
        self.consent = Some(consent);
        if self.state == CmpState::Stub {
            self.state = CmpState::Loaded;
        }
        self.state = CmpState::Decided;
    }

    /// `__cmp('ping')`.
    pub fn ping(&self) -> PingResult {
        PingResult {
            cmp_loaded: self.state != CmpState::Stub,
            gdpr_applies: self.gdpr_applies,
        }
    }

    /// `__cmp('getConsentData')`.
    pub fn get_consent_data(&self) -> ConsentData {
        ConsentData {
            consent_data: self
                .consent
                .as_ref()
                .map(|c| c.encode(VendorEncoding::Auto)),
            gdpr_applies: self.gdpr_applies,
            has_global_scope: true,
        }
    }

    /// `__cmp('getVendorConsents')`: whether each queried vendor id has
    /// consent. Empty query means "all vendors up to maxVendorId".
    pub fn get_vendor_consents(&self, vendor_ids: &[u16]) -> Vec<(u16, bool)> {
        match &self.consent {
            None => vendor_ids.iter().map(|&id| (id, false)).collect(),
            Some(c) => {
                if vendor_ids.is_empty() {
                    (1..=c.max_vendor_id)
                        .map(|id| (id, c.vendor_allowed(id)))
                        .collect()
                } else {
                    vendor_ids
                        .iter()
                        .map(|&id| (id, c.vendor_allowed(id)))
                        .collect()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::purposes::all_purpose_ids;

    #[test]
    fn lifecycle_happy_path() {
        let mut cmp = CmpApi::new(true);
        assert_eq!(cmp.state(), CmpState::Stub);
        assert!(!cmp.ping().cmp_loaded);
        assert!(cmp.ping().gdpr_applies);

        cmp.script_loaded(SimInstant::from_millis(800));
        assert_eq!(cmp.state(), CmpState::Loaded);
        assert!(cmp.ping().cmp_loaded);

        assert!(cmp.show_dialog(SimInstant::from_millis(1200)));
        assert_eq!(cmp.state(), CmpState::DialogShown);
        assert_eq!(cmp.get_consent_data().consent_data, None);

        let consent = ConsentString::new(10, 215, 600).accept_all(all_purpose_ids());
        cmp.store_decision(consent, SimInstant::from_secs(4));
        assert_eq!(cmp.state(), CmpState::Decided);
        let data = cmp.get_consent_data();
        let s = data.consent_data.unwrap();
        let decoded = ConsentString::decode(&s).unwrap();
        assert_eq!(decoded.consent_count(), 600);
        assert_eq!(cmp.dialog_shown_at, Some(SimInstant::from_millis(1200)));
        assert_eq!(cmp.decided_at, Some(SimInstant::from_secs(4)));
    }

    #[test]
    fn returning_visitor_sees_no_dialog() {
        let mut cmp = CmpApi::new(true);
        cmp.preload_consent(ConsentString::new(10, 215, 600).accept_all(all_purpose_ids()));
        cmp.script_loaded(SimInstant::from_millis(500));
        assert!(!cmp.show_dialog(SimInstant::from_millis(900)));
        assert_eq!(cmp.state(), CmpState::Decided);
        assert!(cmp.get_consent_data().consent_data.is_some());
    }

    #[test]
    fn dialog_requires_loaded_script() {
        let mut cmp = CmpApi::new(true);
        assert!(!cmp.show_dialog(SimInstant::ZERO));
        assert_eq!(cmp.state(), CmpState::Stub);
    }

    #[test]
    fn vendor_consent_queries() {
        let mut cmp = CmpApi::new(true);
        assert_eq!(
            cmp.get_vendor_consents(&[1, 2]),
            vec![(1, false), (2, false)]
        );
        let mut consent = ConsentString::new(10, 215, 5);
        consent.vendor_consents = [2, 4].into();
        cmp.preload_consent(consent);
        assert_eq!(
            cmp.get_vendor_consents(&[1, 2, 4]),
            vec![(1, false), (2, true), (4, true)]
        );
        let all = cmp.get_vendor_consents(&[]);
        assert_eq!(all.len(), 5);
        assert_eq!(all[1], (2, true));
        assert_eq!(all[2], (3, false));
    }

    #[test]
    fn non_gdpr_user() {
        let cmp = CmpApi::new(false);
        assert!(!cmp.ping().gdpr_applies);
        assert!(!cmp.get_consent_data().gdpr_applies);
    }
}
