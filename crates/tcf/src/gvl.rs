//! Global Vendor List (GVL) data model and JSON codec.
//!
//! The GVL is the IAB-maintained master list of advertisers participating
//! in the TCF. Each vendor declares the purposes for which it *requests
//! consent*, the purposes for which it instead *claims legitimate
//! interest* (processing without consent, GDPR Art. 6.1b–f), and the
//! features it relies on. The paper systematically downloads all 215
//! published versions of `vendor-list.json`; this module models one
//! version and its wire format.

use crate::purposes::{FeatureId, PurposeId, FEATURES, PURPOSES};
use consent_util::{Day, Json};
use std::collections::BTreeSet;
use std::fmt;

/// An IAB-assigned vendor id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VendorId(pub u16);

impl fmt::Display for VendorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One vendor's entry in a GVL version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vendor {
    /// IAB vendor id.
    pub id: VendorId,
    /// Company name.
    pub name: String,
    /// Privacy-policy URL.
    pub policy_url: String,
    /// Purposes for which the vendor requests *consent*.
    pub purpose_ids: BTreeSet<PurposeId>,
    /// Purposes for which the vendor claims *legitimate interest*.
    pub leg_int_purpose_ids: BTreeSet<PurposeId>,
    /// Features the vendor relies on.
    pub feature_ids: BTreeSet<FeatureId>,
}

impl Vendor {
    /// True if the vendor claims any lawful basis for `p` at all.
    pub fn uses_purpose(&self, p: PurposeId) -> bool {
        self.purpose_ids.contains(&p) || self.leg_int_purpose_ids.contains(&p)
    }
}

/// A complete published GVL version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VendorList {
    /// Monotonically increasing version number.
    pub vendor_list_version: u16,
    /// Publication date.
    pub last_updated: Day,
    /// Vendors sorted by id.
    pub vendors: Vec<Vendor>,
}

/// Error when a `vendor-list.json` document is malformed.
#[derive(Clone, Debug, PartialEq)]
pub enum GvlError {
    /// Not valid JSON at all.
    Json(String),
    /// A required field is missing or has the wrong type.
    Field {
        /// Dotted path of the offending field.
        path: String,
    },
    /// Vendor ids must be unique and ascending.
    DuplicateVendor(u16),
}

impl fmt::Display for GvlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GvlError::Json(m) => write!(f, "invalid JSON: {m}"),
            GvlError::Field { path } => write!(f, "missing/invalid field {path}"),
            GvlError::DuplicateVendor(id) => write!(f, "duplicate vendor id {id}"),
        }
    }
}

impl std::error::Error for GvlError {}

impl VendorList {
    /// Look up a vendor by id (binary search; vendors are sorted).
    pub fn vendor(&self, id: VendorId) -> Option<&Vendor> {
        self.vendors
            .binary_search_by_key(&id, |v| v.id)
            .ok()
            .map(|i| &self.vendors[i])
    }

    /// Highest vendor id in the list (0 if empty).
    pub fn max_vendor_id(&self) -> u16 {
        self.vendors.last().map_or(0, |v| v.id.0)
    }

    /// Number of vendors.
    pub fn len(&self) -> usize {
        self.vendors.len()
    }

    /// True if the list has no vendors.
    pub fn is_empty(&self) -> bool {
        self.vendors.is_empty()
    }

    /// Vendors requesting consent for purpose `p`.
    pub fn consent_count(&self, p: PurposeId) -> usize {
        self.vendors
            .iter()
            .filter(|v| v.purpose_ids.contains(&p))
            .count()
    }

    /// Vendors claiming legitimate interest for purpose `p`.
    pub fn leg_int_count(&self, p: PurposeId) -> usize {
        self.vendors
            .iter()
            .filter(|v| v.leg_int_purpose_ids.contains(&p))
            .count()
    }

    /// Serialize in the `vendor-list.json` wire format.
    pub fn to_json(&self) -> Json {
        Json::object([
            (
                "vendorListVersion".into(),
                Json::int(i64::from(self.vendor_list_version)),
            ),
            (
                "lastUpdated".into(),
                Json::str(format!("{}T00:00:00Z", self.last_updated)),
            ),
            (
                "purposes".into(),
                Json::array(PURPOSES.iter().map(|p| {
                    Json::object([
                        ("id".into(), Json::int(i64::from(p.id.0))),
                        ("name".into(), Json::str(p.name)),
                        ("description".into(), Json::str(p.description)),
                    ])
                })),
            ),
            (
                "features".into(),
                Json::array(FEATURES.iter().map(|f| {
                    Json::object([
                        ("id".into(), Json::int(i64::from(f.id.0))),
                        ("name".into(), Json::str(f.name)),
                        ("description".into(), Json::str(f.description)),
                    ])
                })),
            ),
            (
                "vendors".into(),
                Json::array(self.vendors.iter().map(|v| {
                    Json::object([
                        ("id".into(), Json::int(i64::from(v.id.0))),
                        ("name".into(), Json::str(v.name.clone())),
                        ("policyUrl".into(), Json::str(v.policy_url.clone())),
                        (
                            "purposeIds".into(),
                            Json::array(v.purpose_ids.iter().map(|p| Json::int(i64::from(p.0)))),
                        ),
                        (
                            "legIntPurposeIds".into(),
                            Json::array(
                                v.leg_int_purpose_ids
                                    .iter()
                                    .map(|p| Json::int(i64::from(p.0))),
                            ),
                        ),
                        (
                            "featureIds".into(),
                            Json::array(v.feature_ids.iter().map(|f| Json::int(i64::from(f.0)))),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Parse the `vendor-list.json` wire format.
    pub fn from_json_text(text: &str) -> Result<VendorList, GvlError> {
        let doc = Json::parse(text).map_err(|e| GvlError::Json(e.to_string()))?;
        Self::from_json(&doc)
    }

    /// Parse from an already-parsed JSON document.
    pub fn from_json(doc: &Json) -> Result<VendorList, GvlError> {
        let field = |path: &str| GvlError::Field { path: path.into() };
        let vendor_list_version = doc
            .get("vendorListVersion")
            .and_then(Json::as_u32)
            .ok_or_else(|| field("vendorListVersion"))? as u16;
        let last_updated_str = doc
            .get("lastUpdated")
            .and_then(Json::as_str)
            .ok_or_else(|| field("lastUpdated"))?;
        let last_updated: Day = last_updated_str
            .split('T')
            .next()
            .unwrap_or_default()
            .parse()
            .map_err(|_| field("lastUpdated"))?;
        let vendors_json = doc
            .get("vendors")
            .and_then(Json::as_array)
            .ok_or_else(|| field("vendors"))?;
        let mut vendors = Vec::with_capacity(vendors_json.len());
        let mut seen = BTreeSet::new();
        for (i, vj) in vendors_json.iter().enumerate() {
            let vpath = |f: &str| field(&format!("vendors[{i}].{f}"));
            let id = vj
                .get("id")
                .and_then(Json::as_u32)
                .ok_or_else(|| vpath("id"))? as u16;
            if !seen.insert(id) {
                return Err(GvlError::DuplicateVendor(id));
            }
            let ids_of = |key: &str| -> Result<Vec<u32>, GvlError> {
                vj.get(key)
                    .and_then(Json::as_array)
                    .ok_or_else(|| vpath(key))?
                    .iter()
                    .map(|x| x.as_u32().ok_or_else(|| vpath(key)))
                    .collect()
            };
            vendors.push(Vendor {
                id: VendorId(id),
                name: vj
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| vpath("name"))?
                    .to_owned(),
                policy_url: vj
                    .get("policyUrl")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                purpose_ids: ids_of("purposeIds")?
                    .into_iter()
                    .map(|p| PurposeId(p as u8))
                    .collect(),
                leg_int_purpose_ids: ids_of("legIntPurposeIds")?
                    .into_iter()
                    .map(|p| PurposeId(p as u8))
                    .collect(),
                feature_ids: ids_of("featureIds")?
                    .into_iter()
                    .map(|f| FeatureId(f as u8))
                    .collect(),
            });
        }
        vendors.sort_by_key(|v| v.id);
        Ok(VendorList {
            vendor_list_version,
            last_updated,
            vendors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VendorList {
        VendorList {
            vendor_list_version: 215,
            last_updated: Day::from_ymd(2020, 5, 14),
            vendors: vec![
                Vendor {
                    id: VendorId(1),
                    name: "Exponential Interactive, Inc".into(),
                    policy_url: "https://vdx.tv/privacy/".into(),
                    purpose_ids: [PurposeId(1), PurposeId(2), PurposeId(3)].into(),
                    leg_int_purpose_ids: [PurposeId(5)].into(),
                    feature_ids: [FeatureId(2)].into(),
                },
                Vendor {
                    id: VendorId(8),
                    name: "Emerse Sverige AB".into(),
                    policy_url: "https://www.emerse.com/privacy-policy/".into(),
                    purpose_ids: [PurposeId(1), PurposeId(2)].into(),
                    leg_int_purpose_ids: [PurposeId(3), PurposeId(5)].into(),
                    feature_ids: [FeatureId(1), FeatureId(2)].into(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip() {
        let gvl = sample();
        let text = gvl.to_json().to_pretty();
        let parsed = VendorList::from_json_text(&text).unwrap();
        assert_eq!(parsed, gvl);
    }

    #[test]
    fn wire_format_fields_present() {
        let text = sample().to_json().to_compact();
        for key in [
            "\"vendorListVersion\":215",
            "\"purposeIds\"",
            "\"legIntPurposeIds\"",
            "\"featureIds\"",
            "\"policyUrl\"",
            "\"lastUpdated\":\"2020-05-14T00:00:00Z\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        // The standard purposes/features are embedded in every version.
        assert!(text.contains("Information storage and access"));
        assert!(text.contains("Device linking"));
    }

    #[test]
    fn lookups() {
        let gvl = sample();
        assert_eq!(gvl.len(), 2);
        assert!(!gvl.is_empty());
        assert_eq!(gvl.max_vendor_id(), 8);
        assert_eq!(gvl.vendor(VendorId(8)).unwrap().name, "Emerse Sverige AB");
        assert_eq!(gvl.vendor(VendorId(2)), None);
        assert!(gvl.vendor(VendorId(1)).unwrap().uses_purpose(PurposeId(5)));
        assert!(!gvl.vendor(VendorId(1)).unwrap().uses_purpose(PurposeId(4)));
    }

    #[test]
    fn purpose_counts() {
        let gvl = sample();
        assert_eq!(gvl.consent_count(PurposeId(1)), 2);
        assert_eq!(gvl.consent_count(PurposeId(3)), 1);
        assert_eq!(gvl.leg_int_count(PurposeId(5)), 2);
        assert_eq!(gvl.leg_int_count(PurposeId(1)), 0);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            VendorList::from_json_text("not json"),
            Err(GvlError::Json(_))
        ));
        assert!(matches!(
            VendorList::from_json_text("{}"),
            Err(GvlError::Field { .. })
        ));
        let dup = r#"{"vendorListVersion":1,"lastUpdated":"2020-01-01T00:00:00Z",
            "vendors":[
              {"id":1,"name":"a","purposeIds":[],"legIntPurposeIds":[],"featureIds":[]},
              {"id":1,"name":"b","purposeIds":[],"legIntPurposeIds":[],"featureIds":[]}
            ]}"#;
        assert_eq!(
            VendorList::from_json_text(dup),
            Err(GvlError::DuplicateVendor(1))
        );
        let bad_purpose = r#"{"vendorListVersion":1,"lastUpdated":"2020-01-01",
            "vendors":[{"id":1,"name":"a","purposeIds":["x"],"legIntPurposeIds":[],"featureIds":[]}]}"#;
        assert!(matches!(
            VendorList::from_json_text(bad_purpose),
            Err(GvlError::Field { .. })
        ));
    }

    #[test]
    fn vendors_sorted_after_parse() {
        let unsorted = r#"{"vendorListVersion":1,"lastUpdated":"2020-01-01T00:00:00Z",
            "vendors":[
              {"id":9,"name":"nine","purposeIds":[1],"legIntPurposeIds":[],"featureIds":[]},
              {"id":2,"name":"two","purposeIds":[1],"legIntPurposeIds":[],"featureIds":[]}
            ]}"#;
        let gvl = VendorList::from_json_text(unsorted).unwrap();
        assert_eq!(gvl.vendors[0].id, VendorId(2));
        assert_eq!(gvl.vendors[1].id, VendorId(9));
        assert_eq!(gvl.max_vendor_id(), 9);
    }
}
