//! Longitudinal GVL diff engine (paper §3.2, "Ad-Tech Vendor Behavior").
//!
//! "We measure every instance when an Ad-tech vendor joins or leaves the
//! GVL, claims a new purpose falls under legitimate interest, begins
//! requesting consent for a new purpose, stops claiming either, or changes
//! from collecting consent to claiming legitimate interest or the other
//! way round." This module computes exactly those events between
//! consecutive versions and aggregates them into the Figure 7 and
//! Figure 8 series.

use crate::gvl::{VendorId, VendorList};
use crate::purposes::PurposeId;
use consent_util::Day;
use std::collections::BTreeMap;

/// Lawful basis a vendor declares for a purpose, or none.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Basis {
    /// Purpose not claimed at all.
    None,
    /// Consent requested (GDPR Art. 6.1a).
    Consent,
    /// Legitimate interest claimed (Art. 6.1b–f).
    LegitimateInterest,
}

/// One change event between two consecutive GVL versions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChangeEvent {
    /// Vendor appears for the first time (or re-appears).
    VendorJoined {
        /// The joining vendor.
        vendor: VendorId,
        /// Publication date of the version where it first appears.
        date: Day,
    },
    /// Vendor disappears from the list.
    VendorLeft {
        /// The leaving vendor.
        vendor: VendorId,
        /// Publication date of the version where it is gone.
        date: Day,
    },
    /// An *existing* vendor changed the basis for one purpose.
    BasisChanged {
        /// The vendor making the change.
        vendor: VendorId,
        /// The affected purpose.
        purpose: PurposeId,
        /// Basis before the change.
        from: Basis,
        /// Basis after the change.
        to: Basis,
        /// Publication date of the changing version.
        date: Day,
    },
}

impl ChangeEvent {
    /// The date the enclosing version was published.
    pub fn date(&self) -> Day {
        match self {
            ChangeEvent::VendorJoined { date, .. }
            | ChangeEvent::VendorLeft { date, .. }
            | ChangeEvent::BasisChanged { date, .. } => *date,
        }
    }
}

/// Basis declared by `list`'s vendor `v` for `p`.
pub fn basis_of(list: &VendorList, v: VendorId, p: PurposeId) -> Basis {
    match list.vendor(v) {
        None => Basis::None,
        Some(vendor) => {
            if vendor.purpose_ids.contains(&p) {
                Basis::Consent
            } else if vendor.leg_int_purpose_ids.contains(&p) {
                Basis::LegitimateInterest
            } else {
                Basis::None
            }
        }
    }
}

/// Diff two consecutive versions into change events, dated by the newer
/// version's publication date.
pub fn diff_versions(old: &VendorList, new: &VendorList) -> Vec<ChangeEvent> {
    let date = new.last_updated;
    let mut events = Vec::new();
    // Joins and basis changes.
    for vendor in &new.vendors {
        match old.vendor(vendor.id) {
            None => events.push(ChangeEvent::VendorJoined {
                vendor: vendor.id,
                date,
            }),
            Some(_) => {
                for p in crate::purposes::all_purpose_ids() {
                    let from = basis_of(old, vendor.id, p);
                    let to = basis_of(new, vendor.id, p);
                    if from != to {
                        events.push(ChangeEvent::BasisChanged {
                            vendor: vendor.id,
                            purpose: p,
                            from,
                            to,
                            date,
                        });
                    }
                }
            }
        }
    }
    // Leaves.
    for vendor in &old.vendors {
        if new.vendor(vendor.id).is_none() {
            events.push(ChangeEvent::VendorLeft {
                vendor: vendor.id,
                date,
            });
        }
    }
    events
}

/// Diff an entire version history (pairwise over consecutive versions).
pub fn diff_history(history: &[VendorList]) -> Vec<ChangeEvent> {
    history
        .windows(2)
        .flat_map(|w| diff_versions(&w[0], &w[1]))
        .collect()
}

/// One point of the Figure 7 series: vendor totals and per-purpose claims
/// for a single GVL version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig7Point {
    /// Publication date.
    pub date: Day,
    /// GVL version number.
    pub version: u16,
    /// Total vendors.
    pub vendors: usize,
    /// Per purpose id (1..=5): vendors requesting consent.
    pub consent: [usize; 5],
    /// Per purpose id (1..=5): vendors claiming legitimate interest.
    pub leg_int: [usize; 5],
}

/// Compute the Figure 7 series for a history.
pub fn fig7_series(history: &[VendorList]) -> Vec<Fig7Point> {
    history
        .iter()
        .map(|v| {
            let mut consent = [0usize; 5];
            let mut leg_int = [0usize; 5];
            for (i, slot) in consent.iter_mut().enumerate() {
                *slot = v.consent_count(PurposeId(i as u8 + 1));
            }
            for (i, slot) in leg_int.iter_mut().enumerate() {
                *slot = v.leg_int_count(PurposeId(i as u8 + 1));
            }
            Fig7Point {
                date: v.last_updated,
                version: v.vendor_list_version,
                vendors: v.len(),
                consent,
                leg_int,
            }
        })
        .collect()
}

/// One month of the Figure 8 series: lawful-basis transitions among
/// existing vendors, bucketed by calendar month.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fig8Month {
    /// First day of the month.
    pub month: Day,
    /// Legitimate interest → consent ("obtaining more consent").
    pub li_to_consent: usize,
    /// Consent → legitimate interest.
    pub consent_to_li: usize,
    /// New purpose claimed under consent (None → Consent).
    pub new_consent: usize,
    /// New purpose claimed under legitimate interest (None → LI).
    pub new_leg_int: usize,
    /// Purpose dropped entirely (either basis → None).
    pub dropped: usize,
}

impl Fig8Month {
    /// Net movement toward consent this month (can be negative).
    pub fn net_toward_consent(&self) -> i64 {
        self.li_to_consent as i64 - self.consent_to_li as i64
    }

    /// Total transition events this month.
    pub fn total(&self) -> usize {
        self.li_to_consent + self.consent_to_li + self.new_consent + self.new_leg_int + self.dropped
    }
}

/// Aggregate change events into monthly Figure 8 buckets.
pub fn fig8_series(events: &[ChangeEvent]) -> Vec<Fig8Month> {
    let mut months: BTreeMap<Day, Fig8Month> = BTreeMap::new();
    for e in events {
        if let ChangeEvent::BasisChanged { from, to, date, .. } = e {
            let key = date.first_of_month();
            let m = months.entry(key).or_insert_with(|| Fig8Month {
                month: key,
                ..Fig8Month::default()
            });
            match (from, to) {
                (Basis::LegitimateInterest, Basis::Consent) => m.li_to_consent += 1,
                (Basis::Consent, Basis::LegitimateInterest) => m.consent_to_li += 1,
                (Basis::None, Basis::Consent) => m.new_consent += 1,
                (Basis::None, Basis::LegitimateInterest) => m.new_leg_int += 1,
                (_, Basis::None) => m.dropped += 1,
                _ => unreachable!("diff only emits actual changes"),
            }
        }
    }
    months.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gvl::Vendor;
    use std::collections::BTreeSet;

    fn vendor(id: u16, consent: &[u8], li: &[u8]) -> Vendor {
        Vendor {
            id: VendorId(id),
            name: format!("v{id}"),
            policy_url: String::new(),
            purpose_ids: consent.iter().map(|&p| PurposeId(p)).collect(),
            leg_int_purpose_ids: li.iter().map(|&p| PurposeId(p)).collect(),
            feature_ids: BTreeSet::new(),
        }
    }

    fn list(version: u16, day: Day, vendors: Vec<Vendor>) -> VendorList {
        VendorList {
            vendor_list_version: version,
            last_updated: day,
            vendors,
        }
    }

    #[test]
    fn basis_lookup() {
        let l = list(1, Day::from_ymd(2018, 5, 1), vec![vendor(1, &[1, 2], &[3])]);
        assert_eq!(basis_of(&l, VendorId(1), PurposeId(1)), Basis::Consent);
        assert_eq!(
            basis_of(&l, VendorId(1), PurposeId(3)),
            Basis::LegitimateInterest
        );
        assert_eq!(basis_of(&l, VendorId(1), PurposeId(4)), Basis::None);
        assert_eq!(basis_of(&l, VendorId(9), PurposeId(1)), Basis::None);
    }

    #[test]
    fn detects_joins_and_leaves() {
        let d1 = Day::from_ymd(2018, 5, 1);
        let d2 = Day::from_ymd(2018, 5, 8);
        let old = list(1, d1, vec![vendor(1, &[1], &[]), vendor(2, &[1], &[])]);
        let new = list(2, d2, vec![vendor(1, &[1], &[]), vendor(3, &[1], &[])]);
        let events = diff_versions(&old, &new);
        assert!(events.contains(&ChangeEvent::VendorJoined {
            vendor: VendorId(3),
            date: d2
        }));
        assert!(events.contains(&ChangeEvent::VendorLeft {
            vendor: VendorId(2),
            date: d2
        }));
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].date(), d2);
    }

    #[test]
    fn detects_basis_changes() {
        let d1 = Day::from_ymd(2018, 5, 1);
        let d2 = Day::from_ymd(2018, 5, 8);
        // Vendor 1: purpose 3 LI -> consent; purpose 2 consent -> dropped;
        // purpose 5 newly claimed as LI.
        let old = list(1, d1, vec![vendor(1, &[1, 2], &[3])]);
        let new = list(2, d2, vec![vendor(1, &[1, 3], &[5])]);
        let events = diff_versions(&old, &new);
        assert!(events.contains(&ChangeEvent::BasisChanged {
            vendor: VendorId(1),
            purpose: PurposeId(3),
            from: Basis::LegitimateInterest,
            to: Basis::Consent,
            date: d2
        }));
        assert!(events.contains(&ChangeEvent::BasisChanged {
            vendor: VendorId(1),
            purpose: PurposeId(2),
            from: Basis::Consent,
            to: Basis::None,
            date: d2
        }));
        assert!(events.contains(&ChangeEvent::BasisChanged {
            vendor: VendorId(1),
            purpose: PurposeId(5),
            from: Basis::None,
            to: Basis::LegitimateInterest,
            date: d2
        }));
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn identical_versions_no_events() {
        let d = Day::from_ymd(2019, 1, 1);
        let l = list(5, d, vec![vendor(1, &[1], &[2])]);
        assert!(diff_versions(&l, &l).is_empty());
    }

    #[test]
    fn fig7_counts() {
        let d = Day::from_ymd(2019, 1, 1);
        let l = list(
            3,
            d,
            vec![vendor(1, &[1, 2], &[3]), vendor(2, &[1], &[3, 5])],
        );
        let series = fig7_series(&[l]);
        assert_eq!(series.len(), 1);
        let p = &series[0];
        assert_eq!(p.vendors, 2);
        assert_eq!(p.version, 3);
        assert_eq!(p.consent, [2, 1, 0, 0, 0]);
        assert_eq!(p.leg_int, [0, 0, 2, 0, 1]);
    }

    #[test]
    fn fig8_monthly_buckets() {
        let may = Day::from_ymd(2018, 5, 20);
        let june = Day::from_ymd(2018, 6, 3);
        let events = vec![
            ChangeEvent::BasisChanged {
                vendor: VendorId(1),
                purpose: PurposeId(1),
                from: Basis::LegitimateInterest,
                to: Basis::Consent,
                date: may,
            },
            ChangeEvent::BasisChanged {
                vendor: VendorId(2),
                purpose: PurposeId(2),
                from: Basis::Consent,
                to: Basis::LegitimateInterest,
                date: may + 2,
            },
            ChangeEvent::BasisChanged {
                vendor: VendorId(3),
                purpose: PurposeId(1),
                from: Basis::LegitimateInterest,
                to: Basis::Consent,
                date: june,
            },
            ChangeEvent::VendorJoined {
                vendor: VendorId(9),
                date: june,
            },
        ];
        let months = fig8_series(&events);
        assert_eq!(months.len(), 2);
        assert_eq!(months[0].month, Day::from_ymd(2018, 5, 1));
        assert_eq!(months[0].li_to_consent, 1);
        assert_eq!(months[0].consent_to_li, 1);
        assert_eq!(months[0].net_toward_consent(), 0);
        assert_eq!(months[0].total(), 2);
        assert_eq!(months[1].li_to_consent, 1);
        assert_eq!(months[1].net_toward_consent(), 1);
    }

    #[test]
    fn generated_history_shifts_toward_consent() {
        // End-to-end against the generator: the paper's headline Figure 8
        // finding is a *net* LI → consent shift.
        let history = crate::gvl_history::generate_history(
            &crate::gvl_history::HistoryConfig::default(),
            consent_util::SeedTree::new(7),
        );
        let events = diff_history(&history);
        let months = fig8_series(&events);
        let net: i64 = months.iter().map(|m| m.net_toward_consent()).sum();
        assert!(net > 0, "expected net shift toward consent, got {net}");
        // Burst months (GDPR; Mar/Apr 2020) should dominate activity.
        let by_month: BTreeMap<Day, usize> = months.iter().map(|m| (m.month, m.total())).collect();
        let may18 = by_month
            .get(&Day::from_ymd(2018, 5, 1))
            .copied()
            .unwrap_or(0)
            + by_month
                .get(&Day::from_ymd(2018, 6, 1))
                .copied()
                .unwrap_or(0);
        let quiet = by_month
            .get(&Day::from_ymd(2019, 9, 1))
            .copied()
            .unwrap_or(0);
        assert!(
            may18 > quiet,
            "GDPR burst ({may18}) not above quiet month ({quiet})"
        );
    }
}
