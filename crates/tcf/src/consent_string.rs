//! TCF v1.1 consent-string codec.
//!
//! The `__cmp()` API the paper instruments (§3.2, footnote 4) exchanges
//! consent as a bit-packed, base64url string defined by the IAB
//! "Consent string and vendor list format v1.1". This module implements
//! the format bit-exactly: the 78-bit core, the purposes bitfield, and
//! both vendor encodings (bitfield and range) with automatic selection of
//! the smaller one — the same size trade-off real CMPs implement.

use crate::bits::{base64url_decode, base64url_encode, BitReader, BitWriter};
use crate::purposes::PurposeId;
use std::collections::BTreeSet;
use std::fmt;

/// Maximum number of purposes in the v1 bitfield.
pub const NUM_PURPOSE_BITS: u8 = 24;

/// A decoded TCF v1.1 consent string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConsentString {
    /// Format version; always 1 for this codec.
    pub version: u8,
    /// Creation time in *deciseconds* since the Unix epoch (the spec's
    /// curious unit).
    pub created_ds: u64,
    /// Last update, deciseconds since epoch.
    pub last_updated_ds: u64,
    /// IAB-assigned CMP id.
    pub cmp_id: u16,
    /// CMP-internal version.
    pub cmp_version: u16,
    /// Screen of the CMP UI where consent was given.
    pub consent_screen: u8,
    /// Two-letter lowercase-insensitive language code, stored uppercase.
    pub consent_language: [char; 2],
    /// Version of the Global Vendor List the consent refers to.
    pub vendor_list_version: u16,
    /// Purposes the user consented to (ids 1..=24).
    pub purposes_allowed: BTreeSet<u8>,
    /// Highest vendor id covered by this string.
    pub max_vendor_id: u16,
    /// Vendors the user consented to (subset of `1..=max_vendor_id`).
    pub vendor_consents: BTreeSet<u16>,
}

/// Vendor-section encoding selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VendorEncoding {
    /// One bit per vendor id.
    BitField,
    /// Default value + ranges of exceptions.
    Range,
    /// Whichever of the two serializes smaller (ties go to BitField).
    Auto,
}

/// Decode error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Invalid base64url input.
    Base64(String),
    /// The bitstream ended before a field could be read.
    Truncated {
        /// Bit offset of the failed read.
        at_bit: usize,
    },
    /// The version field is not 1.
    UnsupportedVersion(u8),
    /// A range entry is inverted or exceeds `max_vendor_id`.
    InvalidRange {
        /// First vendor id of the entry.
        start: u16,
        /// Last vendor id of the entry.
        end: u16,
        /// The string's `max_vendor_id`.
        max: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Base64(m) => write!(f, "base64: {m}"),
            DecodeError::Truncated { at_bit } => write!(f, "truncated at bit {at_bit}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::InvalidRange { start, end, max } => {
                write!(f, "invalid vendor range {start}-{end} (max {max})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl ConsentString {
    /// A fresh consent string with no consents, for the given CMP and GVL.
    pub fn new(cmp_id: u16, vendor_list_version: u16, max_vendor_id: u16) -> ConsentString {
        ConsentString {
            version: 1,
            created_ds: 0,
            last_updated_ds: 0,
            cmp_id,
            cmp_version: 1,
            consent_screen: 1,
            consent_language: ['E', 'N'],
            vendor_list_version,
            purposes_allowed: BTreeSet::new(),
            max_vendor_id,
            vendor_consents: BTreeSet::new(),
        }
    }

    /// Grant all purposes (1..=5 standard) and all vendors up to
    /// `max_vendor_id` — what a 1-click "I accept" produces.
    pub fn accept_all(mut self, purposes: impl IntoIterator<Item = PurposeId>) -> ConsentString {
        self.purposes_allowed = purposes.into_iter().map(|p| p.0).collect();
        self.vendor_consents = (1..=self.max_vendor_id).collect();
        self
    }

    /// Remove all consents — what "Reject all" produces.
    pub fn reject_all(mut self) -> ConsentString {
        self.purposes_allowed.clear();
        self.vendor_consents.clear();
        self
    }

    /// True if the user consented to `purpose`.
    pub fn purpose_allowed(&self, purpose: PurposeId) -> bool {
        self.purposes_allowed.contains(&purpose.0)
    }

    /// True if the user consented to vendor `id`.
    pub fn vendor_allowed(&self, id: u16) -> bool {
        self.vendor_consents.contains(&id)
    }

    /// Number of consented vendors.
    pub fn consent_count(&self) -> usize {
        self.vendor_consents.len()
    }

    /// Serialize to the base64url wire format.
    pub fn encode(&self, encoding: VendorEncoding) -> String {
        let use_range = match encoding {
            VendorEncoding::BitField => false,
            VendorEncoding::Range => true,
            VendorEncoding::Auto => self.range_section_bits() < usize::from(self.max_vendor_id),
        };
        let mut w = BitWriter::new();
        w.write(u64::from(self.version), 6);
        w.write(self.created_ds, 36);
        w.write(self.last_updated_ds, 36);
        w.write(u64::from(self.cmp_id), 12);
        w.write(u64::from(self.cmp_version), 12);
        w.write(u64::from(self.consent_screen), 6);
        w.write_letter(self.consent_language[0]);
        w.write_letter(self.consent_language[1]);
        w.write(u64::from(self.vendor_list_version), 12);
        for p in 1..=NUM_PURPOSE_BITS {
            w.write_bit(self.purposes_allowed.contains(&p));
        }
        w.write(u64::from(self.max_vendor_id), 16);
        if use_range {
            w.write_bit(true); // EncodingType = Range
            let (default_consent, ranges) = self.exception_ranges();
            w.write_bit(default_consent);
            w.write(ranges.len() as u64, 12);
            for &(start, end) in &ranges {
                if start == end {
                    w.write_bit(false); // single
                    w.write(u64::from(start), 16);
                } else {
                    w.write_bit(true); // range
                    w.write(u64::from(start), 16);
                    w.write(u64::from(end), 16);
                }
            }
        } else {
            w.write_bit(false); // EncodingType = BitField
            for id in 1..=self.max_vendor_id {
                w.write_bit(self.vendor_consents.contains(&id));
            }
        }
        base64url_encode(&w.into_bytes())
    }

    /// Parse a consent string from its base64url wire format.
    pub fn decode(s: &str) -> Result<ConsentString, DecodeError> {
        let bytes = base64url_decode(s).map_err(|e| DecodeError::Base64(e.to_string()))?;
        let mut r = BitReader::new(&bytes);
        let rd = |r: &mut BitReader<'_>, w: u8| {
            r.read(w)
                .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })
        };
        let version = rd(&mut r, 6)? as u8;
        if version != 1 {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let created_ds = rd(&mut r, 36)?;
        let last_updated_ds = rd(&mut r, 36)?;
        let cmp_id = rd(&mut r, 12)? as u16;
        let cmp_version = rd(&mut r, 12)? as u16;
        let consent_screen = rd(&mut r, 6)? as u8;
        let l0 = r
            .read_letter()
            .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })?;
        let l1 = r
            .read_letter()
            .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })?;
        let vendor_list_version = rd(&mut r, 12)? as u16;
        let mut purposes_allowed = BTreeSet::new();
        for p in 1..=NUM_PURPOSE_BITS {
            if rd(&mut r, 1)? == 1 {
                purposes_allowed.insert(p);
            }
        }
        let max_vendor_id = rd(&mut r, 16)? as u16;
        let is_range = rd(&mut r, 1)? == 1;
        let mut vendor_consents = BTreeSet::new();
        if is_range {
            let default_consent = rd(&mut r, 1)? == 1;
            let num_entries = rd(&mut r, 12)? as usize;
            let mut exceptions = BTreeSet::new();
            for _ in 0..num_entries {
                let entry_is_range = rd(&mut r, 1)? == 1;
                let start = rd(&mut r, 16)? as u16;
                let end = if entry_is_range {
                    rd(&mut r, 16)? as u16
                } else {
                    start
                };
                if start == 0 || start > end || end > max_vendor_id {
                    return Err(DecodeError::InvalidRange {
                        start,
                        end,
                        max: max_vendor_id,
                    });
                }
                exceptions.extend(start..=end);
            }
            if default_consent {
                // Default yes; exceptions are the refusals.
                vendor_consents = (1..=max_vendor_id)
                    .filter(|id| !exceptions.contains(id))
                    .collect();
            } else {
                vendor_consents = exceptions;
            }
        } else {
            for id in 1..=max_vendor_id {
                if rd(&mut r, 1)? == 1 {
                    vendor_consents.insert(id);
                }
            }
        }
        Ok(ConsentString {
            version,
            created_ds,
            last_updated_ds,
            cmp_id,
            cmp_version,
            consent_screen,
            consent_language: [l0, l1],
            vendor_list_version,
            purposes_allowed,
            max_vendor_id,
            vendor_consents,
        })
    }

    /// Contiguous runs of the *minority* value, plus the default bit.
    /// Choosing the default as the majority value minimizes entries.
    fn exception_ranges(&self) -> (bool, Vec<(u16, u16)>) {
        let consented = self.vendor_consents.len();
        let total = usize::from(self.max_vendor_id);
        let default_consent = consented * 2 > total;
        let mut ranges = Vec::new();
        let mut run: Option<(u16, u16)> = None;
        for id in 1..=self.max_vendor_id {
            let is_exception = self.vendor_consents.contains(&id) != default_consent;
            match (&mut run, is_exception) {
                (Some((_, end)), true) if *end + 1 == id => *end = id,
                (r @ Some(_), true) => {
                    ranges.push(r.take().expect("checked Some"));
                    *r = Some((id, id));
                }
                (r @ Some(_), false) => ranges.push(r.take().expect("checked Some")),
                (r @ None, true) => *r = Some((id, id)),
                (None, false) => {}
            }
        }
        if let Some(r) = run {
            ranges.push(r);
        }
        (default_consent, ranges)
    }

    /// Bits the range section would occupy (for Auto selection).
    fn range_section_bits(&self) -> usize {
        let (_, ranges) = self.exception_ranges();
        // default(1) + numEntries(12) + per-entry 17 or 33 bits.
        13 + ranges
            .iter()
            .map(|&(s, e)| if s == e { 17 } else { 33 })
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> ConsentString {
        let mut c = ConsentString::new(10, 215, 600);
        c.created_ds = 15_893_000_000; // ~May 2020 in deciseconds
        c.last_updated_ds = 15_893_000_420;
        c.consent_screen = 2;
        c.consent_language = ['D', 'E'];
        c.purposes_allowed = [1, 2, 3, 5].into_iter().collect();
        c.vendor_consents = [1, 2, 3, 10, 11, 12, 599].into_iter().collect();
        c
    }

    #[test]
    fn roundtrip_bitfield() {
        let c = sample();
        let s = c.encode(VendorEncoding::BitField);
        let d = ConsentString::decode(&s).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn roundtrip_range() {
        let c = sample();
        let s = c.encode(VendorEncoding::Range);
        let d = ConsentString::decode(&s).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn auto_picks_smaller() {
        // Sparse consents => range much smaller.
        let sparse = sample();
        let auto = sparse.encode(VendorEncoding::Auto);
        let bf = sparse.encode(VendorEncoding::BitField);
        let rg = sparse.encode(VendorEncoding::Range);
        assert_eq!(auto, rg);
        assert!(rg.len() < bf.len());

        // Alternating consents => bitfield smaller.
        let mut dense = ConsentString::new(1, 1, 200);
        dense.vendor_consents = (1..=200).filter(|i| i % 2 == 0).collect();
        let auto = dense.encode(VendorEncoding::Auto);
        assert_eq!(auto, dense.encode(VendorEncoding::BitField));
    }

    #[test]
    fn accept_and_reject_all() {
        let c = ConsentString::new(10, 100, 50).accept_all(crate::purposes::all_purpose_ids());
        assert_eq!(c.consent_count(), 50);
        assert!(c.purpose_allowed(PurposeId(1)));
        assert!(c.vendor_allowed(50));
        assert!(!c.vendor_allowed(51));
        let r = c.reject_all();
        assert_eq!(r.consent_count(), 0);
        assert!(!r.purpose_allowed(PurposeId(1)));
        // Accept-all round-trips through the (tiny) range encoding.
        let c2 = ConsentString::new(10, 100, 50).accept_all(crate::purposes::all_purpose_ids());
        let enc = c2.encode(VendorEncoding::Auto);
        assert_eq!(ConsentString::decode(&enc).unwrap(), c2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            ConsentString::decode("!!!"),
            Err(DecodeError::Base64(_))
        ));
        assert!(matches!(
            ConsentString::decode("BA"),
            Err(DecodeError::Truncated { .. })
        ));
        // Version 2 string (starts with 'C' in base64 = 000010...).
        let mut w = BitWriter::new();
        w.write(2, 6);
        w.write(0, 60);
        let s = base64url_encode(&w.into_bytes());
        assert!(matches!(
            ConsentString::decode(&s),
            Err(DecodeError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn invalid_range_detected() {
        // Build a range string with start > end manually.
        let mut w = BitWriter::new();
        w.write(1, 6); // version
        w.write(0, 36);
        w.write(0, 36);
        w.write(0, 12);
        w.write(0, 12);
        w.write(0, 6);
        w.write_letter('E');
        w.write_letter('N');
        w.write(1, 12);
        w.write(0, 24); // purposes
        w.write(100, 16); // maxVendorId
        w.write_bit(true); // range encoding
        w.write_bit(false); // default consent
        w.write(1, 12); // one entry
        w.write_bit(true); // is range
        w.write(50, 16); // start
        w.write(20, 16); // end < start
        let s = base64url_encode(&w.into_bytes());
        assert_eq!(
            ConsentString::decode(&s),
            Err(DecodeError::InvalidRange {
                start: 50,
                end: 20,
                max: 100
            })
        );
    }

    #[test]
    fn error_display() {
        let e = DecodeError::InvalidRange {
            start: 5,
            end: 2,
            max: 10,
        };
        assert!(e.to_string().contains("5-2"));
        assert!(DecodeError::UnsupportedVersion(3).to_string().contains('3'));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_any_consents(
            max in 1u16..700,
            vendor_bits in proptest::collection::vec(any::<bool>(), 0..700),
            purposes in proptest::collection::btree_set(1u8..=24, 0..10),
            enc_range in any::<bool>(),
        ) {
            let mut c = ConsentString::new(7, 215, max);
            c.purposes_allowed = purposes;
            c.vendor_consents = vendor_bits
                .iter()
                .enumerate()
                .filter(|&(i, &b)| b && (i as u16) < max)
                .map(|(i, _)| i as u16 + 1)
                .collect();
            let enc = if enc_range { VendorEncoding::Range } else { VendorEncoding::BitField };
            let s = c.encode(enc);
            prop_assert_eq!(ConsentString::decode(&s).unwrap(), c.clone());
            // Auto must agree with one of the two and round-trip too.
            let s_auto = c.encode(VendorEncoding::Auto);
            prop_assert_eq!(ConsentString::decode(&s_auto).unwrap(), c);
        }
    }
}
