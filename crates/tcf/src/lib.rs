//! # consent-tcf
//!
//! The IAB Transparency & Consent Framework (TCF v1.1) substrate:
//!
//! * [`consent_string`] — bit-exact codec for the base64url consent
//!   string, with both bitfield and range vendor encodings.
//! * [`consent_string_v2`] — the TCF v2 TC-string core segment, which
//!   went live inside the paper's observation window.
//! * [`gvl`] — Global Vendor List data model and `vendor-list.json`
//!   wire-format codec.
//! * [`gvl_history`] — generator replaying the GVL's 2018–2020 dynamics
//!   (growth spike at GDPR, legitimate-interest shares, basis switches).
//! * [`gvl_diff`] — the longitudinal diff engine behind Figures 7 and 8.
//! * [`purposes`] — the standard purposes and features (Table A.1).
//! * [`cmp_api`] — the in-page `__cmp()` API surface the paper probes.
//! * [`bits`] — MSB-first bitstreams and base64url.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod cmp_api;
pub mod consent_string;
pub mod consent_string_v2;
pub mod gvl;
pub mod gvl_diff;
pub mod gvl_history;
pub mod purposes;

pub use cmp_api::{CmpApi, CmpState};
pub use consent_string::{ConsentString, DecodeError, VendorEncoding};
pub use consent_string_v2::{upgrade_from_v1, RestrictionType, TcStringV2};
pub use gvl::{GvlError, Vendor, VendorId, VendorList};
pub use gvl_diff::{diff_history, fig7_series, fig8_series, Basis, ChangeEvent};
pub use gvl_history::{generate_history, HistoryConfig};
pub use purposes::{FeatureId, PurposeId, FEATURES, PURPOSES};
