//! MSB-first bitstream reader/writer and web-safe base64.
//!
//! The IAB TCF consent string is a bit-packed structure serialized as
//! base64url without padding. Fields are written most-significant-bit
//! first, which is what this module implements on top of [`bytes`]
//! buffers.

use bytes::{BufMut, BytesMut};
use std::fmt;

/// Append-only MSB-first bit writer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    buf: BytesMut,
    /// Bits already used in the final partial byte (0..8).
    partial_bits: u8,
}

impl BitWriter {
    /// Create an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Total number of bits written.
    pub fn len_bits(&self) -> usize {
        if self.partial_bits == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.partial_bits as usize
        }
    }

    /// Write the low `width` bits of `value`, MSB first. Panics if
    /// `width > 64` or if `value` does not fit in `width` bits.
    pub fn write(&mut self, value: u64, width: u8) {
        assert!(width <= 64, "width > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1 == 1;
            self.write_bit(bit);
        }
    }

    /// Write a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.partial_bits == 0 {
            self.buf.put_u8(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.partial_bits);
        }
        self.partial_bits = (self.partial_bits + 1) % 8;
    }

    /// Write a 6-bit uppercase letter ('A' = 0 … 'Z' = 25), used for the
    /// two-letter consent-language field. Panics on non-ASCII-uppercase.
    pub fn write_letter(&mut self, c: char) {
        assert!(c.is_ascii_uppercase(), "expected A-Z, got {c:?}");
        self.write((c as u8 - b'A') as u64, 6);
    }

    /// Finish, zero-padding the final byte.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos_bits: usize,
}

/// Error when the bitstream is shorter than a read requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfBits {
    /// Bit offset of the failed read.
    pub at_bit: usize,
    /// Width requested.
    pub wanted: u8,
}

impl fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bitstream exhausted: wanted {} bits at offset {}",
            self.wanted, self.at_bit
        )
    }
}

impl std::error::Error for OutOfBits {}

impl<'a> BitReader<'a> {
    /// Create a reader at bit offset 0.
    pub fn new(data: &'a [u8]) -> BitReader<'a> {
        BitReader { data, pos_bits: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() * 8 - self.pos_bits
    }

    /// Current bit offset.
    pub fn position(&self) -> usize {
        self.pos_bits
    }

    /// Read `width` bits MSB-first into the low bits of a `u64`.
    pub fn read(&mut self, width: u8) -> Result<u64, OutOfBits> {
        assert!(width <= 64);
        if self.remaining() < width as usize {
            return Err(OutOfBits {
                at_bit: self.pos_bits,
                wanted: width,
            });
        }
        let mut out = 0u64;
        for _ in 0..width {
            let byte = self.data[self.pos_bits / 8];
            let bit = (byte >> (7 - (self.pos_bits % 8))) & 1;
            out = (out << 1) | u64::from(bit);
            self.pos_bits += 1;
        }
        Ok(out)
    }

    /// Read a single bit.
    pub fn read_bit(&mut self) -> Result<bool, OutOfBits> {
        Ok(self.read(1)? == 1)
    }

    /// Read a 6-bit letter as written by [`BitWriter::write_letter`].
    pub fn read_letter(&mut self) -> Result<char, OutOfBits> {
        let v = self.read(6)?;
        Ok((b'A' + (v as u8 % 26)) as char)
    }
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encode bytes as base64url without padding (the TCF wire format).
pub fn base64url_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        if chunk.len() > 1 {
            out.push(B64_ALPHABET[(triple >> 6) as usize & 0x3F] as char);
        }
        if chunk.len() > 2 {
            out.push(B64_ALPHABET[triple as usize & 0x3F] as char);
        }
    }
    out
}

/// Error decoding base64url.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Base64Error {
    /// Offending character position, or input length for length errors.
    pub position: usize,
    /// Description.
    pub message: &'static str,
}

impl fmt::Display for Base64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "base64url error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Base64Error {}

/// Decode base64url without padding. Also accepts standard-alphabet
/// (`+`, `/`) input, since some CMP implementations emit it.
pub fn base64url_decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    if s.len() % 4 == 1 {
        return Err(Base64Error {
            position: s.len(),
            message: "invalid length (mod 4 == 1)",
        });
    }
    let mut out = Vec::with_capacity(s.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut acc_bits = 0u8;
    for (i, c) in s.bytes().enumerate() {
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'-' | b'+' => 62,
            b'_' | b'/' => 63,
            b'=' => continue, // tolerate padded input
            _ => {
                return Err(Base64Error {
                    position: i,
                    message: "invalid character",
                })
            }
        };
        acc = (acc << 6) | u32::from(v);
        acc_bits += 6;
        if acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0xFFFF, 16);
        w.write_bit(false);
        w.write(42, 12);
        w.write_letter('E');
        w.write_letter('N');
        assert_eq!(w.len_bits(), 3 + 16 + 1 + 12 + 12);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3).unwrap(), 0b101);
        assert_eq!(r.read(16).unwrap(), 0xFFFF);
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read(12).unwrap(), 42);
        assert_eq!(r.read_letter().unwrap(), 'E');
        assert_eq!(r.read_letter().unwrap(), 'N');
    }

    #[test]
    fn reader_reports_exhaustion() {
        let bytes = [0xABu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read(8).unwrap(), 0xAB);
        let err = r.read(1).unwrap_err();
        assert_eq!(err.at_bit, 8);
        assert_eq!(err.wanted, 1);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    #[should_panic]
    fn writer_rejects_oversized_value() {
        let mut w = BitWriter::new();
        w.write(8, 3);
    }

    #[test]
    fn msb_first_layout() {
        // Writing 1 as a single bit must set the MSB of the first byte.
        let mut w = BitWriter::new();
        w.write_bit(true);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
        // 6-bit version "000001" then 2 bits "11" => 0b0000_0111.
        let mut w = BitWriter::new();
        w.write(1, 6);
        w.write(0b11, 2);
        assert_eq!(w.into_bytes(), vec![0b0000_0111]);
    }

    #[test]
    fn base64_known_vectors() {
        assert_eq!(base64url_encode(b""), "");
        assert_eq!(base64url_encode(b"f"), "Zg");
        assert_eq!(base64url_encode(b"fo"), "Zm8");
        assert_eq!(base64url_encode(b"foo"), "Zm9v");
        assert_eq!(base64url_encode(&[0xFB, 0xFF]), "-_8");
        assert_eq!(base64url_decode("Zm9v").unwrap(), b"foo");
        assert_eq!(base64url_decode("Zg").unwrap(), b"f");
        // Standard alphabet tolerated.
        assert_eq!(base64url_decode("+/8").unwrap(), vec![0xFB, 0xFF]);
        // Padding tolerated.
        assert_eq!(base64url_decode("Zg==").unwrap(), b"f");
    }

    #[test]
    fn base64_rejects_garbage() {
        assert!(base64url_decode("a").is_err());
        assert!(base64url_decode("ab\u{1}c").is_err());
        assert!(base64url_decode("a b").is_err());
    }

    proptest! {
        #[test]
        fn prop_base64_roundtrip(data: Vec<u8>) {
            let enc = base64url_encode(&data);
            prop_assert_eq!(base64url_decode(&enc).unwrap(), data);
        }

        #[test]
        fn prop_bitfield_roundtrip(fields in proptest::collection::vec((0u64..u64::MAX, 1u8..=64u8), 0..50)) {
            let mut w = BitWriter::new();
            let masked: Vec<(u64, u8)> = fields
                .iter()
                .map(|&(v, width)| {
                    let m = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                    (m, width)
                })
                .collect();
            for &(v, width) in &masked {
                w.write(v, width);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, width) in &masked {
                prop_assert_eq!(r.read(width).unwrap(), v);
            }
        }

        #[test]
        fn prop_base64_via_bits(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut w = BitWriter::new();
            for &b in &bits {
                w.write_bit(b);
            }
            let s = base64url_encode(&w.into_bytes());
            let decoded = base64url_decode(&s).unwrap();
            let mut r = BitReader::new(&decoded);
            for &b in &bits {
                prop_assert_eq!(r.read_bit().unwrap(), b);
            }
        }
    }
}
