//! Synthetic Global Vendor List version history.
//!
//! The paper downloads all 215 published GVL versions and studies their
//! longitudinal dynamics (Figures 7 and 8): total vendor growth with a
//! sharp spike when GDPR came into effect, purpose 1 always the most
//! claimed, at least a fifth of vendors claiming legitimate interest per
//! purpose, and — among existing members — a net shift from legitimate
//! interest toward consent, with activity bursts around GDPR and again in
//! March/April 2020.
//!
//! The real version archive is not redistributable, so this module
//! *replays* those dynamics generatively: a weekly update process with
//! phase-dependent join/leave/switch rates. Every draw derives from an
//! explicit seed, so a history is fully reproducible.

use crate::gvl::{Vendor, VendorId, VendorList};
use crate::purposes::{FeatureId, PurposeId};
use consent_util::{date::known, Day, SeedTree};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Tunable rates for the history generator. The defaults reproduce the
/// shapes in Figures 7–8; the bench ablations perturb them.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryConfig {
    /// First published version date.
    pub start: Day,
    /// Last version date (inclusive horizon).
    pub end: Day,
    /// Vendors present in version 1.
    pub initial_vendors: usize,
    /// Baseline joins per weekly update, outside any burst window.
    pub base_joins_per_week: f64,
    /// Peak joins per week during the GDPR burst.
    pub gdpr_burst_joins: f64,
    /// Probability an existing vendor leaves per week.
    pub leave_prob: f64,
    /// Baseline probability an existing vendor changes a purpose's lawful
    /// basis in a given week.
    pub switch_prob: f64,
    /// Multiplier on `switch_prob` during burst windows (GDPR coming into
    /// force; the March/April 2020 enforcement scare).
    pub burst_switch_multiplier: f64,
    /// Probability that a basis change goes legitimate-interest → consent
    /// (the remainder go the other way). > 0.5 produces the paper's net
    /// shift toward consent.
    pub toward_consent_bias: f64,
}

impl Default for HistoryConfig {
    fn default() -> HistoryConfig {
        HistoryConfig {
            start: Day::from_ymd(2018, 4, 18),
            end: Day::from_ymd(2020, 5, 14),
            initial_vendors: 32,
            base_joins_per_week: 2.5,
            gdpr_burst_joins: 20.0,
            leave_prob: 0.0012,
            switch_prob: 0.0035,
            burst_switch_multiplier: 6.0,
            toward_consent_bias: 0.74,
        }
    }
}

/// Probability that a *new* vendor claims each purpose at all, indexed by
/// purpose id − 1. Purpose 1 (storage/access) is near-universal, matching
/// "the first purpose is always the most popular".
const PURPOSE_ADOPTION: [f64; 5] = [0.97, 0.68, 0.84, 0.42, 0.62];

/// Probability that a claimed purpose is declared as legitimate interest
/// rather than consent, per purpose. Calibrated so at least ~a fifth of
/// vendors claim LI for every purpose (paper §5.2).
const LEG_INT_SHARE: [f64; 5] = [0.25, 0.29, 0.36, 0.33, 0.40];

/// Probability that a new vendor relies on each feature.
const FEATURE_ADOPTION: [f64; 3] = [0.35, 0.45, 0.25];

/// Generate the full weekly version history.
///
/// Returns versions in publication order; version numbers start at 1 and
/// increase by one per update (the real archive counts 215 versions over
/// roughly this window thanks to some twice-weekly updates early on,
/// which we reproduce during the GDPR burst).
pub fn generate_history(config: &HistoryConfig, seed: SeedTree) -> Vec<VendorList> {
    let mut rng = seed.child("gvl-history").rng();
    let mut versions = Vec::new();
    let mut vendors: Vec<Vendor> = Vec::new();
    let mut next_id: u16 = 1;

    // Seed the initial membership.
    for _ in 0..config.initial_vendors {
        vendors.push(new_vendor(&mut next_id, &mut rng));
    }

    let mut date = config.start;
    let mut version: u16 = 1;
    while date <= config.end {
        versions.push(VendorList {
            vendor_list_version: version,
            last_updated: date,
            vendors: vendors.clone(),
        });
        version += 1;

        // Advance to the next update. During the GDPR burst the IAB
        // published twice a week; otherwise weekly.
        let step = if in_gdpr_burst(date) { 3 } else { 7 };
        date += step;

        // Joins.
        let joins = expected_joins(config, date);
        let n_joins = poisson_like(&mut rng, joins);
        for _ in 0..n_joins {
            vendors.push(new_vendor(&mut next_id, &mut rng));
        }

        // Leaves.
        vendors.retain(|_| rng.gen::<f64>() >= config.leave_prob);

        // Lawful-basis switches among existing members.
        let p_switch = config.switch_prob
            * if in_switch_burst(date) {
                config.burst_switch_multiplier
            } else {
                1.0
            };
        for v in vendors.iter_mut() {
            if rng.gen::<f64>() < p_switch {
                apply_switch(v, config.toward_consent_bias, &mut rng);
            }
        }
    }
    versions
}

/// True during the weeks around GDPR coming into effect (2018-05-25).
fn in_gdpr_burst(date: Day) -> bool {
    let gdpr = known::gdpr_effective();
    date >= gdpr - 10 && date <= gdpr + 45
}

/// True during the two basis-switch bursts the paper observes.
fn in_switch_burst(date: Day) -> bool {
    let gdpr = known::gdpr_effective();
    let scare_start = Day::from_ymd(2020, 3, 1);
    let scare_end = Day::from_ymd(2020, 4, 30);
    (date >= gdpr - 14 && date <= gdpr + 60) || (date >= scare_start && date <= scare_end)
}

fn expected_joins(config: &HistoryConfig, date: Day) -> f64 {
    if in_gdpr_burst(date) {
        config.gdpr_burst_joins
    } else if date < Day::from_ymd(2019, 1, 1) {
        config.base_joins_per_week * 1.5 // post-GDPR catch-up through 2018
    } else if date < Day::from_ymd(2020, 1, 1) {
        config.base_joins_per_week
    } else {
        config.base_joins_per_week * 0.6 // market saturating in 2020
    }
}

/// Cheap Poisson-ish counter: floor plus Bernoulli on the fraction. The
/// aggregate growth curve only needs the correct mean.
fn poisson_like(rng: &mut StdRng, mean: f64) -> usize {
    let base = mean.floor() as usize;
    base + usize::from(rng.gen::<f64>() < mean.fract())
}

fn new_vendor(next_id: &mut u16, rng: &mut StdRng) -> Vendor {
    let id = VendorId(*next_id);
    *next_id += 1;
    let mut purpose_ids = BTreeSet::new();
    let mut leg_int_purpose_ids = BTreeSet::new();
    for (i, &p_adopt) in PURPOSE_ADOPTION.iter().enumerate() {
        if rng.gen::<f64>() < p_adopt {
            let purpose = PurposeId(i as u8 + 1);
            if rng.gen::<f64>() < LEG_INT_SHARE[i] {
                leg_int_purpose_ids.insert(purpose);
            } else {
                purpose_ids.insert(purpose);
            }
        }
    }
    // Every vendor must claim something; default to consent for purpose 1.
    if purpose_ids.is_empty() && leg_int_purpose_ids.is_empty() {
        purpose_ids.insert(PurposeId(1));
    }
    let mut feature_ids = BTreeSet::new();
    for (i, &p_adopt) in FEATURE_ADOPTION.iter().enumerate() {
        if rng.gen::<f64>() < p_adopt {
            feature_ids.insert(FeatureId(i as u8 + 1));
        }
    }
    Vendor {
        id,
        name: vendor_name(id.0, rng),
        policy_url: format!("https://vendor{}.example/privacy", id.0),
        purpose_ids,
        leg_int_purpose_ids,
        feature_ids,
    }
}

/// Switch one randomly-chosen purpose between lawful bases.
fn apply_switch(v: &mut Vendor, toward_consent_bias: f64, rng: &mut StdRng) {
    let toward_consent = rng.gen::<f64>() < toward_consent_bias;
    if toward_consent {
        // Promote a random legitimate-interest purpose to consent.
        if let Some(&p) = pick(&v.leg_int_purpose_ids, rng) {
            v.leg_int_purpose_ids.remove(&p);
            v.purpose_ids.insert(p);
        }
    } else if let Some(&p) = pick(&v.purpose_ids, rng) {
        v.purpose_ids.remove(&p);
        v.leg_int_purpose_ids.insert(p);
    }
}

fn pick<'a, T>(set: &'a BTreeSet<T>, rng: &mut StdRng) -> Option<&'a T> {
    if set.is_empty() {
        return None;
    }
    set.iter().nth(rng.gen_range(0..set.len()))
}

/// Deterministic two-part synthetic company name.
fn vendor_name(id: u16, rng: &mut StdRng) -> String {
    const HEADS: [&str; 12] = [
        "Ad", "Pixel", "Audience", "Reach", "Metric", "Signal", "Cohort", "Spark", "Delta",
        "Prime", "Vertex", "Atlas",
    ];
    const TAILS: [&str; 10] = [
        "media", "graph", "works", "lytics", "sense", "scope", "vertise", "mob", "serve", "lab",
    ];
    format!(
        "{}{} GmbH (#{id})",
        HEADS[rng.gen_range(0..HEADS.len())],
        TAILS[rng.gen_range(0..TAILS.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> Vec<VendorList> {
        generate_history(&HistoryConfig::default(), SeedTree::new(42))
    }

    #[test]
    fn deterministic() {
        let a = history();
        let b = history();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[10], b[10]);
        let c = generate_history(&HistoryConfig::default(), SeedTree::new(43));
        assert_ne!(a.last().unwrap().len(), 0);
        assert_ne!(
            a.last().unwrap().vendors.len(),
            0,
            "non-empty final version"
        );
        // Different seed almost surely differs somewhere.
        assert_ne!(a.last().unwrap().vendors, c.last().unwrap().vendors);
    }

    #[test]
    fn version_count_near_paper() {
        // The paper collected 215 versions; twice-weekly publication during
        // the GDPR burst plus weekly otherwise should land in that region.
        let h = history();
        assert!(
            (110..=240).contains(&h.len()),
            "unexpected version count {}",
            h.len()
        );
        // Versions are consecutively numbered and dates monotone.
        for (i, v) in h.iter().enumerate() {
            assert_eq!(v.vendor_list_version as usize, i + 1);
        }
        for w in h.windows(2) {
            assert!(w[0].last_updated < w[1].last_updated);
        }
    }

    #[test]
    fn growth_spikes_at_gdpr() {
        let h = history();
        let count_at = |d: Day| -> usize {
            h.iter()
                .rev()
                .find(|v| v.last_updated <= d)
                .map_or(0, |v| v.len())
        };
        let before = count_at(Day::from_ymd(2018, 5, 1));
        let after = count_at(Day::from_ymd(2018, 7, 15));
        let end_2019 = count_at(Day::from_ymd(2019, 12, 15));
        let may_2020 = count_at(Day::from_ymd(2020, 5, 14));
        assert!(before < 120, "pre-GDPR count {before}");
        assert!(after > before * 3, "no GDPR spike: {before} -> {after}");
        assert!(end_2019 > after, "no continued growth");
        assert!(
            (450..=850).contains(&may_2020),
            "May 2020 count {may_2020} outside plausible band"
        );
    }

    #[test]
    fn purpose_one_always_most_popular() {
        let h = history();
        for v in h.iter().step_by(20) {
            let p1 = v
                .vendors
                .iter()
                .filter(|x| x.uses_purpose(PurposeId(1)))
                .count();
            for other in 2..=5u8 {
                let po = v
                    .vendors
                    .iter()
                    .filter(|x| x.uses_purpose(PurposeId(other)))
                    .count();
                assert!(p1 >= po, "purpose 1 ({p1}) < purpose {other} ({po})");
            }
        }
    }

    #[test]
    fn at_least_a_fifth_claim_leg_int() {
        // Paper §5.2: "For every purpose in the TCF, at least a fifth of
        // the vendors claim they do not need to collect consent."
        let h = history();
        let last = h.last().unwrap();
        for p in 1..=5u8 {
            let claiming = last
                .vendors
                .iter()
                .filter(|v| v.uses_purpose(PurposeId(p)))
                .count();
            let li = last.leg_int_count(PurposeId(p));
            assert!(
                li as f64 >= 0.15 * claiming as f64,
                "purpose {p}: only {li}/{claiming} via legitimate interest"
            );
        }
    }

    #[test]
    fn vendors_always_claim_something() {
        let h = history();
        for v in h.last().unwrap().vendors.iter() {
            assert!(
                !v.purpose_ids.is_empty() || !v.leg_int_purpose_ids.is_empty(),
                "vendor {} claims nothing",
                v.id
            );
        }
    }

    #[test]
    fn json_roundtrip_of_generated_version() {
        let h = history();
        let mid = &h[h.len() / 2];
        let text = mid.to_json().to_compact();
        let parsed = VendorList::from_json_text(&text).unwrap();
        assert_eq!(&parsed, mid);
    }
}
