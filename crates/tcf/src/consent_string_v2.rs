//! TCF v2 TC-string codec (core segment).
//!
//! TCF v2 went live in August 2020 — inside the paper's observation
//! window — and replaced v1's single consent bitmap with separate
//! *consent* and *legitimate-interest* vendor sections, per-purpose
//! transparency flags, and publisher restrictions. The paper's §5
//! discussion anticipates exactly this evolution of the standard, so the
//! codec is included as the repository's forward-compatibility surface.
//!
//! Implemented: the complete core segment — all header fields, both
//! vendor sections (bitfield and range encodings), and publisher
//! restrictions. Not implemented: the optional disclosed/allowed-vendor
//! and publisher-TC segments, which no measurement in the paper needs.

use crate::bits::{base64url_decode, base64url_encode, BitReader, BitWriter};
use crate::consent_string::DecodeError;
use std::collections::{BTreeMap, BTreeSet};

/// Restriction types for publisher restrictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RestrictionType {
    /// Purpose flatly not allowed by the publisher.
    NotAllowed,
    /// Vendor must use consent for this purpose.
    RequireConsent,
    /// Vendor must use legitimate interest for this purpose.
    RequireLegitimateInterest,
}

impl RestrictionType {
    fn to_bits(self) -> u64 {
        match self {
            RestrictionType::NotAllowed => 0,
            RestrictionType::RequireConsent => 1,
            RestrictionType::RequireLegitimateInterest => 2,
        }
    }

    fn from_bits(v: u64) -> Option<RestrictionType> {
        match v {
            0 => Some(RestrictionType::NotAllowed),
            1 => Some(RestrictionType::RequireConsent),
            2 => Some(RestrictionType::RequireLegitimateInterest),
            _ => None,
        }
    }
}

/// A decoded TCF v2 TC string (core segment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcStringV2 {
    /// Always 2.
    pub version: u8,
    /// Created, deciseconds since epoch.
    pub created_ds: u64,
    /// Last updated, deciseconds since epoch.
    pub last_updated_ds: u64,
    /// IAB CMP id.
    pub cmp_id: u16,
    /// CMP version.
    pub cmp_version: u16,
    /// Consent screen.
    pub consent_screen: u8,
    /// Two-letter language, uppercase.
    pub consent_language: [char; 2],
    /// GVL version.
    pub vendor_list_version: u16,
    /// TCF policy version.
    pub tcf_policy_version: u8,
    /// Service-specific (true) vs globally-scoped (false) string.
    pub is_service_specific: bool,
    /// CMP used non-IAB-standard stacks.
    pub use_non_standard_stacks: bool,
    /// Special-feature opt-ins (ids 1..=12).
    pub special_feature_opt_ins: BTreeSet<u8>,
    /// Purposes with consent (ids 1..=24).
    pub purposes_consent: BTreeSet<u8>,
    /// Purposes with legitimate-interest transparency established.
    pub purposes_li_transparency: BTreeSet<u8>,
    /// Purpose-one treatment flag (jurisdictions where purpose 1 is
    /// handled out of band).
    pub purpose_one_treatment: bool,
    /// Publisher country code, uppercase.
    pub publisher_cc: [char; 2],
    /// Vendors with consent.
    pub vendor_consents: BTreeSet<u16>,
    /// Vendors with established legitimate interest.
    pub vendor_li: BTreeSet<u16>,
    /// Publisher restrictions: (purpose, type) → vendor ids.
    pub publisher_restrictions: BTreeMap<(u8, RestrictionType), BTreeSet<u16>>,
}

impl TcStringV2 {
    /// A fresh v2 string with no consents.
    pub fn new(cmp_id: u16, vendor_list_version: u16) -> TcStringV2 {
        TcStringV2 {
            version: 2,
            created_ds: 0,
            last_updated_ds: 0,
            cmp_id,
            cmp_version: 1,
            consent_screen: 1,
            consent_language: ['E', 'N'],
            vendor_list_version,
            tcf_policy_version: 2,
            is_service_specific: true,
            use_non_standard_stacks: false,
            special_feature_opt_ins: BTreeSet::new(),
            purposes_consent: BTreeSet::new(),
            purposes_li_transparency: BTreeSet::new(),
            purpose_one_treatment: false,
            publisher_cc: ['D', 'E'],
            vendor_consents: BTreeSet::new(),
            vendor_li: BTreeSet::new(),
            publisher_restrictions: BTreeMap::new(),
        }
    }

    /// True if vendor `id` has consent.
    pub fn vendor_allowed(&self, id: u16) -> bool {
        self.vendor_consents.contains(&id)
    }

    /// True if vendor `id` has established legitimate interest.
    pub fn vendor_li_established(&self, id: u16) -> bool {
        self.vendor_li.contains(&id)
    }

    /// Serialize the core segment to base64url.
    pub fn encode(&self) -> String {
        let mut w = BitWriter::new();
        w.write(u64::from(self.version), 6);
        w.write(self.created_ds, 36);
        w.write(self.last_updated_ds, 36);
        w.write(u64::from(self.cmp_id), 12);
        w.write(u64::from(self.cmp_version), 12);
        w.write(u64::from(self.consent_screen), 6);
        w.write_letter(self.consent_language[0]);
        w.write_letter(self.consent_language[1]);
        w.write(u64::from(self.vendor_list_version), 12);
        w.write(u64::from(self.tcf_policy_version), 6);
        w.write_bit(self.is_service_specific);
        w.write_bit(self.use_non_standard_stacks);
        for i in 1..=12u8 {
            w.write_bit(self.special_feature_opt_ins.contains(&i));
        }
        for i in 1..=24u8 {
            w.write_bit(self.purposes_consent.contains(&i));
        }
        for i in 1..=24u8 {
            w.write_bit(self.purposes_li_transparency.contains(&i));
        }
        w.write_bit(self.purpose_one_treatment);
        w.write_letter(self.publisher_cc[0]);
        w.write_letter(self.publisher_cc[1]);
        write_vendor_section(&mut w, &self.vendor_consents);
        write_vendor_section(&mut w, &self.vendor_li);
        // Publisher restrictions.
        w.write(self.publisher_restrictions.len() as u64, 12);
        for (&(purpose, rtype), vendors) in &self.publisher_restrictions {
            w.write(u64::from(purpose), 6);
            w.write(rtype.to_bits(), 2);
            let ranges = to_ranges(vendors);
            w.write(ranges.len() as u64, 12);
            for &(start, end) in &ranges {
                if start == end {
                    w.write_bit(false);
                    w.write(u64::from(start), 16);
                } else {
                    w.write_bit(true);
                    w.write(u64::from(start), 16);
                    w.write(u64::from(end), 16);
                }
            }
        }
        base64url_encode(&w.into_bytes())
    }

    /// Decode a core segment. Trailing segments (separated by `.`) are
    /// ignored, as the spec allows.
    pub fn decode(s: &str) -> Result<TcStringV2, DecodeError> {
        let core = s.split('.').next().unwrap_or(s);
        let bytes = base64url_decode(core).map_err(|e| DecodeError::Base64(e.to_string()))?;
        let mut r = BitReader::new(&bytes);
        let rd = |r: &mut BitReader<'_>, w: u8| {
            r.read(w)
                .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })
        };
        let letter = |r: &mut BitReader<'_>| {
            r.read_letter()
                .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })
        };
        let version = rd(&mut r, 6)? as u8;
        if version != 2 {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let created_ds = rd(&mut r, 36)?;
        let last_updated_ds = rd(&mut r, 36)?;
        let cmp_id = rd(&mut r, 12)? as u16;
        let cmp_version = rd(&mut r, 12)? as u16;
        let consent_screen = rd(&mut r, 6)? as u8;
        let consent_language = [letter(&mut r)?, letter(&mut r)?];
        let vendor_list_version = rd(&mut r, 12)? as u16;
        let tcf_policy_version = rd(&mut r, 6)? as u8;
        let is_service_specific = rd(&mut r, 1)? == 1;
        let use_non_standard_stacks = rd(&mut r, 1)? == 1;
        let mut special_feature_opt_ins = BTreeSet::new();
        for i in 1..=12u8 {
            if rd(&mut r, 1)? == 1 {
                special_feature_opt_ins.insert(i);
            }
        }
        let mut purposes_consent = BTreeSet::new();
        for i in 1..=24u8 {
            if rd(&mut r, 1)? == 1 {
                purposes_consent.insert(i);
            }
        }
        let mut purposes_li_transparency = BTreeSet::new();
        for i in 1..=24u8 {
            if rd(&mut r, 1)? == 1 {
                purposes_li_transparency.insert(i);
            }
        }
        let purpose_one_treatment = rd(&mut r, 1)? == 1;
        let publisher_cc = [letter(&mut r)?, letter(&mut r)?];
        let vendor_consents = read_vendor_section(&mut r)?;
        let vendor_li = read_vendor_section(&mut r)?;
        let num_restrictions = rd(&mut r, 12)? as usize;
        let mut publisher_restrictions = BTreeMap::new();
        for _ in 0..num_restrictions {
            let purpose = rd(&mut r, 6)? as u8;
            let rtype =
                RestrictionType::from_bits(rd(&mut r, 2)?).ok_or(DecodeError::InvalidRange {
                    start: 0,
                    end: 0,
                    max: 0,
                })?;
            let entries = rd(&mut r, 12)? as usize;
            let mut vendors = BTreeSet::new();
            for _ in 0..entries {
                let is_range = rd(&mut r, 1)? == 1;
                let start = rd(&mut r, 16)? as u16;
                let end = if is_range {
                    rd(&mut r, 16)? as u16
                } else {
                    start
                };
                if start == 0 || start > end {
                    return Err(DecodeError::InvalidRange {
                        start,
                        end,
                        max: u16::MAX,
                    });
                }
                vendors.extend(start..=end);
            }
            publisher_restrictions.insert((purpose, rtype), vendors);
        }
        Ok(TcStringV2 {
            version,
            created_ds,
            last_updated_ds,
            cmp_id,
            cmp_version,
            consent_screen,
            consent_language,
            vendor_list_version,
            tcf_policy_version,
            is_service_specific,
            use_non_standard_stacks,
            special_feature_opt_ins,
            purposes_consent,
            purposes_li_transparency,
            purpose_one_treatment,
            publisher_cc,
            vendor_consents,
            vendor_li,
            publisher_restrictions,
        })
    }
}

/// Upgrade a v1 consent string to a v2 TC string: v1's single consent
/// bitmap becomes the v2 consent section, legitimate-interest sections
/// start empty (v1 could not express them).
pub fn upgrade_from_v1(v1: &crate::consent_string::ConsentString) -> TcStringV2 {
    let mut v2 = TcStringV2::new(v1.cmp_id, v1.vendor_list_version);
    v2.created_ds = v1.created_ds;
    v2.last_updated_ds = v1.last_updated_ds;
    v2.cmp_version = v1.cmp_version;
    v2.consent_screen = v1.consent_screen;
    v2.consent_language = v1.consent_language;
    v2.purposes_consent = v1.purposes_allowed.clone();
    v2.vendor_consents = v1.vendor_consents.clone();
    v2
}

fn write_vendor_section(w: &mut BitWriter, vendors: &BTreeSet<u16>) {
    let max = vendors.iter().next_back().copied().unwrap_or(0);
    w.write(u64::from(max), 16);
    let ranges = to_ranges(vendors);
    // v2 drops the default-consent bit; pick whichever encoding is
    // smaller, like real CMP SDKs.
    let range_bits = 12
        + ranges
            .iter()
            .map(|&(s, e)| if s == e { 17 } else { 33 })
            .sum::<usize>();
    if range_bits < usize::from(max) {
        w.write_bit(true);
        w.write(ranges.len() as u64, 12);
        for &(start, end) in &ranges {
            if start == end {
                w.write_bit(false);
                w.write(u64::from(start), 16);
            } else {
                w.write_bit(true);
                w.write(u64::from(start), 16);
                w.write(u64::from(end), 16);
            }
        }
    } else {
        w.write_bit(false);
        for id in 1..=max {
            w.write_bit(vendors.contains(&id));
        }
    }
}

fn read_vendor_section(r: &mut BitReader<'_>) -> Result<BTreeSet<u16>, DecodeError> {
    let rd = |r: &mut BitReader<'_>, w: u8| {
        r.read(w)
            .map_err(|e| DecodeError::Truncated { at_bit: e.at_bit })
    };
    let max = rd(r, 16)? as u16;
    let is_range = rd(r, 1)? == 1;
    let mut out = BTreeSet::new();
    if is_range {
        let entries = rd(r, 12)? as usize;
        for _ in 0..entries {
            let entry_is_range = rd(r, 1)? == 1;
            let start = rd(r, 16)? as u16;
            let end = if entry_is_range {
                rd(r, 16)? as u16
            } else {
                start
            };
            if start == 0 || start > end || end > max {
                return Err(DecodeError::InvalidRange { start, end, max });
            }
            out.extend(start..=end);
        }
    } else {
        for id in 1..=max {
            if rd(r, 1)? == 1 {
                out.insert(id);
            }
        }
    }
    Ok(out)
}

/// Contiguous runs of a sorted vendor set.
fn to_ranges(vendors: &BTreeSet<u16>) -> Vec<(u16, u16)> {
    let mut ranges: Vec<(u16, u16)> = Vec::new();
    for &id in vendors {
        match ranges.last_mut() {
            Some((_, end)) if *end + 1 == id => *end = id,
            _ => ranges.push((id, id)),
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> TcStringV2 {
        let mut t = TcStringV2::new(10, 48);
        t.created_ds = 16_000_000_000;
        t.last_updated_ds = 16_000_000_100;
        t.purposes_consent = [1, 2, 4].into();
        t.purposes_li_transparency = [2, 7].into();
        t.special_feature_opt_ins = [1].into();
        t.vendor_consents = [1, 2, 3, 4, 5, 100, 755].into();
        t.vendor_li = [2, 37].into();
        t.publisher_restrictions
            .insert((2, RestrictionType::RequireConsent), [8, 9, 10].into());
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let s = t.encode();
        assert_eq!(TcStringV2::decode(&s).unwrap(), t);
    }

    #[test]
    fn v2_strings_start_with_c() {
        // Version 2 in the leading 6 bits makes the first base64 char 'C'
        // — the well-known visual signature of TCF v2 cookies.
        assert!(sample().encode().starts_with('C'));
    }

    #[test]
    fn trailing_segments_ignored() {
        let t = sample();
        let s = format!("{}.IBAgAAAYA", t.encode());
        assert_eq!(TcStringV2::decode(&s).unwrap(), t);
    }

    #[test]
    fn rejects_v1_input() {
        let v1 = crate::consent_string::ConsentString::new(10, 215, 10)
            .encode(crate::consent_string::VendorEncoding::Auto);
        assert!(matches!(
            TcStringV2::decode(&v1),
            Err(DecodeError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn upgrade_preserves_consents() {
        let v1 = {
            let mut c = crate::consent_string::ConsentString::new(21, 180, 300);
            c.purposes_allowed = [1, 3].into();
            c.vendor_consents = [5, 6, 7, 250].into();
            c
        };
        let v2 = upgrade_from_v1(&v1);
        assert_eq!(v2.version, 2);
        assert_eq!(v2.cmp_id, 21);
        assert_eq!(v2.purposes_consent, [1, 3].into());
        assert!(v2.vendor_allowed(250));
        assert!(!v2.vendor_li_established(250));
        // And the upgraded string round-trips on the wire.
        let s = v2.encode();
        assert_eq!(TcStringV2::decode(&s).unwrap(), v2);
    }

    #[test]
    fn empty_sections_encode() {
        let t = TcStringV2::new(5, 1);
        let s = t.encode();
        let d = TcStringV2::decode(&s).unwrap();
        assert!(d.vendor_consents.is_empty());
        assert!(d.vendor_li.is_empty());
        assert!(d.publisher_restrictions.is_empty());
    }

    #[test]
    fn restriction_types_roundtrip() {
        for rt in [
            RestrictionType::NotAllowed,
            RestrictionType::RequireConsent,
            RestrictionType::RequireLegitimateInterest,
        ] {
            assert_eq!(RestrictionType::from_bits(rt.to_bits()), Some(rt));
        }
        assert_eq!(RestrictionType::from_bits(3), None);
    }

    #[test]
    fn range_helper() {
        assert_eq!(to_ranges(&BTreeSet::new()), vec![]);
        assert_eq!(to_ranges(&[5].into()), vec![(5, 5)]);
        assert_eq!(
            to_ranges(&[1, 2, 3, 7, 9, 10].into()),
            vec![(1, 3), (7, 7), (9, 10)]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn prop_v2_roundtrip(
            consents in proptest::collection::btree_set(1u16..800, 0..60),
            li in proptest::collection::btree_set(1u16..800, 0..40),
            purposes in proptest::collection::btree_set(1u8..=24, 0..10),
            li_purposes in proptest::collection::btree_set(1u8..=24, 0..10),
            features in proptest::collection::btree_set(1u8..=12, 0..5),
            service_specific: bool,
            p1: bool,
        ) {
            let mut t = TcStringV2::new(300, 90);
            t.vendor_consents = consents;
            t.vendor_li = li;
            t.purposes_consent = purposes;
            t.purposes_li_transparency = li_purposes;
            t.special_feature_opt_ins = features;
            t.is_service_specific = service_specific;
            t.purpose_one_treatment = p1;
            let s = t.encode();
            prop_assert_eq!(TcStringV2::decode(&s).unwrap(), t);
        }
    }
}
