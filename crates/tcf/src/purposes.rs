//! TCF v1 purposes and features registry (paper Table A.1).
//!
//! Purposes are the reasons a vendor processes personal data; users can
//! consent per-purpose. Features describe data-use methods that span
//! purposes; they are disclosed but not individually consentable.

/// A TCF v1 purpose id (1–5 in the standard list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PurposeId(pub u8);

/// A TCF v1 feature id (1–3 in the standard list).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FeatureId(pub u8);

/// Definition of a purpose as published in the GVL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Purpose {
    /// 1-based id.
    pub id: PurposeId,
    /// Short name.
    pub name: &'static str,
    /// Definition text shown to users.
    pub description: &'static str,
}

/// Definition of a feature as published in the GVL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Feature {
    /// 1-based id.
    pub id: FeatureId,
    /// Short name.
    pub name: &'static str,
    /// Definition text shown to users.
    pub description: &'static str,
}

/// The five standard purposes of TCF v1 (Table A.1).
pub const PURPOSES: [Purpose; 5] = [
    Purpose {
        id: PurposeId(1),
        name: "Information storage and access",
        description: "The storage of information, or access to information that is already \
                      stored, on your device such as advertising identifiers, device \
                      identifiers, cookies, and similar technologies.",
    },
    Purpose {
        id: PurposeId(2),
        name: "Personalisation",
        description: "The collection and processing of information about your use of this \
                      service to subsequently personalise advertising and/or content for you \
                      in other contexts, such as on other websites or apps, over time.",
    },
    Purpose {
        id: PurposeId(3),
        name: "Ad selection, delivery, reporting",
        description: "The collection of information, and combination with previously collected \
                      information, to select and deliver advertisements for you, and to measure \
                      the delivery and effectiveness of such advertisements.",
    },
    Purpose {
        id: PurposeId(4),
        name: "Content selection, delivery, reporting",
        description: "The collection of information, and combination with previously collected \
                      information, to select and deliver content for you, and to measure the \
                      delivery and effectiveness of such content.",
    },
    Purpose {
        id: PurposeId(5),
        name: "Measurement",
        description: "The collection of information about your use of the content, and \
                      combination with previously collected information, used to measure, \
                      understand, and report on your usage of the service.",
    },
];

/// The three standard features of TCF v1 (Table A.1).
pub const FEATURES: [Feature; 3] = [
    Feature {
        id: FeatureId(1),
        name: "Offline data matching",
        description: "Combining data from offline sources that were initially collected in \
                      other contexts with data collected online in support of one or more \
                      purposes.",
    },
    Feature {
        id: FeatureId(2),
        name: "Device linking",
        description: "Processing data to link multiple devices that belong to the same user \
                      in support of one or more purposes.",
    },
    Feature {
        id: FeatureId(3),
        name: "Precise geographic location data",
        description: "Collecting and supporting precise geographic location data in support \
                      of one or more purposes.",
    },
];

/// Look up a purpose by id.
pub fn purpose(id: PurposeId) -> Option<&'static Purpose> {
    PURPOSES.iter().find(|p| p.id == id)
}

/// Look up a feature by id.
pub fn feature(id: FeatureId) -> Option<&'static Feature> {
    FEATURES.iter().find(|f| f.id == id)
}

/// All standard purpose ids, in order.
pub fn all_purpose_ids() -> impl Iterator<Item = PurposeId> {
    PURPOSES.iter().map(|p| p.id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(PURPOSES.len(), 5);
        assert_eq!(FEATURES.len(), 3);
        for (i, p) in PURPOSES.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i + 1);
            assert!(!p.name.is_empty());
            assert!(!p.description.is_empty());
        }
        for (i, f) in FEATURES.iter().enumerate() {
            assert_eq!(f.id.0 as usize, i + 1);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(
            purpose(PurposeId(1)).unwrap().name,
            "Information storage and access"
        );
        assert_eq!(purpose(PurposeId(5)).unwrap().name, "Measurement");
        assert_eq!(purpose(PurposeId(6)), None);
        assert_eq!(feature(FeatureId(2)).unwrap().name, "Device linking");
        assert_eq!(feature(FeatureId(0)), None);
    }

    #[test]
    fn purpose_iterator() {
        let ids: Vec<u8> = all_purpose_ids().map(|p| p.0).collect();
        assert_eq!(ids, [1, 2, 3, 4, 5]);
    }
}
