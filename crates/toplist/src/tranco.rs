//! Tranco-style toplist aggregation.
//!
//! The paper ranks websites with the Tranco list (Le Pochat et al., NDSS
//! 2019), which aggregates several provider lists (Alexa, Cisco Umbrella,
//! Majestic, Quantcast) with the *Dowdall rule*: a domain at rank `r` on a
//! provider list scores `1/r`, scores are summed across lists, and domains
//! are ordered by total score. Tranco is an algorithm over provider data;
//! we implement the algorithm and (in [`crate::provider`]) synthesize
//! provider data with realistic rank noise.

use std::collections::HashMap;

/// A single provider's ranked list of domains (rank 1 first).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProviderList {
    /// Provider name, e.g. `"alexa"`.
    pub name: String,
    /// Domains in rank order.
    pub domains: Vec<String>,
}

impl ProviderList {
    /// Create a provider list. Duplicate domains keep their best rank.
    pub fn new(name: impl Into<String>, domains: Vec<String>) -> ProviderList {
        ProviderList {
            name: name.into(),
            domains,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

/// Aggregation rule for combining provider ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregationRule {
    /// Dowdall: rank `r` scores `1/r` (Tranco's default). Emphasizes
    /// agreement at the head of the lists.
    Dowdall,
    /// Borda: rank `r` on a list of length `n` scores `n - r + 1`.
    /// Included for the ablation bench; more sensitive to tail noise.
    Borda,
}

/// An aggregated toplist with stable, reproducible ordering.
#[derive(Clone, Debug, PartialEq)]
pub struct Toplist {
    entries: Vec<(String, f64)>,
    index: HashMap<String, usize>,
}

impl Toplist {
    /// Aggregate provider lists under `rule`.
    ///
    /// Ties are broken by domain name (ascending) so the output is fully
    /// deterministic, mirroring Tranco's reproducibility goal.
    pub fn aggregate(providers: &[ProviderList], rule: AggregationRule) -> Toplist {
        let mut scores: HashMap<&str, f64> = HashMap::new();
        let mut seen_on_list: HashMap<&str, Vec<bool>> = HashMap::new();
        for (li, list) in providers.iter().enumerate() {
            for (i, domain) in list.domains.iter().enumerate() {
                // Duplicate entries on one list keep the best (first) rank.
                let seen = seen_on_list
                    .entry(domain.as_str())
                    .or_insert_with(|| vec![false; providers.len()]);
                if seen[li] {
                    continue;
                }
                seen[li] = true;
                let rank = (i + 1) as f64;
                let score = match rule {
                    AggregationRule::Dowdall => 1.0 / rank,
                    AggregationRule::Borda => (list.domains.len() as f64) - rank + 1.0,
                };
                *scores.entry(domain.as_str()).or_insert(0.0) += score;
            }
        }
        let mut entries: Vec<(String, f64)> =
            scores.into_iter().map(|(d, s)| (d.to_owned(), s)).collect();
        entries.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("scores are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        let index = entries
            .iter()
            .enumerate()
            .map(|(i, (d, _))| (d.clone(), i))
            .collect();
        Toplist { entries, index }
    }

    /// Number of distinct domains.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Domain at 1-based rank `r`.
    pub fn domain_at(&self, rank: usize) -> Option<&str> {
        self.entries
            .get(rank.checked_sub(1)?)
            .map(|(d, _)| d.as_str())
    }

    /// 1-based rank of `domain`, if ranked.
    pub fn rank_of(&self, domain: &str) -> Option<usize> {
        self.index.get(domain).map(|i| i + 1)
    }

    /// Aggregated score of `domain`.
    pub fn score_of(&self, domain: &str) -> Option<f64> {
        self.index.get(domain).map(|&i| self.entries[i].1)
    }

    /// The top `n` domains in rank order.
    pub fn top(&self, n: usize) -> impl Iterator<Item = &str> {
        self.entries.iter().take(n).map(|(d, _)| d.as_str())
    }

    /// Iterate `(rank, domain)` pairs, rank starting at 1.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, (d, _))| (i + 1, d.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> Vec<ProviderList> {
        vec![
            ProviderList::new("a", vec!["x.com".into(), "y.com".into(), "z.com".into()]),
            ProviderList::new("b", vec!["y.com".into(), "x.com".into(), "w.com".into()]),
        ]
    }

    #[test]
    fn dowdall_scores() {
        let t = Toplist::aggregate(&lists(), AggregationRule::Dowdall);
        // x: 1 + 1/2 = 1.5; y: 1/2 + 1 = 1.5; z: 1/3; w: 1/3.
        assert_eq!(t.len(), 4);
        assert_eq!(t.score_of("x.com"), Some(1.5));
        assert_eq!(t.score_of("y.com"), Some(1.5));
        // Tie broken lexicographically: x before y; w before z.
        assert_eq!(t.domain_at(1), Some("x.com"));
        assert_eq!(t.domain_at(2), Some("y.com"));
        assert_eq!(t.domain_at(3), Some("w.com"));
        assert_eq!(t.domain_at(4), Some("z.com"));
        assert_eq!(t.rank_of("z.com"), Some(4));
        assert_eq!(t.rank_of("absent.com"), None);
        assert_eq!(t.domain_at(0), None);
    }

    #[test]
    fn borda_differs_from_dowdall() {
        // Borda weighs mid-list agreement much more than Dowdall.
        let providers = vec![
            ProviderList::new(
                "a",
                vec![
                    "top.com".into(),
                    "mid1.com".into(),
                    "mid2.com".into(),
                    "mid3.com".into(),
                ],
            ),
            ProviderList::new(
                "b",
                vec![
                    "mid1.com".into(),
                    "mid2.com".into(),
                    "mid3.com".into(),
                    "other.com".into(),
                ],
            ),
        ];
        let dowdall = Toplist::aggregate(&providers, AggregationRule::Dowdall);
        let borda = Toplist::aggregate(&providers, AggregationRule::Borda);
        // Under Borda, mid1 (scores 3 + 4 = 7) beats top (4).
        assert_eq!(borda.domain_at(1), Some("mid1.com"));
        // Under Dowdall, mid1 (1/2 + 1 = 1.5) also beats top (1.0) — but
        // relative orderings further down differ between the two rules.
        assert_eq!(dowdall.domain_at(1), Some("mid1.com"));
        let d_ranks: Vec<_> = dowdall.iter().map(|(_, d)| d.to_owned()).collect();
        let b_ranks: Vec<_> = borda.iter().map(|(_, d)| d.to_owned()).collect();
        assert_ne!(d_ranks, b_ranks);
    }

    #[test]
    fn duplicates_keep_best_rank() {
        let providers = vec![ProviderList::new(
            "a",
            vec!["x.com".into(), "x.com".into(), "y.com".into()],
        )];
        let t = Toplist::aggregate(&providers, AggregationRule::Dowdall);
        assert_eq!(t.len(), 2);
        assert_eq!(t.score_of("x.com"), Some(1.0)); // not 1 + 1/2
    }

    #[test]
    fn top_iterator() {
        let t = Toplist::aggregate(&lists(), AggregationRule::Dowdall);
        let top2: Vec<&str> = t.top(2).collect();
        assert_eq!(top2, ["x.com", "y.com"]);
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.iter().next(), Some((1, "x.com")));
    }

    #[test]
    fn empty_aggregation() {
        let t = Toplist::aggregate(&[], AggregationRule::Dowdall);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.domain_at(1), None);
    }

    #[test]
    fn single_list_preserves_order() {
        let providers = vec![ProviderList::new(
            "a",
            (0..100).map(|i| format!("d{i:03}.com")).collect(),
        )];
        assert!(!providers[0].is_empty());
        assert_eq!(providers[0].len(), 100);
        let t = Toplist::aggregate(&providers, AggregationRule::Dowdall);
        for i in 0..100 {
            assert_eq!(t.domain_at(i + 1), Some(format!("d{i:03}.com").as_str()));
        }
    }
}
