//! # consent-toplist
//!
//! Tranco-style toplist machinery: Dowdall-rule aggregation of noisy
//! provider rankings ([`tranco`], [`provider`]) and the paper's seed-URL
//! resolution ladder for turning toplist domains into crawlable URLs
//! ([`seed`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod provider;
pub mod seed;
pub mod tranco;

pub use provider::{default_providers, observe, ProviderConfig};
pub use seed::{resolve_all, resolve_seed, ProbeResult, Prober, SeedScheme, SeedUrl};
pub use tranco::{AggregationRule, ProviderList, Toplist};
