//! Seed-URL resolution for toplist crawls.
//!
//! Toplists contain bare domains, not crawlable URLs. The paper's protocol
//! (§3.2): for each domain, try a validated TLS connection to
//! `www.<domain>:443` and use `https://www.<domain>/`; else try TCP to
//! `www.<domain>:80` and use `http://www.<domain>/`; else fall back to
//! `http://<domain>/`. The whole process is repeated three times over a
//! week to catch temporarily unavailable domains.
//!
//! Connectivity itself is abstracted behind [`Prober`], implemented by the
//! synthetic web in `consent-httpsim`; tests here use a table-driven fake.

use consent_util::Day;

/// Outcome of probing one `(host, port)` endpoint on a given day.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeResult {
    /// TCP + TLS handshake succeeded and the certificate validates for the
    /// probed hostname against the Mozilla trust store.
    TlsValid,
    /// TCP connected but TLS failed (or certificate invalid). Only
    /// meaningful for port 443.
    TlsInvalid,
    /// TCP connection succeeded (port 80 probes).
    TcpOpen,
    /// Nothing is listening / timeout.
    Unreachable,
}

/// Connectivity oracle for seed resolution.
pub trait Prober {
    /// Probe `host:443` with TLS certificate validation.
    fn probe_tls(&self, host: &str, day: Day) -> ProbeResult;
    /// Probe `host:80` with a plain TCP connect.
    fn probe_tcp(&self, host: &str, day: Day) -> ProbeResult;
}

/// How a seed URL was derived, in decreasing order of preference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeedScheme {
    /// `https://www.<domain>/`
    HttpsWww,
    /// `http://www.<domain>/`
    HttpWww,
    /// `http://<domain>/` (last resort, also used when all probes fail).
    HttpApex,
}

/// A resolved seed URL for one toplist domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedUrl {
    /// The toplist domain the seed was derived from.
    pub domain: String,
    /// Full seed URL.
    pub url: String,
    /// Which rung of the fallback ladder produced it.
    pub scheme: SeedScheme,
    /// True if every probe failed and the apex fallback is speculative.
    pub speculative: bool,
    /// How many of the retry rounds reached the domain at all.
    pub reachable_rounds: u8,
}

/// Resolve a seed URL for `domain`, probing on each day in `attempt_days`
/// (the paper uses three attempts spread over a week). The best outcome
/// across rounds wins: one successful TLS probe is enough for an HTTPS
/// seed even if the other rounds time out.
pub fn resolve_seed(domain: &str, prober: &impl Prober, attempt_days: &[Day]) -> SeedUrl {
    assert!(!attempt_days.is_empty(), "need at least one attempt day");
    let www = format!("www.{domain}");
    let mut best: Option<SeedScheme> = None;
    let mut reachable_rounds = 0u8;
    for &day in attempt_days {
        let mut round_reachable = false;
        match prober.probe_tls(&www, day) {
            ProbeResult::TlsValid => {
                round_reachable = true;
                best = Some(best.map_or(SeedScheme::HttpsWww, |b| b.min(SeedScheme::HttpsWww)));
            }
            ProbeResult::TlsInvalid | ProbeResult::TcpOpen => {
                round_reachable = true;
            }
            ProbeResult::Unreachable => {}
        }
        if best != Some(SeedScheme::HttpsWww) {
            match prober.probe_tcp(&www, day) {
                ProbeResult::TcpOpen | ProbeResult::TlsValid | ProbeResult::TlsInvalid => {
                    round_reachable = true;
                    best = Some(best.map_or(SeedScheme::HttpWww, |b| b.min(SeedScheme::HttpWww)));
                }
                ProbeResult::Unreachable => {}
            }
        }
        if round_reachable {
            reachable_rounds += 1;
        }
    }
    let (scheme, speculative) = match best {
        Some(s) => (s, false),
        None => (SeedScheme::HttpApex, true),
    };
    let url = match scheme {
        SeedScheme::HttpsWww => format!("https://www.{domain}/"),
        SeedScheme::HttpWww => format!("http://www.{domain}/"),
        SeedScheme::HttpApex => format!("http://{domain}/"),
    };
    SeedUrl {
        domain: domain.to_owned(),
        url,
        scheme,
        speculative,
        reachable_rounds,
    }
}

/// Resolve seeds for a whole toplist slice.
pub fn resolve_all(
    domains: impl IntoIterator<Item = String>,
    prober: &impl Prober,
    attempt_days: &[Day],
) -> Vec<SeedUrl> {
    domains
        .into_iter()
        .map(|d| resolve_seed(&d, prober, attempt_days))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Table-driven fake: maps host → (tls, tcp) results, optionally
    /// flipping to unreachable on specific days.
    struct FakeProber {
        tls: HashMap<String, ProbeResult>,
        tcp: HashMap<String, ProbeResult>,
        down_on: Vec<Day>,
    }

    impl FakeProber {
        fn new() -> FakeProber {
            FakeProber {
                tls: HashMap::new(),
                tcp: HashMap::new(),
                down_on: Vec::new(),
            }
        }
    }

    impl Prober for FakeProber {
        fn probe_tls(&self, host: &str, day: Day) -> ProbeResult {
            if self.down_on.contains(&day) {
                return ProbeResult::Unreachable;
            }
            *self.tls.get(host).unwrap_or(&ProbeResult::Unreachable)
        }
        fn probe_tcp(&self, host: &str, day: Day) -> ProbeResult {
            if self.down_on.contains(&day) {
                return ProbeResult::Unreachable;
            }
            *self.tcp.get(host).unwrap_or(&ProbeResult::Unreachable)
        }
    }

    fn days() -> Vec<Day> {
        let d0 = Day::from_ymd(2020, 1, 30);
        vec![d0, d0 + 3, d0 + 6]
    }

    #[test]
    fn https_preferred() {
        let mut p = FakeProber::new();
        p.tls
            .insert("www.example.com".into(), ProbeResult::TlsValid);
        p.tcp.insert("www.example.com".into(), ProbeResult::TcpOpen);
        let s = resolve_seed("example.com", &p, &days());
        assert_eq!(s.url, "https://www.example.com/");
        assert_eq!(s.scheme, SeedScheme::HttpsWww);
        assert!(!s.speculative);
        assert_eq!(s.reachable_rounds, 3);
    }

    #[test]
    fn invalid_cert_falls_back_to_http() {
        let mut p = FakeProber::new();
        p.tls
            .insert("www.example.com".into(), ProbeResult::TlsInvalid);
        p.tcp.insert("www.example.com".into(), ProbeResult::TcpOpen);
        let s = resolve_seed("example.com", &p, &days());
        assert_eq!(s.url, "http://www.example.com/");
        assert_eq!(s.scheme, SeedScheme::HttpWww);
        assert!(!s.speculative);
    }

    #[test]
    fn fully_unreachable_uses_apex_speculatively() {
        let p = FakeProber::new();
        let s = resolve_seed("dead.example", &p, &days());
        assert_eq!(s.url, "http://dead.example/");
        assert_eq!(s.scheme, SeedScheme::HttpApex);
        assert!(s.speculative);
        assert_eq!(s.reachable_rounds, 0);
    }

    #[test]
    fn retry_rounds_catch_temporary_outage() {
        let mut p = FakeProber::new();
        p.tls.insert("www.flaky.com".into(), ProbeResult::TlsValid);
        // Down on the first two attempts, up on the third.
        let ds = days();
        p.down_on = vec![ds[0], ds[1]];
        let s = resolve_seed("flaky.com", &p, &ds);
        assert_eq!(s.scheme, SeedScheme::HttpsWww);
        assert_eq!(s.reachable_rounds, 1);
        assert!(!s.speculative);
    }

    #[test]
    fn best_scheme_across_rounds_wins() {
        // TLS works only on day 3; TCP works always. HTTPS must still win.
        struct DayDependent;
        impl Prober for DayDependent {
            fn probe_tls(&self, _host: &str, day: Day) -> ProbeResult {
                if day == Day::from_ymd(2020, 2, 5) {
                    ProbeResult::TlsValid
                } else {
                    ProbeResult::Unreachable
                }
            }
            fn probe_tcp(&self, _host: &str, _day: Day) -> ProbeResult {
                ProbeResult::TcpOpen
            }
        }
        let ds = vec![
            Day::from_ymd(2020, 1, 30),
            Day::from_ymd(2020, 2, 2),
            Day::from_ymd(2020, 2, 5),
        ];
        let s = resolve_seed("example.org", &DayDependent, &ds);
        assert_eq!(s.scheme, SeedScheme::HttpsWww);
        assert_eq!(s.reachable_rounds, 3);
    }

    #[test]
    fn resolve_all_preserves_order() {
        let mut p = FakeProber::new();
        p.tls.insert("www.a.com".into(), ProbeResult::TlsValid);
        let seeds = resolve_all(vec!["a.com".to_owned(), "b.com".to_owned()], &p, &days());
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].domain, "a.com");
        assert_eq!(seeds[0].scheme, SeedScheme::HttpsWww);
        assert_eq!(seeds[1].domain, "b.com");
        assert_eq!(seeds[1].scheme, SeedScheme::HttpApex);
    }

    #[test]
    #[should_panic]
    fn requires_attempt_days() {
        let p = FakeProber::new();
        resolve_seed("x.com", &p, &[]);
    }
}
