//! Synthetic provider rankings.
//!
//! Tranco aggregates four provider lists whose rankings broadly agree but
//! differ in detail (Alexa is panel-based, Umbrella DNS-based, …). We
//! synthesize that disagreement: starting from a ground-truth popularity
//! order, each provider observes a *noisy* permutation of it, with noise
//! growing toward the tail — exactly the structure Scheitle et al. (IMC
//! 2018) report for real toplists.

use crate::tranco::ProviderList;
use consent_util::SeedTree;
use rand::Rng;

/// Configuration for one synthetic provider.
#[derive(Clone, Debug, PartialEq)]
pub struct ProviderConfig {
    /// Provider name (used for seed derivation, so renaming changes the
    /// noise realization).
    pub name: String,
    /// Relative rank-noise magnitude: a domain at true rank `r` appears
    /// near `r * (1 + noise * g)` where `g` is standard normal. Real lists
    /// have noise around 0.1–0.5.
    pub noise: f64,
    /// Fraction of the ground-truth tail this provider simply does not
    /// observe (dropped uniformly from the bottom half).
    pub coverage_loss: f64,
}

impl ProviderConfig {
    /// The four providers Tranco aggregates, with plausible noise levels.
    pub fn default_four() -> Vec<ProviderConfig> {
        vec![
            ProviderConfig {
                name: "alexa".into(),
                noise: 0.15,
                coverage_loss: 0.02,
            },
            ProviderConfig {
                name: "umbrella".into(),
                noise: 0.35,
                coverage_loss: 0.05,
            },
            ProviderConfig {
                name: "majestic".into(),
                noise: 0.25,
                coverage_loss: 0.03,
            },
            ProviderConfig {
                name: "quantcast".into(),
                noise: 0.45,
                coverage_loss: 0.10,
            },
        ]
    }
}

/// Generate a provider's observed ranking of `ground_truth` (true rank
/// order, best first). Deterministic in `(seed, config.name)`.
pub fn observe(ground_truth: &[String], config: &ProviderConfig, seed: SeedTree) -> ProviderList {
    let mut rng = seed.child("provider").child(&config.name).rng();
    let n = ground_truth.len();
    let mut keyed: Vec<(f64, &String)> = ground_truth
        .iter()
        .enumerate()
        .filter_map(|(i, d)| {
            let true_rank = (i + 1) as f64;
            // Tail coverage loss: drop bottom-half entries with the
            // configured probability.
            if i >= n / 2 && rng.gen::<f64>() < config.coverage_loss {
                return None;
            }
            let g = consent_stats::distributions::standard_normal(&mut rng);
            let observed = true_rank * (1.0 + config.noise * g).max(0.05);
            Some((observed, d))
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
    ProviderList::new(
        config.name.clone(),
        keyed.into_iter().map(|(_, d)| d.clone()).collect(),
    )
}

/// Generate all four default provider lists for a ground-truth ranking.
pub fn default_providers(ground_truth: &[String], seed: SeedTree) -> Vec<ProviderList> {
    ProviderConfig::default_four()
        .iter()
        .map(|c| observe(ground_truth, c, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tranco::{AggregationRule, Toplist};

    fn truth(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("site{i:05}.com")).collect()
    }

    #[test]
    fn observation_is_deterministic() {
        let gt = truth(500);
        let cfg = &ProviderConfig::default_four()[0];
        let a = observe(&gt, cfg, SeedTree::new(1));
        let b = observe(&gt, cfg, SeedTree::new(1));
        assert_eq!(a, b);
        let c = observe(&gt, cfg, SeedTree::new(2));
        assert_ne!(a.domains, c.domains);
    }

    #[test]
    fn providers_disagree_with_each_other() {
        let gt = truth(500);
        let lists = default_providers(&gt, SeedTree::new(3));
        assert_eq!(lists.len(), 4);
        assert_ne!(lists[0].domains, lists[1].domains);
        assert_ne!(lists[1].domains, lists[2].domains);
    }

    #[test]
    fn head_is_roughly_preserved() {
        let gt = truth(1000);
        let cfg = &ProviderConfig::default_four()[0]; // low noise
        let list = observe(&gt, cfg, SeedTree::new(4));
        // The true top-10 should mostly appear in the observed top-30.
        let head: Vec<&String> = list.domains.iter().take(30).collect();
        let recovered = gt[..10].iter().filter(|d| head.contains(d)).count();
        assert!(recovered >= 8, "only {recovered}/10 of head recovered");
    }

    #[test]
    fn coverage_loss_shrinks_list() {
        let gt = truth(2000);
        let lossy = ProviderConfig {
            name: "lossy".into(),
            noise: 0.1,
            coverage_loss: 0.5,
        };
        let list = observe(&gt, &lossy, SeedTree::new(5));
        assert!(list.len() < 2000);
        assert!(list.len() > 1200); // only bottom half is eligible to drop
    }

    #[test]
    fn aggregation_recovers_ground_truth_head() {
        let gt = truth(1000);
        let lists = default_providers(&gt, SeedTree::new(6));
        let toplist = Toplist::aggregate(&lists, AggregationRule::Dowdall);
        // Dowdall aggregation should put most of the true top-20 in the
        // aggregated top-40 despite per-provider noise.
        let top40: Vec<&str> = toplist.top(40).collect();
        let recovered = gt[..20]
            .iter()
            .filter(|d| top40.contains(&d.as_str()))
            .count();
        assert!(recovered >= 15, "only {recovered}/20 recovered");
    }
}
