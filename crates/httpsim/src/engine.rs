//! The page-load engine: turns (URL, day, vantage) into a [`Capture`].
//!
//! This is the simulator's stand-in for Google Chrome + Netograph
//! instrumentation. It is event-driven in simulated time: requests are
//! scheduled on a millisecond timeline, the idle/total timeouts of §3.5
//! cut the timeline off, and whatever requests fall inside the window
//! become the capture record. All Table 1 distortions arise here
//! mechanically — geo gating, anti-bot interstitials, and late-loading
//! CMP scripts that the aggressive timeout misses.

use crate::capture::{Capture, CaptureStatus, CookieRecord, DomSnapshot, RequestRecord};
use crate::vantage::{Timing, Vantage};
use consent_util::{Day, SeedTree, SimInstant};
use consent_webgraph::{
    AcceptWording, Cmp, DialogStyle, GeoBehavior, Reachability, SiteProfile, World,
};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Idle timeout under aggressive timing (§3.5: five seconds).
pub const IDLE_TIMEOUT_MS: u64 = 5_000;
/// Total page timeout (§3.5: 45 seconds).
pub const TOTAL_TIMEOUT_MS: u64 = 45_000;

/// The capture engine for one synthetic world.
pub struct Engine<'w> {
    world: &'w World,
    seed: SeedTree,
}

/// Options for a single capture.
#[derive(Clone, Copy, Debug, Default)]
pub struct CaptureOptions {
    /// Store a DOM snapshot (toplist crawls from the EU university).
    pub collect_dom: bool,
}

impl<'w> Engine<'w> {
    /// Create an engine over `world`. The seed isolates crawl-level
    /// randomness (request timings, asset counts) from world generation.
    pub fn new(world: &'w World, seed: SeedTree) -> Engine<'w> {
        Engine {
            world,
            seed: seed.child("httpsim"),
        }
    }

    /// The world under measurement.
    pub fn world(&self) -> &World {
        self.world
    }

    /// Crawl one URL.
    pub fn capture(&self, url: &str, day: Day, vantage: Vantage, opts: CaptureOptions) -> Capture {
        let _span = consent_telemetry::span("engine.capture");
        let _trace_span = consent_trace::span("page_load", |a| {
            a.push("url", url);
            a.push("vantage", vantage.label());
        });
        let capture = self.capture_inner(url, day, vantage, opts);
        if consent_trace::active() {
            // Per-request events are the hot loop of a traced capture;
            // the whole block is gated so a disabled (or trace-less) run
            // never iterates the request log here.
            for r in &capture.requests {
                consent_trace::event("request", |a| {
                    a.push("host", r.host.clone());
                    a.push("status", r.status.to_string());
                    a.push("ms", r.started.as_millis().to_string());
                    if r.third_party {
                        a.push("third_party", "1");
                    }
                });
            }
            if capture.final_host != split_url(url).0 {
                consent_trace::event("redirect", |a| {
                    a.push("to", capture.final_host.clone());
                });
            }
            consent_trace::event("page_load.status", |a| {
                a.push("status", capture.status.name());
                a.push("requests", capture.requests.len().to_string());
                a.push("bytes", capture.total_bytes().to_string());
            });
        }
        if consent_telemetry::enabled() {
            consent_telemetry::count_labeled(
                "engine.capture.outcome",
                &[
                    ("vantage", &vantage.label()),
                    ("status", capture.status.name()),
                ],
                1,
            );
            consent_telemetry::observe("engine.capture.requests", capture.requests.len() as u64);
            consent_telemetry::observe("engine.capture.bytes", capture.total_bytes());
            // Simulated page-load time vs. the wall time the span records.
            let sim_ms = capture
                .requests
                .iter()
                .map(|r| r.started.as_millis())
                .max()
                .unwrap_or(0);
            consent_telemetry::observe("engine.capture.sim_ms", sim_ms);
        }
        capture
    }

    fn capture_inner(
        &self,
        url: &str,
        day: Day,
        vantage: Vantage,
        opts: CaptureOptions,
    ) -> Capture {
        let (host, path) = split_url(url);
        let mut rng = self
            .seed
            .child(url)
            .child_idx(day.0 as u64)
            .child(&vantage.label())
            .rng();

        let Some(profile) = self.world.site_by_host(&host) else {
            return failed(url, &host, day, vantage, CaptureStatus::ConnectionFailed);
        };

        // Alias domains 301 to the canonical site; toplist-level redirects
        // land on another site entirely.
        let (profile, redirected) = match profile.reachability {
            Reachability::Unreachable => {
                return failed(url, &host, day, vantage, CaptureStatus::ConnectionFailed)
            }
            Reachability::NoValidHttp => {
                return failed(url, &host, day, vantage, CaptureStatus::ConnectionFailed)
            }
            Reachability::HttpError => {
                return failed(url, &host, day, vantage, CaptureStatus::HttpError)
            }
            Reachability::RedirectsTo(target) => (self.world.profile(target), true),
            Reachability::Ok => {
                let is_alias = profile
                    .alias
                    .as_deref()
                    .is_some_and(|a| host == a || host.ends_with(&format!(".{a}")));
                (Arc::clone(&profile), is_alias)
            }
        };

        let final_host = format!("www.{}", profile.domain);
        let final_url = format!("https://{final_host}{path}");

        // HTTP 451 to EU visitors (§3.5).
        if profile
            .behavior
            .as_ref()
            .is_some_and(|b| b.geo == GeoBehavior::Block451Eu)
            && vantage.location.appears_eu()
        {
            let mut c = failed(
                url,
                &final_host,
                day,
                vantage,
                CaptureStatus::LegallyBlocked,
            );
            c.final_url = final_url;
            c.requests.push(RequestRecord {
                url: c.final_url.clone(),
                host: final_host.clone(),
                status: 451,
                bytes: 512,
                started: SimInstant::ZERO,
                third_party: false,
            });
            return c;
        }

        // Anti-bot CDN interstitial for cloud crawlers (§3.5).
        if profile.behavior.as_ref().is_some_and(|b| b.anti_bot_cdn) && vantage.location.is_cloud()
        {
            let mut c = failed(
                url,
                &final_host,
                day,
                vantage,
                CaptureStatus::AntiBotInterstitial,
            );
            c.final_url = final_url;
            c.requests.push(RequestRecord {
                url: c.final_url.clone(),
                host: final_host.clone(),
                status: 403,
                bytes: 2_048,
                started: SimInstant::ZERO,
                third_party: false,
            });
            c.requests.push(RequestRecord {
                url: "https://challenge.cdn-shield.net/turnstile".into(),
                host: "challenge.cdn-shield.net".into(),
                status: 200,
                bytes: 12_288,
                started: SimInstant::from_millis(120),
                third_party: true,
            });
            return c;
        }

        self.load_page(
            url,
            &profile,
            redirected,
            &final_host,
            &final_url,
            &path,
            day,
            vantage,
            opts,
            &mut rng,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn load_page(
        &self,
        seed_url: &str,
        profile: &SiteProfile,
        redirected: bool,
        final_host: &str,
        final_url: &str,
        path: &str,
        day: Day,
        vantage: Vantage,
        opts: CaptureOptions,
        rng: &mut StdRng,
    ) -> Capture {
        let cutoff = match vantage.timing {
            Timing::Aggressive => IDLE_TIMEOUT_MS,
            Timing::Extended => TOTAL_TIMEOUT_MS,
        };
        let mut requests = Vec::new();
        let mut cookies = Vec::new();

        if redirected {
            let (h, _) = split_url(seed_url);
            requests.push(RequestRecord {
                url: seed_url.to_owned(),
                host: h,
                status: 301,
                bytes: 320,
                started: SimInstant::ZERO,
                third_party: false,
            });
        }
        requests.push(RequestRecord {
            url: final_url.to_owned(),
            host: final_host.to_owned(),
            status: 200,
            bytes: rng.gen_range(8_000..60_000),
            started: SimInstant::from_millis(if redirected { 180 } else { 0 }),
            third_party: false,
        });
        cookies.push(CookieRecord {
            name: "session".into(),
            host: final_host.to_owned(),
            value: format!("s{:016x}", rng.gen::<u64>()),
            third_party: false,
        });

        // First-party assets.
        let n_assets = rng.gen_range(2..8);
        for i in 0..n_assets {
            requests.push(RequestRecord {
                url: format!("https://{final_host}/static/asset{i}.js"),
                host: final_host.to_owned(),
                status: 200,
                bytes: rng.gen_range(1_000..40_000),
                started: SimInstant::from_millis(rng.gen_range(100..1_500)),
                third_party: false,
            });
        }

        // The privacy-policy subsite on some sites carries no external
        // scripts at all (§3.5 "Subsites").
        let bare_page = path == "/privacy"
            && profile
                .behavior
                .as_ref()
                .is_some_and(|b| b.bare_privacy_page);

        // Third-party trackers/ads, skewed bigger for popular sites.
        if !bare_page {
            let n_third = match profile.rank {
                0..=1_000 => rng.gen_range(4..14),
                1_001..=100_000 => rng.gen_range(2..9),
                _ => rng.gen_range(0..5),
            };
            for _ in 0..n_third {
                let host = THIRD_PARTY_POOL[rng.gen_range(0..THIRD_PARTY_POOL.len())];
                requests.push(RequestRecord {
                    url: format!("https://{host}/collect"),
                    host: host.to_owned(),
                    status: 200,
                    bytes: rng.gen_range(200..8_000),
                    started: SimInstant::from_millis(rng.gen_range(300..4_000)),
                    third_party: true,
                });
                if rng.gen::<f64>() < 0.5 {
                    cookies.push(CookieRecord {
                        name: "uid".into(),
                        host: host.to_owned(),
                        value: format!("u{:012x}", rng.gen::<u64>() & 0xFFFF_FFFF_FFFF),
                        third_party: true,
                    });
                }
            }
        }

        // The CMP embed.
        let cmp_now = profile.cmp_on(day);
        let mut dialog_visible = false;
        let mut visible_cmp = None;
        if let (Some(cmp), Some(behavior), false) = (cmp_now, profile.behavior.as_ref(), bare_page)
        {
            let embeds_here = match behavior.geo {
                GeoBehavior::EmbedAlways => true,
                // EU-only embeds become globally visible once the site
                // adapts to CCPA (§3.5: US coverage grows Jan→May 2020).
                GeoBehavior::EmbedOnlyEu => {
                    vantage.location.appears_eu() || behavior.ccpa_adapted.is_some_and(|d| d <= day)
                }
                GeoBehavior::HideFromEu => !vantage.location.appears_eu(),
                GeoBehavior::Block451Eu => true, // handled earlier for EU
            };
            let start_ms = if behavior.slow_load {
                rng.gen_range(6_000..12_000)
            } else {
                rng.gen_range(400..2_200)
            };
            if embeds_here && start_ms < cutoff {
                push_cmp_requests(&mut requests, cmp, start_ms, rng);
                visible_cmp = Some(cmp);
                if let Some(second) = behavior.second_cmp {
                    push_cmp_requests(&mut requests, second, start_ms + 150, rng);
                }
                // Dialog visibility: GDPR products show dialogs to EU
                // visitors; CCPA-tailored configurations show them in the
                // US instead.
                dialog_visible = if vantage.location.appears_eu() {
                    behavior.geo != GeoBehavior::HideFromEu
                } else {
                    behavior.geo == GeoBehavior::HideFromEu
                        || behavior.geo == GeoBehavior::EmbedAlways
                            && matches!(
                                behavior.dialog,
                                DialogStyle::OptOutButtonBanner { .. }
                                    | DialogStyle::FooterLinkOnly
                            )
                };
                if dialog_visible {
                    // A fresh crawler never has a stored decision, so no
                    // consent cookie — but the CMP sets a "seen" marker.
                    cookies.push(CookieRecord {
                        name: "euconsent-seen".into(),
                        host: cmp.indicator_hostname().to_owned(),
                        value: "1".into(),
                        third_party: true,
                    });
                }
            }
        }

        // Trim to the timeout window and sort by start time.
        requests.retain(|r| r.started.as_millis() < cutoff);
        requests.sort_by_key(|r| r.started);

        let dom = opts
            .collect_dom
            .then(|| dom_snapshot(profile, visible_cmp, dialog_visible, rng));

        Capture {
            seed_url: seed_url.to_owned(),
            final_url: final_url.to_owned(),
            final_host: final_host.to_owned(),
            day,
            vantage,
            status: CaptureStatus::Ok,
            requests,
            cookies,
            dialog_visible,
            dom,
        }
    }
}

/// Stable pool of synthetic third-party tracker hosts.
const THIRD_PARTY_POOL: [&str; 12] = [
    "metrics.analytico.net",
    "pixel.adgrid.example",
    "sync.cohortworks.example",
    "tags.primeserve.example",
    "cdn.fontlib.example",
    "beacon.reachmob.example",
    "ads.vertexlab.example",
    "rtb.sparkmedia.example",
    "id.deltagraph.example",
    "stats.atlassense.example",
    "img.kilopix.example",
    "api.signalscope.example",
];

fn push_cmp_requests(requests: &mut Vec<RequestRecord>, cmp: Cmp, start_ms: u64, rng: &mut StdRng) {
    let host = cmp.indicator_hostname();
    requests.push(RequestRecord {
        url: format!("https://{host}/consent.js"),
        host: host.to_owned(),
        status: 200,
        bytes: rng.gen_range(20_000..90_000),
        started: SimInstant::from_millis(start_ms),
        third_party: true,
    });
    requests.push(RequestRecord {
        url: format!("https://{host}/v2/config.json"),
        host: host.to_owned(),
        status: 200,
        bytes: rng.gen_range(2_000..9_000),
        started: SimInstant::from_millis(start_ms + rng.gen_range(50..400)),
        third_party: true,
    });
}

fn dom_snapshot(
    profile: &SiteProfile,
    cmp: Option<Cmp>,
    dialog_visible: bool,
    rng: &mut StdRng,
) -> DomSnapshot {
    let Some(behavior) = profile.behavior.as_ref().filter(|_| cmp.is_some()) else {
        return DomSnapshot {
            accept_button_text: None,
            secondary_button_text: None,
            dialog_css_classes: Vec::new(),
            body_text: format!("Welcome to {}. Latest articles below.", profile.domain),
            footer_privacy_link: Some("Privacy Policy".into()),
        };
    };
    let accept = if dialog_visible {
        Some(match behavior.wording {
            AcceptWording::AgreeVariant => {
                const VARIANTS: [&str; 4] = ["I ACCEPT", "I agree", "Accept all", "I consent"];
                VARIANTS[rng.gen_range(0..VARIANTS.len())].to_owned()
            }
            AcceptWording::FreeForm => {
                const VARIANTS: [&str; 3] = ["Whatever", "Sounds good", "Accept and move on"];
                VARIANTS[rng.gen_range(0..VARIANTS.len())].to_owned()
            }
        })
    } else {
        None
    };
    let secondary = dialog_visible.then(|| secondary_text(behavior.dialog).to_owned());
    let footer = match behavior.dialog {
        DialogStyle::FooterLinkOnly => {
            const LINKS: [&str; 3] = ["Do Not Sell", "California Privacy Rights", "Privacy Policy"];
            Some(LINKS[rng.gen_range(0..LINKS.len())].to_owned())
        }
        _ => Some("Privacy Policy".to_owned()),
    };
    let body = if dialog_visible {
        "We value your privacy. We and our partners use technologies, such as cookies, \
         and process personal data. Click below to consent."
            .to_owned()
    } else {
        format!("Welcome to {}. Latest articles below.", profile.domain)
    };
    DomSnapshot {
        accept_button_text: accept,
        secondary_button_text: secondary,
        dialog_css_classes: css_classes(cmp.expect("behavior implies cmp"), behavior.dialog),
        body_text: body,
        footer_privacy_link: footer,
    }
}

fn secondary_text(style: DialogStyle) -> &'static str {
    match style {
        DialogStyle::ConventionalBanner => "Cookie Settings",
        DialogStyle::OptOutButtonBanner { needs_confirm: _ } => "Do Not Sell",
        DialogStyle::ScriptBanner => "Reject/Manage Scripts",
        DialogStyle::FooterLinkOnly => "",
        DialogStyle::DirectReject => "I DO NOT ACCEPT",
        DialogStyle::MoreOptions => "MORE OPTIONS",
        DialogStyle::InstantOptOut => "Decline All",
        DialogStyle::MultiPartnerOptOut => "Opt out of all",
        DialogStyle::AutonomyButton => "Manage Preferences",
        DialogStyle::NoControlLink => "Learn more",
        DialogStyle::CustomApiOnly => "Options",
    }
}

fn css_classes(cmp: Cmp, style: DialogStyle) -> Vec<String> {
    if style == DialogStyle::CustomApiOnly {
        // API-only sites draw their own dialog: no vendor CSS at all.
        return vec!["site-consent-banner".into()];
    }
    match cmp {
        Cmp::OneTrust => vec!["onetrust-banner-sdk".into(), "ot-sdk-container".into()],
        Cmp::Quantcast => vec!["qc-cmp2-container".into()],
        Cmp::TrustArc => vec!["truste_box_overlay".into()],
        Cmp::Cookiebot => vec!["CybotCookiebotDialog".into()],
        Cmp::LiveRamp => vec!["faktor-io-modal".into()],
        Cmp::Crownpeak => vec!["evidon-banner".into()],
    }
}

fn failed(url: &str, host: &str, day: Day, vantage: Vantage, status: CaptureStatus) -> Capture {
    Capture {
        seed_url: url.to_owned(),
        final_url: url.to_owned(),
        final_host: host.to_owned(),
        day,
        vantage,
        status,
        requests: Vec::new(),
        cookies: Vec::new(),
        dialog_visible: false,
        dom: None,
    }
}

/// Split a URL into (host, path). Tolerates missing scheme.
pub fn split_url(url: &str) -> (String, String) {
    let rest = url
        .strip_prefix("https://")
        .or_else(|| url.strip_prefix("http://"))
        .unwrap_or(url);
    match rest.find('/') {
        Some(i) => (rest[..i].to_owned(), rest[i..].to_owned()),
        None => (rest.to_owned(), "/".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 20_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    fn engine(w: &World) -> Engine<'_> {
        Engine::new(w, SeedTree::new(1))
    }

    fn find_adopter(w: &World, day: Day) -> Arc<SiteProfile> {
        (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        !b.anti_bot_cdn && !b.slow_load && b.geo == GeoBehavior::EmbedAlways
                    })
            })
            .expect("world contains a clean adopter")
    }

    #[test]
    fn url_splitting() {
        assert_eq!(
            split_url("https://a.com/x?y=1"),
            ("a.com".into(), "/x?y=1".into())
        );
        assert_eq!(split_url("http://a.com"), ("a.com".into(), "/".into()));
        assert_eq!(split_url("a.com/p"), ("a.com".into(), "/p".into()));
    }

    #[test]
    fn capture_is_deterministic() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = find_adopter(&w, day);
        let e = engine(&w);
        let url = format!("https://{}/", p.domain);
        let a = e.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        let b = e.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn adopter_contacts_indicator_host() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = find_adopter(&w, day);
        let cmp = p.cmp_on(day).unwrap();
        let e = engine(&w);
        let c = e.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::table1_columns()[3], // EU university, extended
            CaptureOptions::default(),
        );
        assert_eq!(c.status, CaptureStatus::Ok);
        assert!(
            c.contacted(cmp.indicator_hostname()),
            "expected {} in {:?}",
            cmp.indicator_hostname(),
            c.hosts()
        );
        assert!(c.dialog_visible);
    }

    #[test]
    fn unknown_host_fails() {
        let w = world();
        let e = engine(&w);
        let c = e.capture(
            "https://totally-unknown.example/",
            Day::from_ymd(2020, 5, 15),
            Vantage::eu_cloud(),
            CaptureOptions::default(),
        );
        assert_eq!(c.status, CaptureStatus::ConnectionFailed);
        assert!(!c.usable());
    }

    #[test]
    fn anti_bot_blocks_cloud_but_not_university() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| b.anti_bot_cdn)
            })
            .expect("anti-bot adopter exists");
        let e = engine(&w);
        let url = format!("https://{}/", p.domain);
        let cloud = e.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        assert_eq!(cloud.status, CaptureStatus::AntiBotInterstitial);
        assert!(cloud.contacted("challenge.cdn-shield.net"));
        let uni = e.capture(
            &url,
            day,
            Vantage::table1_columns()[3],
            CaptureOptions::default(),
        );
        assert_eq!(uni.status, CaptureStatus::Ok);
    }

    #[test]
    fn slow_load_missed_only_under_aggressive_timing() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        b.slow_load && !b.anti_bot_cdn && b.geo == GeoBehavior::EmbedAlways
                    })
            })
            .expect("slow adopter exists");
        let cmp_host = p.cmp_on(day).unwrap().indicator_hostname();
        let e = engine(&w);
        let url = format!("https://{}/", p.domain);
        let cols = Vantage::table1_columns();
        let fast = e.capture(&url, day, cols[2], CaptureOptions::default());
        let slow = e.capture(&url, day, cols[3], CaptureOptions::default());
        assert!(!fast.contacted(cmp_host), "aggressive timing should miss");
        assert!(slow.contacted(cmp_host), "extended timing should catch");
    }

    #[test]
    fn geo_gated_site_invisible_from_us() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        b.geo == GeoBehavior::EmbedOnlyEu
                            && !b.anti_bot_cdn
                            && !b.slow_load
                            && b.ccpa_adapted.is_none()
                    })
            })
            .expect("EU-only adopter exists");
        let cmp_host = p.cmp_on(day).unwrap().indicator_hostname();
        let e = engine(&w);
        let url = format!("https://{}/", p.domain);
        let us = e.capture(&url, day, Vantage::us_cloud(), CaptureOptions::default());
        let eu = e.capture(&url, day, Vantage::eu_cloud(), CaptureOptions::default());
        assert!(!us.contacted(cmp_host));
        assert!(eu.contacted(cmp_host));
    }

    #[test]
    fn bare_privacy_page_has_no_cmp() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| {
                p.cmp_on(day).is_some()
                    && p.reachability == Reachability::Ok
                    && p.behavior.as_ref().is_some_and(|b| {
                        b.bare_privacy_page && !b.anti_bot_cdn && b.geo == GeoBehavior::EmbedAlways
                    })
            })
            .expect("bare-privacy adopter exists");
        let cmp_host = p.cmp_on(day).unwrap().indicator_hostname();
        let e = engine(&w);
        let landing = e.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::table1_columns()[3],
            CaptureOptions::default(),
        );
        let privacy = e.capture(
            &format!("https://{}/privacy", p.domain),
            day,
            Vantage::table1_columns()[3],
            CaptureOptions::default(),
        );
        assert!(landing.contacted(cmp_host));
        assert!(!privacy.contacted(cmp_host));
        assert_eq!(privacy.third_party_requests(), 0);
    }

    #[test]
    fn dom_snapshot_collected_on_request() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = find_adopter(&w, day);
        let e = engine(&w);
        let c = e.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::table1_columns()[3],
            CaptureOptions { collect_dom: true },
        );
        let dom = c.dom.expect("DOM requested");
        assert!(dom.accept_button_text.is_some());
        assert!(dom.body_text.contains("privacy") || dom.body_text.contains("cookies"));
        let no_dom = e.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::table1_columns()[3],
            CaptureOptions::default(),
        );
        assert!(no_dom.dom.is_none());
    }

    #[test]
    fn alias_host_redirects_to_canonical() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| p.alias.is_some() && p.reachability == Reachability::Ok)
            .expect("aliased site exists");
        let e = engine(&w);
        let c = e.capture(
            &format!("https://{}/", p.alias.as_ref().unwrap()),
            day,
            Vantage::eu_cloud(),
            CaptureOptions::default(),
        );
        assert_eq!(c.status, CaptureStatus::Ok);
        assert_eq!(c.final_host, format!("www.{}", p.domain));
        assert_eq!(c.requests[0].status, 301);
    }

    #[test]
    fn non_adopter_never_contacts_cmp_hosts() {
        let w = world();
        let day = Day::from_ymd(2020, 5, 15);
        let p = (1..=20_000)
            .map(|r| w.profile(r))
            .find(|p| !p.trajectory.ever_adopts() && p.reachability == Reachability::Ok)
            .unwrap();
        let e = engine(&w);
        let c = e.capture(
            &format!("https://{}/", p.domain),
            day,
            Vantage::table1_columns()[3],
            CaptureOptions::default(),
        );
        for cmp in consent_webgraph::ALL_CMPS {
            assert!(!c.contacted(cmp.indicator_hostname()));
        }
        assert!(!c.dialog_visible);
    }
}
