//! # consent-httpsim
//!
//! A deterministic browser/page-load simulator over the synthetic web.
//! It emits the same observables the Netograph platform records per crawl
//! — HTTP requests, cookies, dialog visibility, DOM snapshots — including
//! the §3.5 measurement distortions (geo gating, anti-bot CDN
//! interstitials for cloud address space, late CMP loads cut off by
//! aggressive timeouts). The analysis pipeline consumes only [`Capture`]
//! records, making this crate the substitution boundary between the
//! simulated web and the paper's real methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod engine;
pub mod prober;
pub mod vantage;

pub use capture::{Capture, CaptureStatus, CookieRecord, DomSnapshot, RequestRecord};
pub use engine::{split_url, CaptureOptions, Engine, IDLE_TIMEOUT_MS, TOTAL_TIMEOUT_MS};
pub use prober::WorldProber;
pub use vantage::{Language, Location, Timing, Vantage};
