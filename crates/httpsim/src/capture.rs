//! Capture records — the schema the Netograph platform stores per crawl.
//!
//! §3.2: "For every capture, Netograph collects the following data points
//! … HTTP headers … for every domain in a capture, its relation to the
//! main page, all cookies … a screenshot of the visible area." The
//! analysis pipeline consumes only these records, never the synthetic web
//! directly, so the substitution boundary is exactly this module.

use crate::vantage::Vantage;
use consent_util::{Day, SimInstant};

/// One HTTP request observed during a page load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// Full URL requested.
    pub url: String,
    /// Hostname component.
    pub host: String,
    /// Response status (0 if the request never completed).
    pub status: u16,
    /// Compressed transfer size in bytes.
    pub bytes: u64,
    /// When the request started, relative to navigation start.
    pub started: SimInstant,
    /// True if the host differs from the main document's eTLD+1.
    pub third_party: bool,
}

/// One cookie set during a page load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CookieRecord {
    /// Cookie name.
    pub name: String,
    /// Host that set it.
    pub host: String,
    /// Value (consent cookies carry a TCF consent string).
    pub value: String,
    /// True if set by a third-party context.
    pub third_party: bool,
}

/// Why a capture ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaptureStatus {
    /// Page loaded normally (possibly cut short by the idle timeout).
    Ok,
    /// Total page timeout hit before the document finished.
    Timeout,
    /// An anti-bot CDN served an interstitial instead of the site.
    AntiBotInterstitial,
    /// HTTP 451 Unavailable For Legal Reasons (geo-blocked, §3.5).
    LegallyBlocked,
    /// HTTP error status from the origin.
    HttpError,
    /// TCP/TLS connection failed.
    ConnectionFailed,
    /// The connection was reset mid-load (transient network fault; the
    /// retry schedule of §3.2 exists for exactly this case).
    ConnectionReset,
    /// The capture is present but incomplete: a partial request log
    /// and/or a missing DOM snapshot. §3.5 requires these to be counted
    /// as degraded rather than silently analyzed as clean pages.
    Truncated,
}

impl CaptureStatus {
    /// Stable name for telemetry labels and reports.
    pub fn name(&self) -> &'static str {
        match self {
            CaptureStatus::Ok => "Ok",
            CaptureStatus::Timeout => "Timeout",
            CaptureStatus::AntiBotInterstitial => "AntiBotInterstitial",
            CaptureStatus::LegallyBlocked => "LegallyBlocked",
            CaptureStatus::HttpError => "HttpError",
            CaptureStatus::ConnectionFailed => "ConnectionFailed",
            CaptureStatus::ConnectionReset => "ConnectionReset",
            CaptureStatus::Truncated => "Truncated",
        }
    }

    /// True if a capture with this status carries usable page content.
    pub fn usable(&self) -> bool {
        matches!(
            self,
            CaptureStatus::Ok | CaptureStatus::Timeout | CaptureStatus::Truncated
        )
    }

    /// True if the content is usable but incomplete (cut off or
    /// truncated): analyzed, but reported separately per §3.5.
    pub fn degraded(&self) -> bool {
        matches!(self, CaptureStatus::Timeout | CaptureStatus::Truncated)
    }
}

/// DOM-derived observations, stored only for toplist crawls from the EU
/// university vantage (§3.2: "we additionally stored the browser's DOM
/// tree including the computed CSS styles").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomSnapshot {
    /// Visible text of the first (accept) dialog button, if any dialog.
    pub accept_button_text: Option<String>,
    /// Visible text of the second button/link, if present.
    pub secondary_button_text: Option<String>,
    /// CSS class fragments observed on the dialog container.
    pub dialog_css_classes: Vec<String>,
    /// Page body text excerpt (for GDPR-phrase search).
    pub body_text: String,
    /// A privacy-related link in the page footer, if present.
    pub footer_privacy_link: Option<String>,
}

/// One complete crawl of one URL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capture {
    /// The URL submitted to the queue.
    pub seed_url: String,
    /// The final URL after redirects, as in the address bar.
    pub final_url: String,
    /// Hostname of `final_url`.
    pub final_host: String,
    /// Day the capture ran.
    pub day: Day,
    /// Crawl configuration.
    pub vantage: Vantage,
    /// Outcome.
    pub status: CaptureStatus,
    /// All requests, in start order.
    pub requests: Vec<RequestRecord>,
    /// All cookies present at the end of the load.
    pub cookies: Vec<CookieRecord>,
    /// Whether a consent dialog was visible in the screenshot.
    pub dialog_visible: bool,
    /// DOM snapshot (toplist EU-university crawls only).
    pub dom: Option<DomSnapshot>,
}

impl Capture {
    /// Hosts contacted during the load (deduplicated, order preserved).
    pub fn hosts(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.requests {
            if !seen.contains(&r.host.as_str()) {
                seen.push(r.host.as_str());
            }
        }
        seen
    }

    /// True if any request went to `host`.
    pub fn contacted(&self, host: &str) -> bool {
        self.requests.iter().any(|r| r.host == host)
    }

    /// Total compressed bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.bytes).sum()
    }

    /// Number of third-party requests.
    pub fn third_party_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.third_party).count()
    }

    /// True if the capture produced usable page content.
    pub fn usable(&self) -> bool {
        self.status.usable()
    }

    /// True if the capture is usable but incomplete: the load was cut
    /// off (timeout) or the record was truncated. Degraded captures are
    /// analyzed, but §3.5 accounting must report them separately.
    pub fn degraded(&self) -> bool {
        self.status.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vantage::Vantage;

    fn req(host: &str, third_party: bool, bytes: u64) -> RequestRecord {
        RequestRecord {
            url: format!("https://{host}/x"),
            host: host.to_owned(),
            status: 200,
            bytes,
            started: SimInstant::ZERO,
            third_party,
        }
    }

    fn capture_with(requests: Vec<RequestRecord>) -> Capture {
        Capture {
            seed_url: "https://a.com/".into(),
            final_url: "https://a.com/".into(),
            final_host: "a.com".into(),
            day: Day::from_ymd(2020, 5, 15),
            vantage: Vantage::eu_cloud(),
            status: CaptureStatus::Ok,
            requests,
            cookies: vec![],
            dialog_visible: false,
            dom: None,
        }
    }

    #[test]
    fn host_dedup_and_queries() {
        let c = capture_with(vec![
            req("a.com", false, 1000),
            req("cdn.cookielaw.org", true, 300),
            req("a.com", false, 200),
        ]);
        assert_eq!(c.hosts(), ["a.com", "cdn.cookielaw.org"]);
        assert!(c.contacted("cdn.cookielaw.org"));
        assert!(!c.contacted("consent.trustarc.com"));
        assert_eq!(c.total_bytes(), 1500);
        assert_eq!(c.third_party_requests(), 1);
        assert!(c.usable());
    }

    #[test]
    fn unusable_statuses() {
        let mut c = capture_with(vec![]);
        for s in [
            CaptureStatus::AntiBotInterstitial,
            CaptureStatus::LegallyBlocked,
            CaptureStatus::HttpError,
            CaptureStatus::ConnectionFailed,
            CaptureStatus::ConnectionReset,
        ] {
            c.status = s;
            assert!(!c.usable(), "{s:?} should be unusable");
        }
        c.status = CaptureStatus::Timeout;
        assert!(c.usable());
        assert!(c.degraded());
        c.status = CaptureStatus::Truncated;
        assert!(c.usable());
        assert!(c.degraded());
        c.status = CaptureStatus::Ok;
        assert!(c.usable());
        assert!(!c.degraded());
    }
}
