//! Crawl vantage points and browser configurations.
//!
//! Table 1 measures the Tranco 10k from six configurations: US cloud,
//! EU cloud, and an EU university network with default timing, extended
//! timing, and two browser-language variants. The measured CMP counts
//! differ systematically by location, address space, and timing — that
//! is the paper's §3.5 reliability analysis, and this module names the
//! axes.

use std::fmt;

/// Where the crawler runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Location {
    /// US datacenter of a public cloud.
    UsCloud,
    /// EU datacenter of a public cloud.
    EuCloud,
    /// European university network (residential-grade address space).
    EuUniversity,
}

impl Location {
    /// True if the visitor appears to be in the EU.
    pub fn appears_eu(self) -> bool {
        matches!(self, Location::EuCloud | Location::EuUniversity)
    }

    /// True if the address space belongs to a public cloud — the trigger
    /// for anti-bot CDN interstitials (§3.5: "the use of public cloud
    /// infrastructure makes us miss about 10 % of all CMP dialogs").
    pub fn is_cloud(self) -> bool {
        matches!(self, Location::UsCloud | Location::EuCloud)
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Location::UsCloud => "US cloud",
            Location::EuCloud => "EU cloud",
            Location::EuUniversity => "EU university",
        })
    }
}

/// Page-load timeout regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Timing {
    /// Netograph's production settings: 5 s idle timeout, 45 s total
    /// (§3.5 "Crawler Timeouts"). Misses late-loading CMP resources.
    Aggressive,
    /// Relaxed timeouts used for the toplist control crawls.
    Extended,
}

/// Preferred browser language (found to have no significant effect —
/// which the simulation reproduces).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Language {
    /// en-US (the crawler default).
    EnUs,
    /// German.
    De,
    /// British English.
    EnGb,
}

/// A complete crawl configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Vantage {
    /// Network location.
    pub location: Location,
    /// Timeout regime.
    pub timing: Timing,
    /// Browser language.
    pub language: Language,
}

impl Vantage {
    /// Netograph's production US-cloud configuration.
    pub fn us_cloud() -> Vantage {
        Vantage {
            location: Location::UsCloud,
            timing: Timing::Aggressive,
            language: Language::EnUs,
        }
    }

    /// Netograph's production EU-cloud configuration.
    pub fn eu_cloud() -> Vantage {
        Vantage {
            location: Location::EuCloud,
            timing: Timing::Aggressive,
            language: Language::EnUs,
        }
    }

    /// The six Table 1 configurations, in column order.
    pub fn table1_columns() -> [Vantage; 6] {
        [
            Vantage::us_cloud(),
            Vantage::eu_cloud(),
            Vantage {
                location: Location::EuUniversity,
                timing: Timing::Aggressive,
                language: Language::EnUs,
            },
            Vantage {
                location: Location::EuUniversity,
                timing: Timing::Extended,
                language: Language::EnUs,
            },
            Vantage {
                location: Location::EuUniversity,
                timing: Timing::Extended,
                language: Language::De,
            },
            Vantage {
                location: Location::EuUniversity,
                timing: Timing::Extended,
                language: Language::EnGb,
            },
        ]
    }

    /// Short column label for table output.
    pub fn label(&self) -> String {
        let loc = match self.location {
            Location::UsCloud => "US☁",
            Location::EuCloud => "EU☁",
            Location::EuUniversity => "EUuni",
        };
        let timing = match self.timing {
            Timing::Aggressive => "fast",
            Timing::Extended => "ext",
        };
        let lang = match self.language {
            Language::EnUs => "en-US",
            Language::De => "de",
            Language::EnGb => "en-GB",
        };
        format!("{loc}/{timing}/{lang}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geography_flags() {
        assert!(!Location::UsCloud.appears_eu());
        assert!(Location::EuCloud.appears_eu());
        assert!(Location::EuUniversity.appears_eu());
        assert!(Location::UsCloud.is_cloud());
        assert!(Location::EuCloud.is_cloud());
        assert!(!Location::EuUniversity.is_cloud());
    }

    #[test]
    fn table1_has_six_distinct_columns() {
        let cols = Vantage::table1_columns();
        for (i, a) in cols.iter().enumerate() {
            for b in cols.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(cols[0].location, Location::UsCloud);
        assert_eq!(cols[2].timing, Timing::Aggressive);
        assert_eq!(cols[3].timing, Timing::Extended);
        assert_eq!(cols[4].language, Language::De);
    }

    #[test]
    fn labels_are_unique() {
        let cols = Vantage::table1_columns();
        let labels: Vec<String> = cols.iter().map(Vantage::label).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(format!("{}", Location::UsCloud).contains("US"));
    }
}
