//! Connectivity oracle backed by the synthetic web.
//!
//! Implements [`consent_toplist::Prober`] so the paper's seed-URL
//! resolution ladder (§3.2) can run against the simulated internet:
//! reachable sites mostly offer valid TLS on `www.`, a minority are
//! HTTP-only, and the §3.5 missing-data classes never answer.

use consent_toplist::{ProbeResult, Prober};
use consent_util::{Day, SeedTree};
use consent_webgraph::{Reachability, World};

/// Share of reachable sites with a valid certificate on `www.<domain>`.
const HTTPS_SHARE: f64 = 0.86;
/// Share of the remainder that still answer on port 80.
const HTTP_ONLY_SHARE: f64 = 0.85;

/// A [`Prober`] over a [`World`].
pub struct WorldProber<'w> {
    world: &'w World,
    seed: SeedTree,
    /// Per-day outage probability (temporarily unavailable domains that
    /// the paper's three retry rounds are designed to catch).
    pub flakiness: f64,
}

impl<'w> WorldProber<'w> {
    /// Create a prober with the default 2 % per-round flakiness.
    pub fn new(world: &'w World, seed: SeedTree) -> WorldProber<'w> {
        WorldProber {
            world,
            seed: seed.child("prober"),
            flakiness: 0.02,
        }
    }

    fn site_class(&self, host: &str) -> SiteClass {
        let bare = host.strip_prefix("www.").unwrap_or(host);
        match self.world.site_by_host(bare) {
            None => SiteClass::Nonexistent,
            Some(p) => match p.reachability {
                Reachability::Unreachable => SiteClass::Dead,
                Reachability::NoValidHttp => SiteClass::Dead,
                Reachability::HttpError | Reachability::RedirectsTo(_) | Reachability::Ok => {
                    let u = self.seed.child(&p.domain).child("tls").unit_f64();
                    if u < HTTPS_SHARE {
                        SiteClass::Https
                    } else if u < HTTPS_SHARE + (1.0 - HTTPS_SHARE) * HTTP_ONLY_SHARE {
                        SiteClass::HttpOnly
                    } else {
                        SiteClass::BadTls
                    }
                }
            },
        }
    }

    fn down_today(&self, host: &str, day: Day) -> bool {
        self.seed
            .child(host)
            .child_idx(day.0 as u64)
            .child("outage")
            .unit_f64()
            < self.flakiness
    }
}

enum SiteClass {
    Https,
    HttpOnly,
    BadTls,
    Dead,
    Nonexistent,
}

impl Prober for WorldProber<'_> {
    fn probe_tls(&self, host: &str, day: Day) -> ProbeResult {
        if self.down_today(host, day) {
            return ProbeResult::Unreachable;
        }
        match self.site_class(host) {
            SiteClass::Https => ProbeResult::TlsValid,
            SiteClass::BadTls => ProbeResult::TlsInvalid,
            SiteClass::HttpOnly => ProbeResult::Unreachable,
            SiteClass::Dead | SiteClass::Nonexistent => ProbeResult::Unreachable,
        }
    }

    fn probe_tcp(&self, host: &str, day: Day) -> ProbeResult {
        if self.down_today(host, day) {
            return ProbeResult::Unreachable;
        }
        match self.site_class(host) {
            SiteClass::Https | SiteClass::HttpOnly | SiteClass::BadTls => ProbeResult::TcpOpen,
            SiteClass::Dead | SiteClass::Nonexistent => ProbeResult::Unreachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_toplist::{resolve_seed, SeedScheme};
    use consent_webgraph::{AdoptionConfig, WorldConfig};

    fn world() -> World {
        World::new(WorldConfig {
            n_sites: 5_000,
            seed: 11,
            adoption: AdoptionConfig::default(),
        })
    }

    fn days() -> Vec<Day> {
        let d = Day::from_ymd(2020, 1, 30);
        vec![d, d + 3, d + 6]
    }

    #[test]
    fn most_sites_resolve_https() {
        let w = world();
        let p = WorldProber::new(&w, SeedTree::new(3));
        let mut https = 0;
        let mut total = 0;
        for rank in 1..=1_000 {
            let prof = w.profile(rank);
            if prof.reachability != Reachability::Ok {
                continue;
            }
            total += 1;
            let s = resolve_seed(&prof.domain, &p, &days());
            if s.scheme == SeedScheme::HttpsWww {
                https += 1;
            }
            assert!(!s.speculative);
        }
        let frac = f64::from(https) / f64::from(total);
        assert!((frac - HTTPS_SHARE).abs() < 0.05, "https share {frac}");
    }

    #[test]
    fn dead_sites_are_speculative_apex() {
        let w = world();
        let p = WorldProber::new(&w, SeedTree::new(3));
        let dead = (1..=5_000)
            .map(|r| w.profile(r))
            .find(|pr| pr.reachability == Reachability::Unreachable)
            .unwrap();
        let s = resolve_seed(&dead.domain, &p, &days());
        assert!(s.speculative);
        assert_eq!(s.scheme, SeedScheme::HttpApex);
        assert_eq!(s.reachable_rounds, 0);
    }

    #[test]
    fn nonexistent_hosts_unreachable() {
        let w = world();
        let p = WorldProber::new(&w, SeedTree::new(3));
        assert_eq!(
            p.probe_tls("www.not-in-world.example", days()[0]),
            ProbeResult::Unreachable
        );
        assert_eq!(
            p.probe_tcp("www.not-in-world.example", days()[0]),
            ProbeResult::Unreachable
        );
    }

    #[test]
    fn flakiness_recovered_by_retries() {
        let w = world();
        let mut p = WorldProber::new(&w, SeedTree::new(3));
        p.flakiness = 0.5; // very flaky network
        let prof = (1..=5_000)
            .map(|r| w.profile(r))
            .find(|pr| pr.reachability == Reachability::Ok)
            .unwrap();
        // With 6 attempts the site is almost surely caught at least once.
        let d = Day::from_ymd(2020, 1, 30);
        let many: Vec<Day> = (0..6).map(|i| d + i * 2).collect();
        let s = resolve_seed(&prof.domain, &p, &many);
        assert!(s.reachable_rounds >= 1);
    }
}
