//! Per-experiment run reports.
//!
//! A [`RunReport`] wraps an experiment invocation: it snapshots the
//! registry before and after, times the wall clock, and condenses the
//! delta into the paper's §3.5 quality columns — how many captures were
//! recorded, with which `CaptureStatus`, from which vantage location.
//! The capture counts are read from the `capture_db.insert` counter
//! family that `consent-crawler` maintains, so a report's totals
//! reconcile exactly with `CaptureDb` row counts.

use crate::registry::{parse_key, Registry, Snapshot};
use consent_util::table::{thousands, Table};
use consent_util::Json;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The counter family instrumented in `CaptureDb::insert`, labeled
/// with `location` and `status`.
pub const CAPTURE_FAMILY: &str = "capture_db.insert";

/// Wall time plus metric deltas for one experiment run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Experiment name (e.g. `fig6`).
    pub name: String,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Every metric that changed during the run.
    pub delta: Snapshot,
}

impl RunReport {
    /// Run `f` against `registry`, capturing timing and metric deltas.
    ///
    /// # Contract: one window at a time
    ///
    /// A report is a *snapshot delta*: everything recorded into
    /// `registry` between the two snapshots is attributed to this run,
    /// regardless of which thread recorded it. The report is therefore
    /// only meaningful if this collect window is the registry's sole
    /// source of traffic — do not run two `collect` calls concurrently
    /// against the same registry (including the global one), and do not
    /// nest them: overlapping windows silently attribute each other's
    /// metrics to both reports. Debug builds enforce this with an
    /// assertion via [`Registry::begin_collect`]; release builds only
    /// track the open-window count ([`Registry::open_collects`]).
    ///
    /// Traffic from background threads *inside* the window is fine and
    /// is counted — the contract is one window, not one thread.
    ///
    /// ```
    /// use consent_telemetry::{Registry, RunReport};
    ///
    /// let reg = Registry::new();
    /// let (value, report) = RunReport::collect(&reg, "demo", || {
    ///     reg.counter("demo.work").add(3);
    ///     "done"
    /// });
    /// assert_eq!(value, "done");
    /// assert_eq!(report.delta.counter("demo.work"), 3);
    /// assert_eq!(reg.open_collects(), 0);
    /// ```
    pub fn collect<T>(registry: &Registry, name: &str, f: impl FnOnce() -> T) -> (T, RunReport) {
        let _window = registry.begin_collect();
        let before = registry.snapshot();
        let start = Instant::now();
        let value = f();
        let wall = start.elapsed();
        let delta = registry.snapshot().delta_since(&before);
        (
            value,
            RunReport {
                name: name.to_string(),
                wall,
                delta,
            },
        )
    }

    /// Total captures recorded into `CaptureDb` during the run.
    pub fn captures_total(&self) -> u64 {
        self.capture_family().map(|(_, _, n)| n).sum()
    }

    /// Captures by `CaptureStatus` name.
    pub fn captures_by_status(&self) -> BTreeMap<String, u64> {
        self.group_captures("status")
    }

    /// Captures by vantage location.
    pub fn captures_by_location(&self) -> BTreeMap<String, u64> {
        self.group_captures("location")
    }

    /// `(location, status, count)` rows of the capture family.
    fn capture_family(&self) -> impl Iterator<Item = (String, String, u64)> + '_ {
        self.delta
            .counters_with_prefix(CAPTURE_FAMILY)
            .map(|(key, n)| {
                let (_, labels) = parse_key(key);
                let find = |want: &str| {
                    labels
                        .iter()
                        .find(|(k, _)| *k == want)
                        .map(|(_, v)| (*v).to_string())
                        .unwrap_or_default()
                };
                (find("location"), find("status"), n)
            })
    }

    fn group_captures(&self, label: &str) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for (location, status, n) in self.capture_family() {
            let key = if label == "location" {
                location
            } else {
                status
            };
            *out.entry(key).or_default() += n;
        }
        out
    }

    /// Render the report as a quality-columns table.
    pub fn render(&self) -> String {
        let mut t = Table::with_columns(&["Quality metric", "Value"]);
        t.numeric().title(format!("Run report: {}", self.name));
        t.row(vec![
            "Wall time".into(),
            format!("{:.1} ms", self.wall.as_secs_f64() * 1e3),
        ]);
        t.row(vec![
            "Captures recorded".into(),
            thousands(self.captures_total()),
        ]);
        for (status, n) in self.captures_by_status() {
            t.row(vec![format!("  status {status}"), thousands(n)]);
        }
        for (location, n) in self.captures_by_location() {
            t.row(vec![format!("  from {location}"), thousands(n)]);
        }
        for (key, label) in [
            ("campaign.retries", "Campaign retries"),
            ("campaign.breaker.open", "Breaker opens"),
            ("campaign.pairs_skipped", "Resume skips"),
            ("queue.offer{decision=SkippedUrl}", "Dedup skips (URL)"),
            (
                "queue.offer{decision=SkippedDomain}",
                "Dedup skips (domain)",
            ),
            ("trace.traces", "Traces recorded"),
            ("trace.events", "Trace events"),
            ("fingerprint.detect.miss", "Detector misses"),
            ("fingerprint.detect.degraded", "Degraded captures analyzed"),
            (
                "fingerprint.detect.miss_degraded",
                "Detector misses (degraded)",
            ),
            ("analysis.interpolated_days", "Interpolated days"),
        ] {
            let v = self.delta.counter(key);
            if v > 0 {
                t.row(vec![label.into(), thousands(v)]);
            }
        }
        // Labeled robustness families: injected faults, final outcome
        // classes, dead-letter and provenance records, one row per
        // label value.
        for (family, label) in [
            ("faultsim.injected", "Injected fault"),
            ("campaign.outcome", "Campaign outcome"),
            ("campaign.dead_letter{", "Dead letters"),
            ("campaign.provenance{", "Provenance"),
        ] {
            for (key, n) in self.delta.counters_with_prefix(family) {
                let (_, labels) = parse_key(key);
                let value = labels.first().map(|(_, v)| *v).unwrap_or("?");
                t.row(vec![format!("  {label} {value}"), thousands(n)]);
            }
        }
        if let Some(&open) = self.delta.gauges.get("campaign.breaker.open_pairs") {
            t.row(vec!["Breaker-opened pairs".into(), open.to_string()]);
        }
        t.to_string()
    }

    /// One JSON object (single line) summarizing the run.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("kind".to_string(), Json::str("run_report")),
            ("name".to_string(), Json::str(self.name.clone())),
            (
                "wall_ms".to_string(),
                Json::Number(self.wall.as_secs_f64() * 1e3),
            ),
            (
                "captures".to_string(),
                Json::int(self.captures_total() as i64),
            ),
            (
                "by_status".to_string(),
                Json::object(
                    self.captures_by_status()
                        .into_iter()
                        .map(|(k, v)| (k, Json::int(v as i64))),
                ),
            ),
            (
                "by_location".to_string(),
                Json::object(
                    self.captures_by_location()
                        .into_iter()
                        .map(|(k, v)| (k, Json::int(v as i64))),
                ),
            ),
        ])
    }

    /// Export the report plus its full metric delta as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.to_json().to_compact();
        out.push('\n');
        out.push_str(&self.delta.to_jsonl());
        out
    }
}

/// Aggregate several run reports into one summary table.
pub fn summary_table(reports: &[RunReport]) -> String {
    let mut t = Table::with_columns(&["Experiment", "Wall", "Captures", "Ok", "Failed"]);
    t.numeric().title("Experiment run summary");
    for r in reports {
        let by_status = r.captures_by_status();
        let ok = by_status.get("Ok").copied().unwrap_or(0);
        let total = r.captures_total();
        t.row(vec![
            r.name.clone(),
            format!("{:.1} ms", r.wall.as_secs_f64() * 1e3),
            thousands(total),
            thousands(ok),
            thousands(total - ok),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_run(reg: &Registry) {
        reg.counter_labeled(
            CAPTURE_FAMILY,
            &[("location", "US cloud"), ("status", "Ok")],
        )
        .add(7);
        reg.counter_labeled(
            CAPTURE_FAMILY,
            &[("location", "EU cloud"), ("status", "Ok")],
        )
        .add(5);
        reg.counter_labeled(
            CAPTURE_FAMILY,
            &[("location", "EU cloud"), ("status", "Timeout")],
        )
        .add(2);
        reg.counter("campaign.retries").add(3);
    }

    #[test]
    fn report_groups_capture_family() {
        let reg = Registry::new();
        // Pre-existing traffic must not leak into the report.
        fake_run(&reg);
        let (value, report) = RunReport::collect(&reg, "exp", || {
            fake_run(&reg);
            42
        });
        assert_eq!(value, 42);
        assert_eq!(report.name, "exp");
        assert_eq!(report.captures_total(), 14);
        let by_status = report.captures_by_status();
        assert_eq!(by_status.get("Ok"), Some(&12));
        assert_eq!(by_status.get("Timeout"), Some(&2));
        let by_loc = report.captures_by_location();
        assert_eq!(by_loc.get("US cloud"), Some(&7));
        assert_eq!(by_loc.get("EU cloud"), Some(&7));
        assert_eq!(by_status.values().sum::<u64>(), report.captures_total());
        assert_eq!(by_loc.values().sum::<u64>(), report.captures_total());
    }

    #[test]
    fn render_and_jsonl_mention_the_columns() {
        let reg = Registry::new();
        let (_, report) = RunReport::collect(&reg, "quality", || fake_run(&reg));
        let text = report.render();
        assert!(text.contains("Run report: quality"));
        assert!(text.contains("status Ok"));
        assert!(text.contains("from EU cloud"));
        assert!(text.contains("Campaign retries"));

        let jsonl = report.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        let parsed = Json::parse(first).unwrap();
        assert_eq!(parsed.get("name").and_then(Json::as_str), Some("quality"));
        assert_eq!(
            parsed
                .get("by_status")
                .and_then(|s| s.get("Ok"))
                .and_then(Json::as_f64),
            Some(12.0)
        );

        let summary = summary_table(&[report]);
        assert!(summary.contains("quality"));
        assert!(summary.contains("14"));
    }
}
