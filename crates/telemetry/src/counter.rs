//! Sharded atomic counters and gauges.
//!
//! Counters are write-hot (every simulated request bumps one), so each
//! counter spreads its increments over cache-line-padded shards indexed
//! by a per-thread slot; reads sum the shards. Gauges are read-mostly
//! point-in-time values (queue depth) and stay a single atomic.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of shards per counter; increments from up to this many
/// threads proceed without cache-line contention.
pub const SHARDS: usize = 16;

/// One cache line worth of counter state.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Shard(AtomicU64);

thread_local! {
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The shard this thread writes to (assigned round-robin on first use).
fn shard_slot() -> usize {
    SHARD_SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            s = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(s);
        }
        s
    })
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [Shard; SHARDS],
}

impl Counter {
    /// Create a zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A settable point-in-time value (possibly negative).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adjust the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 100_000;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.set(-5);
        assert_eq!(g.get(), -5);
    }
}
