//! Log-bucketed histograms with quantile estimation.
//!
//! Values below [`EXACT_LIMIT`] get one bucket each (request counts,
//! retry counts); larger values share log-linear buckets — each
//! power-of-two octave split into [`SUB_BUCKETS`] equal sub-buckets —
//! so relative error is bounded by `1/SUB_BUCKETS` across the full
//! `u64` range while the whole histogram stays ~4 KiB of atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this limit are counted exactly.
pub const EXACT_LIMIT: u64 = 16;

/// Sub-buckets per power-of-two octave above the exact range.
pub const SUB_BUCKETS: usize = 8;

/// log2(EXACT_LIMIT): first octave with sub-bucketing.
const FIRST_OCTAVE: u32 = 4;

/// Total bucket count: 16 exact + 60 octaves × 8 sub-buckets.
const BUCKETS: usize = EXACT_LIMIT as usize + (64 - FIRST_OCTAVE as usize) * SUB_BUCKETS;

/// Map a value to its bucket index.
fn bucket_index(value: u64) -> usize {
    if value < EXACT_LIMIT {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = ((value >> (msb - 3)) & (SUB_BUCKETS as u64 - 1)) as usize;
    EXACT_LIMIT as usize + (msb - FIRST_OCTAVE) as usize * SUB_BUCKETS + sub
}

/// The smallest value mapping to bucket `index`.
fn bucket_lower(index: usize) -> u64 {
    if index < EXACT_LIMIT as usize {
        return index as u64;
    }
    let rel = index - EXACT_LIMIT as usize;
    let msb = FIRST_OCTAVE + (rel / SUB_BUCKETS) as u32;
    let sub = (rel % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (msb - 3)
}

/// The largest value mapping to bucket `index`.
fn bucket_upper(index: usize) -> u64 {
    if index < EXACT_LIMIT as usize {
        return index as u64;
    }
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(index + 1) - 1
}

/// A concurrent histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let v = self.min.load(Ordering::Relaxed);
        if v == u64::MAX && self.count() == 0 {
            0
        } else {
            v
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by nearest rank
    /// (`rank = ⌈q·n⌉`, clamped to `[1, n]`). Exact below
    /// [`EXACT_LIMIT`]; above it, the bucket midpoint clamped to the
    /// observed min/max. The extreme ranks are always exact: rank 1
    /// *is* the minimum sample and rank `n` *is* the maximum, so they
    /// are returned directly instead of a bucket midpoint (which could
    /// undershoot the true max by up to half a bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == 1 {
            return self.min();
        }
        if rank == n {
            return self.max();
        }
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let mid = bucket_lower(i) + (bucket_upper(i) - bucket_lower(i)) / 2;
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// The median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Snapshot the headline statistics.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count(),
            sum: self.sum(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.p50(),
            p95: self.p95(),
            p99: self.p99(),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_and_contiguous() {
        // Exact region: identity.
        for v in 0..EXACT_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // Every bucket's lower bound maps back to that bucket, and
        // bucket ranges tile the number line without gaps.
        for i in EXACT_LIMIT as usize..BUCKETS {
            let lo = bucket_lower(i);
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_lower(i + 1), hi + 1, "gap after bucket {i}");
            }
        }
        // Spot checks at octave boundaries.
        assert_eq!(bucket_index(16), EXACT_LIMIT as usize);
        assert_eq!(bucket_index(31), EXACT_LIMIT as usize + SUB_BUCKETS - 1);
        assert_eq!(bucket_index(32), EXACT_LIMIT as usize + SUB_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_on_known_uniform_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log-bucketed above 16: allow the documented 1/SUB_BUCKETS
        // relative error.
        let p50 = h.p50() as f64;
        let p95 = h.p95() as f64;
        let p99 = h.p99() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.125, "p50 {p50}");
        assert!((p95 - 950.0).abs() / 950.0 < 0.125, "p95 {p95}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.125, "p99 {p99}");
    }

    #[test]
    fn quantiles_exact_in_exact_region() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 9] {
            h.record(v);
        }
        assert_eq!(h.p50(), 4);
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn skewed_distribution_orders_quantiles() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.p50(), 10);
        assert_eq!(h.p95(), 10);
        assert!(h.p99() == 10 || h.p99() >= 10);
        assert!(h.quantile(1.0) >= 900_000);
    }

    // Regression pins for quantile behavior at bucket boundaries
    // (ISSUE 6 satellite audit). The implementation is nearest-rank:
    // `rank = ceil(q·n)` clamped to `[1, n]`, first bucket where the
    // cumulative count reaches the rank, midpoint clamped to the
    // observed min/max. The tests below freeze the 0-, 1-, and
    // edge-count cases so an off-by-one in the rank or the cumulative
    // scan cannot creep in silently.

    #[test]
    fn zero_samples_yield_zero_for_every_quantile() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
    }

    #[test]
    fn one_sample_is_every_quantile_even_in_log_buckets() {
        // min == max clamps the bucket midpoint, so a single sample is
        // reported exactly no matter how coarse its bucket.
        for v in [0u64, 1, 15, 16, 17, 31, 32, 1000, u64::MAX / 3] {
            let h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "value {v}, q={q}");
            }
        }
    }

    #[test]
    fn nearest_rank_takes_the_lower_median_of_two() {
        // n=2, q=0.5 → rank = ceil(1.0) = 1: the smaller sample. This
        // is the nearest-rank convention, not interpolation.
        let h = Histogram::new();
        h.record(3);
        h.record(7);
        assert_eq!(h.p50(), 3);
        assert_eq!(h.quantile(0.51), 7);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn rank_boundary_counts_flip_the_bucket_exactly_once() {
        // 95 samples in one bucket + 5 in another: rank(0.95) = 95
        // still lands in the low bucket. Shift one sample across and
        // rank 95 crosses into the high bucket. Values 5 and 9 sit in
        // exact buckets, so the answers are exact, not midpoints.
        let at = |low: u64, high: u64| {
            let h = Histogram::new();
            for _ in 0..low {
                h.record(5);
            }
            for _ in 0..high {
                h.record(9);
            }
            h.p95()
        };
        assert_eq!(at(95, 5), 5);
        assert_eq!(at(94, 6), 9);
    }

    #[test]
    fn bucket_edge_values_stay_inside_their_bucket() {
        // 15 is the last exact bucket; 16..=17 share the first
        // log-linear sub-bucket; 30..=31 end the first octave; 32 opens
        // the next. A quantile that resolves to one of these buckets
        // must report a value inside that bucket's [lower, upper] range
        // (clamped to observed min/max), never a neighbor's.
        for edge in [15u64, 16, 31, 32] {
            let h = Histogram::new();
            for _ in 0..10 {
                h.record(edge);
            }
            let (lo, hi) = (
                bucket_lower(bucket_index(edge)),
                bucket_upper(bucket_index(edge)),
            );
            for q in [0.5, 0.95, 0.99] {
                let got = h.quantile(q);
                assert_eq!(got, edge, "edge {edge} q={q} escaped [{lo}, {hi}]");
            }
        }
        // Mixed edge pair across an octave boundary: quantiles below
        // the split report the lower edge, above it the upper edge.
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(31);
        }
        for _ in 0..50 {
            h.record(32);
        }
        assert_eq!(h.p50(), 31, "rank 50 is the last 31-sample");
        assert_eq!(h.quantile(0.51), 32, "rank 51 is the first 32-sample");
        assert_eq!(h.p95(), 32);
    }

    #[test]
    fn quantile_extremes_clamp_to_min_and_max() {
        let h = Histogram::new();
        for v in [100u64, 200, 400, 800, 1600] {
            h.record(v);
        }
        // q=0 clamps the rank to 1 → first bucket → clamped to min.
        assert_eq!(h.quantile(0.0), h.min());
        // q=1 is the max exactly (last bucket midpoint clamps down).
        assert_eq!(h.quantile(1.0), h.max());
        assert!(h.quantile(0.0) <= h.p50() && h.p50() <= h.quantile(1.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p95, s.p99),
            (0, 0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean, 0.0);
    }
}
