//! # consent-telemetry
//!
//! Observability for the capture pipeline: sharded atomic counters and
//! gauges ([`counter`]), log-bucketed latency/size histograms with
//! p50/p95/p99 ([`histogram`]), RAII span timers ([`span`](mod@span)), a labeled
//! metric [`registry`], and per-experiment [`report::RunReport`]s — the
//! simulator's analogue of the paper's §3.5 data-quality accounting
//! (capture outcomes per vantage, retries, timeouts) that Table 1
//! reports before any adoption number is trusted.
//!
//! Everything funnels through a process-global [`Registry`] that is
//! **disabled by default**: every free function first checks one
//! relaxed atomic, so an un-instrumented run (e.g. the benches) pays a
//! load-and-branch per site and nothing else. Call [`enable`] (as the
//! experiment entry points and `examples/telemetry_report.rs` do) to
//! start recording. Exporters: human tables via `consent_util::table`
//! ([`Snapshot::render`]) and JSONL via `consent_util::Json`
//! ([`Snapshot::to_jsonl`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod registry;
pub mod report;
pub mod span;

pub use counter::{Counter, Gauge};
pub use histogram::{HistSummary, Histogram};
pub use registry::{CollectGuard, Registry, Snapshot};
pub use report::{summary_table, RunReport, CAPTURE_FAMILY};
pub use span::Span;

use std::sync::OnceLock;

/// The process-global registry, created disabled.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::disabled)
}

/// Turn on recording for the global registry.
pub fn enable() {
    global().set_enabled(true);
}

/// Turn off recording for the global registry.
pub fn disable() {
    global().set_enabled(false);
}

/// Is the global registry recording? Guard any instrumentation that
/// must allocate (label strings etc.) behind this.
#[inline]
pub fn enabled() -> bool {
    global().enabled()
}

/// Drop every metric in the global registry (the enable flag is
/// untouched). See [`Registry::reset`] for the caveats.
pub fn reset() {
    global().reset();
}

/// Add `n` to the global counter `name` (no-op while disabled).
#[inline]
pub fn count(name: &str, n: u64) {
    let g = global();
    if g.enabled() {
        g.counter(name).add(n);
    }
}

/// Add `n` to the global counter `name` with labels (no-op while
/// disabled). Labels become part of the metric key, in caller order:
/// `name{k=v,k2=v2}`.
#[inline]
pub fn count_labeled(name: &str, labels: &[(&str, &str)], n: u64) {
    let g = global();
    if g.enabled() {
        g.counter_labeled(name, labels).add(n);
    }
}

/// Record `value` into the global histogram `name` (no-op while
/// disabled).
#[inline]
pub fn observe(name: &str, value: u64) {
    let g = global();
    if g.enabled() {
        g.histogram(name).record(value);
    }
}

/// Set the global gauge `name` (no-op while disabled).
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    let g = global();
    if g.enabled() {
        g.gauge(name).set(value);
    }
}

/// Add to the global gauge `name` (no-op while disabled).
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    let g = global();
    if g.enabled() {
        g.gauge(name).add(delta);
    }
}

/// Start a timing span recording into the global histogram `name`
/// (micros) when dropped. Returns an inert span while disabled.
#[inline]
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub fn span(name: &str) -> Span {
    global().span(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry is shared by every test in this binary, so
    // this is the only test that touches it: it flips the flag and
    // restores the disabled default before exiting.
    #[test]
    fn global_disabled_by_default_and_toggles() {
        assert!(!enabled());
        count("lib.ignored", 5);
        assert_eq!(global().snapshot().counter("lib.ignored"), 0);

        enable();
        assert!(enabled());
        count("lib.counted", 2);
        count_labeled("lib.labeled", &[("k", "v")], 3);
        observe("lib.hist", 10);
        gauge_set("lib.gauge", -4);
        gauge_add("lib.gauge", 1);
        {
            let _s = span("lib.span");
        }
        let snap = global().snapshot();
        assert_eq!(snap.counter("lib.counted"), 2);
        assert_eq!(snap.counter("lib.labeled{k=v}"), 3);
        assert_eq!(snap.gauges.get("lib.gauge"), Some(&-3));
        assert_eq!(snap.histograms.get("lib.hist").unwrap().count, 1);
        assert_eq!(snap.histograms.get("lib.span").unwrap().count, 1);

        disable();
        assert!(!enabled());
    }
}
