//! The labeled metric registry and its snapshots/exporters.

use crate::counter::{Counter, Gauge};
use crate::histogram::{HistSummary, Histogram};
use crate::span::Span;
use consent_util::table::{thousands, Table};
use consent_util::Json;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Encode a labeled metric key: `name{k=v,k2=v2}` in caller order.
pub fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

/// Split a metric key into its base name and label pairs.
pub fn parse_key(key: &str) -> (&str, Vec<(&str, &str)>) {
    match key.split_once('{') {
        None => (key, Vec::new()),
        Some((base, rest)) => {
            let rest = rest.strip_suffix('}').unwrap_or(rest);
            let labels = rest
                .split(',')
                .filter_map(|pair| pair.split_once('='))
                .collect();
            (base, labels)
        }
    }
}

/// A set of named counters, gauges, and histograms.
///
/// Metric families are flat: a "family" is the set of keys sharing a
/// base name with different labels (see [`labeled_key`]). Lookups take
/// a read lock on the hot path and upgrade to a write lock only on
/// first use of a name.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: AtomicBool,
    /// Open `RunReport::collect` windows (see [`Registry::begin_collect`]).
    collects: AtomicUsize,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Guard for one open `RunReport::collect` window; closes it on drop.
#[derive(Debug)]
pub struct CollectGuard<'a> {
    registry: &'a Registry,
}

impl Drop for CollectGuard<'_> {
    fn drop(&mut self) {
        self.registry.collects.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Registry {
    /// A recording registry.
    pub fn new() -> Registry {
        let r = Registry::default();
        r.enabled.store(true, Ordering::Relaxed);
        r
    }

    /// A registry that hands out inert spans and whose convenience
    /// recording entry points are no-ops (used as the global default so
    /// un-instrumented runs pay one atomic load per site).
    pub fn disabled() -> Registry {
        Registry::default()
    }

    /// Is this registry recording?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, key: &str) -> Arc<T> {
        if let Some(existing) = map.read().get(key) {
            return Arc::clone(existing);
        }
        Arc::clone(map.write().entry(key.to_string()).or_default())
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// The counter for `name` with `labels`.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, &labeled_key(name, labels))
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// The histogram for `name` with `labels`.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, &labeled_key(name, labels))
    }

    /// Start a span recording into histogram `name` (micros), or an
    /// inert span while disabled.
    pub fn span(&self, name: &str) -> Span {
        if self.enabled() {
            Span::active(self.histogram(name))
        } else {
            Span::inert()
        }
    }

    /// Drop every registered metric, leaving the enable flag untouched.
    ///
    /// The bench harness calls this between sweep configurations so each
    /// run's histograms (and their p50/p95) describe that run alone.
    /// `Arc` handles obtained *before* the reset keep recording into
    /// their now-detached metrics — take them again afterwards. Do not
    /// reset inside an open [`RunReport::collect`](crate::RunReport::collect)
    /// window: the snapshot delta would go negative.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }

    /// Open a collect window (called by `RunReport::collect`). In debug
    /// builds, opening a second window while one is in flight panics:
    /// snapshot-delta reports attribute *all* registry traffic in their
    /// window to themselves, so overlapping windows on the same registry
    /// silently double-count each other's metrics. Release builds only
    /// track the count.
    pub fn begin_collect(&self) -> CollectGuard<'_> {
        let prev = self.collects.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(
            prev, 0,
            "overlapping RunReport::collect windows on one registry double-count metrics"
        );
        CollectGuard { registry: self }
    }

    /// How many collect windows are currently open.
    pub fn open_collects(&self) -> usize {
        self.collects.load(Ordering::Relaxed)
    }

    /// The change since `earlier`: shorthand for
    /// `self.snapshot().delta_since(earlier)`. This is the sampling
    /// primitive the `consent-obs` flight recorder is built on — take a
    /// baseline [`snapshot`](Self::snapshot), then call `delta` at each
    /// sample point to get the traffic of that window alone.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        self.snapshot().delta_since(earlier)
    }

    /// Capture the current value of every metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by key.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by key.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by key.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl Snapshot {
    /// Counter value by key (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counters whose key starts with `prefix`, as
    /// `(key, value)` pairs.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// The change from `earlier` to `self`: counters and histogram
    /// counts/sums subtract (saturating); gauges and histogram
    /// quantiles are taken from `self`, since they are point-in-time
    /// values. Metrics that are zero in the delta are dropped.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let before = earlier.histograms.get(k).copied().unwrap_or_default();
                let count = h.count.saturating_sub(before.count);
                let sum = h.sum.saturating_sub(before.sum);
                let mean = if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64
                };
                (
                    k.clone(),
                    HistSummary {
                        count,
                        sum,
                        mean,
                        ..*h
                    },
                )
            })
            .filter(|(_, h)| h.count > 0)
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Render every metric as human-readable tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let mut t = Table::with_columns(&["Counter", "Total"]);
            t.numeric().title("Counters");
            for (k, v) in &self.counters {
                t.row(vec![k.clone(), thousands(*v)]);
            }
            out.push_str(&t.to_string());
        }
        if !self.gauges.is_empty() {
            let mut t = Table::with_columns(&["Gauge", "Value"]);
            t.numeric().title("Gauges");
            for (k, v) in &self.gauges {
                t.row(vec![k.clone(), v.to_string()]);
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&t.to_string());
        }
        if !self.histograms.is_empty() {
            let mut t =
                Table::with_columns(&["Histogram", "Count", "Mean", "p50", "p95", "p99", "Max"]);
            t.numeric().title("Histograms");
            for (k, h) in &self.histograms {
                t.row(vec![
                    k.clone(),
                    thousands(h.count),
                    format!("{:.1}", h.mean),
                    thousands(h.p50),
                    thousands(h.p95),
                    thousands(h.p99),
                    thousands(h.max),
                ]);
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&t.to_string());
        }
        out
    }

    /// Export as JSON Lines: one `{"kind": ...}` object per metric.
    pub fn to_jsonl(&self) -> String {
        let mut lines = Vec::new();
        for (k, v) in &self.counters {
            lines.push(
                Json::object([
                    ("kind".to_string(), Json::str("counter")),
                    ("name".to_string(), Json::str(k.clone())),
                    ("value".to_string(), Json::int(*v as i64)),
                ])
                .to_compact(),
            );
        }
        for (k, v) in &self.gauges {
            lines.push(
                Json::object([
                    ("kind".to_string(), Json::str("gauge")),
                    ("name".to_string(), Json::str(k.clone())),
                    ("value".to_string(), Json::int(*v)),
                ])
                .to_compact(),
            );
        }
        for (k, h) in &self.histograms {
            lines.push(
                Json::object([
                    ("kind".to_string(), Json::str("histogram")),
                    ("name".to_string(), Json::str(k.clone())),
                    ("count".to_string(), Json::int(h.count as i64)),
                    ("sum".to_string(), Json::int(h.sum as i64)),
                    ("mean".to_string(), Json::Number(h.mean)),
                    ("min".to_string(), Json::int(h.min as i64)),
                    ("max".to_string(), Json::int(h.max as i64)),
                    ("p50".to_string(), Json::int(h.p50 as i64)),
                    ("p95".to_string(), Json::int(h.p95 as i64)),
                    ("p99".to_string(), Json::int(h.p99 as i64)),
                ])
                .to_compact(),
            );
        }
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        assert_eq!(labeled_key("a.b", &[]), "a.b");
        let key = labeled_key("cap", &[("loc", "EU cloud"), ("status", "Ok")]);
        assert_eq!(key, "cap{loc=EU cloud,status=Ok}");
        let (base, labels) = parse_key(&key);
        assert_eq!(base, "cap");
        assert_eq!(labels, vec![("loc", "EU cloud"), ("status", "Ok")]);
        assert_eq!(parse_key("plain"), ("plain", vec![]));
    }

    #[test]
    fn reset_clears_metrics_but_not_the_enable_flag() {
        let reg = Registry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(2);
        reg.histogram("h").record(7);
        reg.reset();
        assert!(reg.enabled());
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        // Fresh handles after the reset record normally.
        reg.counter("c").add(1);
        assert_eq!(reg.snapshot().counter("c"), 1);
    }

    #[test]
    fn families_share_base_name() {
        let reg = Registry::new();
        reg.counter_labeled("f", &[("v", "a")]).add(2);
        reg.counter_labeled("f", &[("v", "b")]).add(3);
        reg.counter("other").inc();
        let snap = reg.snapshot();
        let family: u64 = snap.counters_with_prefix("f{").map(|(_, v)| v).sum();
        assert_eq!(family, 5);
        assert_eq!(snap.counter("other"), 1);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let reg = Registry::new();
        reg.counter("c").add(10);
        reg.histogram("h").record(100);
        reg.gauge("g").set(5);
        let before = reg.snapshot();
        reg.counter("c").add(7);
        reg.counter("new").inc();
        reg.histogram("h").record(200);
        reg.gauge("g").set(9);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.counter("c"), 7);
        assert_eq!(delta.counter("new"), 1);
        assert!(!delta.counters.contains_key("untouched"));
        let h = delta.histograms.get("h").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 200);
        assert_eq!(delta.gauges.get("g"), Some(&9));
    }

    #[test]
    fn exporters_cover_every_metric() {
        let reg = Registry::new();
        reg.counter("requests").add(1234);
        reg.gauge("depth").set(-2);
        reg.histogram("lat").record(50);
        let snap = reg.snapshot();

        let table = snap.render();
        assert!(table.contains("requests"));
        assert!(table.contains("1,234"));
        assert!(table.contains("depth"));
        assert!(table.contains("lat"));

        let jsonl = snap.to_jsonl();
        assert_eq!(jsonl.trim_end().lines().count(), 3);
        for line in jsonl.trim_end().lines() {
            let parsed = Json::parse(line).expect("each line is valid JSON");
            assert!(parsed.get("kind").is_some());
            assert!(parsed.get("name").is_some());
        }
    }
}
