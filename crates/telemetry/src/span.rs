//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it (in microseconds) into a histogram. Spans nest: a
//! thread-local depth is maintained so tests and exporters can observe
//! nesting, and a disabled registry hands out inert spans that record
//! nothing.

use crate::histogram::Histogram;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A running timer that records its elapsed micros on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub struct Span {
    sink: Option<Arc<Histogram>>,
    /// Whether this span incremented the thread-local depth at creation.
    /// Tracked separately from `sink`: recording and depth accounting
    /// are different obligations, and tying the decrement to the sink
    /// (as an earlier version did) leaks depth the moment a drop path
    /// gives up its sink without unwinding — the counter must stay
    /// paired with the increment no matter what happens to recording.
    counted: bool,
    start: Instant,
}

impl Span {
    /// A span recording into `sink` on drop.
    pub(crate) fn active(sink: Arc<Histogram>) -> Span {
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            sink: Some(sink),
            counted: true,
            start: Instant::now(),
        }
    }

    /// An inert span: tracks nothing, records nothing.
    pub(crate) fn inert() -> Span {
        Span {
            sink: None,
            counted: false,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// How many active spans the current thread has open.
    pub fn current_depth() -> usize {
        DEPTH.with(Cell::get)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.record(self.elapsed_micros());
        }
        if self.counted {
            self.counted = false;
            DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn spans_nest_and_unwind() {
        let reg = Registry::new();
        assert_eq!(Span::current_depth(), 0);
        {
            let outer = reg.span("outer");
            assert_eq!(Span::current_depth(), 1);
            {
                let _inner = reg.span("inner");
                assert_eq!(Span::current_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(Span::current_depth(), 1);
            drop(outer);
        }
        assert_eq!(Span::current_depth(), 0);

        let snap = reg.snapshot();
        let outer = snap.histograms.get("outer").unwrap();
        let inner = snap.histograms.get("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The inner span is strictly contained in the outer one.
        assert!(
            outer.sum >= inner.sum,
            "outer {} inner {}",
            outer.sum,
            inner.sum
        );
        assert!(inner.sum >= 2_000, "sleep should register: {}", inner.sum);
    }

    #[test]
    fn depth_stays_paired_across_mid_flight_toggles() {
        // Regression: the depth decrement used to live inside the
        // sink-recording branch, pairing it with "has a sink" instead of
        // "incremented at creation". Toggling the registry while spans
        // are open must leave the depth balanced either way.
        let reg = Registry::new();
        assert_eq!(Span::current_depth(), 0);
        {
            let _outer = reg.span("outer");
            assert_eq!(Span::current_depth(), 1);
            reg.set_enabled(false);
            {
                // Opened while disabled: inert, never counted.
                let _inner = reg.span("inner");
                assert_eq!(Span::current_depth(), 1);
                reg.set_enabled(true);
                // Re-enabling mid-flight does not retroactively count it.
            }
            assert_eq!(Span::current_depth(), 1);
        }
        // The outer span was counted while enabled and must uncount on
        // drop even though the registry was toggled twice underneath it.
        assert_eq!(Span::current_depth(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.get("outer").unwrap().count, 1);
        assert!(!snap.histograms.contains_key("inner"));
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let reg = Registry::disabled();
        {
            let _s = reg.span("nothing");
            assert_eq!(Span::current_depth(), 0);
        }
        assert!(reg.snapshot().histograms.is_empty());
    }
}
