//! RAII span timers.
//!
//! A [`Span`] measures the wall time between its creation and drop and
//! records it (in microseconds) into a histogram. Spans nest: a
//! thread-local depth is maintained so tests and exporters can observe
//! nesting, and a disabled registry hands out inert spans that record
//! nothing.

use crate::histogram::Histogram;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// A running timer that records its elapsed micros on drop.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ discards the timing immediately"]
pub struct Span {
    sink: Option<Arc<Histogram>>,
    start: Instant,
}

impl Span {
    /// A span recording into `sink` on drop.
    pub(crate) fn active(sink: Arc<Histogram>) -> Span {
        DEPTH.with(|d| d.set(d.get() + 1));
        Span {
            sink: Some(sink),
            start: Instant::now(),
        }
    }

    /// An inert span: tracks nothing, records nothing.
    pub(crate) fn inert() -> Span {
        Span {
            sink: None,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far, in microseconds.
    pub fn elapsed_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// How many active spans the current thread has open.
    pub fn current_depth() -> usize {
        DEPTH.with(Cell::get)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.record(self.elapsed_micros());
            DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn spans_nest_and_unwind() {
        let reg = Registry::new();
        assert_eq!(Span::current_depth(), 0);
        {
            let outer = reg.span("outer");
            assert_eq!(Span::current_depth(), 1);
            {
                let _inner = reg.span("inner");
                assert_eq!(Span::current_depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(Span::current_depth(), 1);
            drop(outer);
        }
        assert_eq!(Span::current_depth(), 0);

        let snap = reg.snapshot();
        let outer = snap.histograms.get("outer").unwrap();
        let inner = snap.histograms.get("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The inner span is strictly contained in the outer one.
        assert!(
            outer.sum >= inner.sum,
            "outer {} inner {}",
            outer.sum,
            inner.sum
        );
        assert!(inner.sum >= 2_000, "sleep should register: {}", inner.sum);
    }

    #[test]
    fn disabled_registry_spans_are_inert() {
        let reg = Registry::disabled();
        {
            let _s = reg.span("nothing");
            assert_eq!(Span::current_depth(), 0);
        }
        assert!(reg.snapshot().histograms.is_empty());
    }
}
