//! The watch rule grammar: which detectors run, with what thresholds.
//!
//! Rules are integers end to end (per-mille ratios, centi-z-scores,
//! tick counts), so a spec round-trips exactly through
//! [`fmt::Display`] and [`WatchConfig::parse`] — the same property the
//! `CONSENT_IO_CHAOS` grammar has, and what the proptest in
//! `tests/it_watch.rs` pins.
//!
//! Spec grammar (also what [`fmt::Display`] emits):
//!
//! ```text
//! none                          no rules (the default)
//! default                       the named default rule set
//! slo:metric:permille:windows   burn-rate SLO rule;
//!                               metric ∈ usable|deadletter|iofault|retry,
//!                               permille ∈ 1..=1000, windows ≥ 1
//! drift:metric:centiz:warmup    EWMA drift rule;
//!                               metric ∈ cmp|throughput,
//!                               centiz ≥ 1 (z-score × 100), warmup ≥ 1
//! gap:ticks                     coverage-gap rule, ticks ≥ 1
//! a;b;c                         any of the above, semicolon-joined
//! ```

use std::fmt;

/// Which ratio a burn-rate SLO rule watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloMetric {
    /// Usable-capture rate per vantage location (`capture_db.insert`
    /// status deltas; usable = Ok/Timeout/Truncated). Breaches when the
    /// rate falls *below* the threshold.
    Usable,
    /// Dead-letter rate (`campaign.outcome` deltas; dead = any outcome
    /// other than success/degraded). Breaches *above* the threshold.
    DeadLetter,
    /// Checkpoint I/O-fault rate (`checkpoint.io_fault` vs attempted
    /// writes). Breaches *above* the threshold.
    IoFault,
    /// Checkpoint retry rate (`checkpoint.retry` vs attempted writes).
    /// Breaches *above* the threshold.
    Retry,
}

impl SloMetric {
    /// Stable lowercase label used in specs and alert ids.
    pub fn label(&self) -> &'static str {
        match self {
            SloMetric::Usable => "usable",
            SloMetric::DeadLetter => "deadletter",
            SloMetric::IoFault => "iofault",
            SloMetric::Retry => "retry",
        }
    }

    fn parse(s: &str) -> Option<SloMetric> {
        match s {
            "usable" => Some(SloMetric::Usable),
            "deadletter" => Some(SloMetric::DeadLetter),
            "iofault" => Some(SloMetric::IoFault),
            "retry" => Some(SloMetric::Retry),
            _ => None,
        }
    }
}

/// Which series an EWMA drift rule watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftMetric {
    /// CMP detection rate per window (per-mille of
    /// `fingerprint.detect.hit` over hits + misses).
    Cmp,
    /// Pairs processed per window (`campaign.progress` delta) — the
    /// logical-tick stand-in for pairs/sec.
    Throughput,
}

impl DriftMetric {
    /// Stable lowercase label used in specs and alert ids.
    pub fn label(&self) -> &'static str {
        match self {
            DriftMetric::Cmp => "cmp",
            DriftMetric::Throughput => "throughput",
        }
    }

    fn parse(s: &str) -> Option<DriftMetric> {
        match s {
            "cmp" => Some(DriftMetric::Cmp),
            "throughput" => Some(DriftMetric::Throughput),
            _ => None,
        }
    }
}

/// One multi-window burn-rate SLO rule.
///
/// The rule breaches when the *current* window's ratio crosses
/// `threshold_pm`; the alert escalates pending → firing only when the
/// aggregate ratio over the last `long_windows` windows crosses it too
/// (the classic short-window + long-window burn-rate pairing: the short
/// window reacts, the long window confirms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloRule {
    /// Which ratio to watch.
    pub metric: SloMetric,
    /// Threshold in parts per thousand (1..=1000).
    pub threshold_pm: u64,
    /// Long-window length in samples (≥ 1).
    pub long_windows: u64,
}

impl SloRule {
    /// True when `value_pm` (with `den > 0` data behind it) violates
    /// this rule's objective.
    pub fn breaches(&self, value_pm: u64) -> bool {
        match self.metric {
            SloMetric::Usable => value_pm < self.threshold_pm,
            _ => value_pm > self.threshold_pm,
        }
    }
}

impl fmt::Display for SloRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slo:{}:{}:{}",
            self.metric.label(),
            self.threshold_pm,
            self.long_windows
        )
    }
}

/// One EWMA z-score drift rule: after `warmup` observed windows, a
/// window whose value deviates from the EWMA mean by more than
/// `z_centi`/100 mean-absolute-deviations opens a drift alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriftRule {
    /// Which series to watch.
    pub metric: DriftMetric,
    /// Z-score threshold × 100 (≥ 1).
    pub z_centi: u64,
    /// Windows observed before the detector arms (≥ 1).
    pub warmup: u64,
}

impl fmt::Display for DriftRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "drift:{}:{}:{}",
            self.metric.label(),
            self.z_centi,
            self.warmup
        )
    }
}

/// The coverage-gap rule: alert when a vantage location has gone
/// `ticks` campaign-cursor positions without a usable capture — the
/// live counterpart of the paper's §3.5 interpolation-confidence
/// concern (a gap you see while the campaign runs is a gap you will
/// have to interpolate over later).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapRule {
    /// Gap threshold in ticks (≥ 1). Pending at `ticks`, firing at
    /// `2 × ticks`.
    pub ticks: u64,
}

impl fmt::Display for GapRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gap:{}", self.ticks)
    }
}

/// A full watch configuration: every rule the engine evaluates per
/// sample. Parsed from / rendered to the spec grammar (see the
/// [module docs](self)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WatchConfig {
    /// Burn-rate SLO rules, in spec order.
    pub slo: Vec<SloRule>,
    /// Drift rules, in spec order.
    pub drift: Vec<DriftRule>,
    /// The optional coverage-gap rule (at most one; a later spec token
    /// replaces an earlier one).
    pub gap: Option<GapRule>,
}

impl WatchConfig {
    /// No rules: the engine observes samples but never alerts.
    pub fn none() -> WatchConfig {
        WatchConfig::default()
    }

    /// True when no rule is configured.
    pub fn is_none(&self) -> bool {
        self.slo.is_empty() && self.drift.is_empty() && self.gap.is_none()
    }

    /// The named `default` rule set: usable-capture ≥ 70% per vantage,
    /// dead-letter ≤ 30%, checkpoint fault/retry ≤ 25% (3-window
    /// confirmation each), 3.0-sigma drift on CMP detection rate and
    /// throughput after 8 warmup windows, and a 25-tick coverage gap.
    pub fn default_rules() -> WatchConfig {
        WatchConfig {
            slo: vec![
                SloRule {
                    metric: SloMetric::Usable,
                    threshold_pm: 700,
                    long_windows: 3,
                },
                SloRule {
                    metric: SloMetric::DeadLetter,
                    threshold_pm: 300,
                    long_windows: 3,
                },
                SloRule {
                    metric: SloMetric::IoFault,
                    threshold_pm: 250,
                    long_windows: 3,
                },
            ],
            drift: vec![
                DriftRule {
                    metric: DriftMetric::Cmp,
                    z_centi: 300,
                    warmup: 8,
                },
                DriftRule {
                    metric: DriftMetric::Throughput,
                    z_centi: 300,
                    warmup: 8,
                },
            ],
            gap: Some(GapRule { ticks: 25 }),
        }
    }

    /// Read a config from `CONSENT_WATCH`. Unset, empty, or `none` mean
    /// no rules. Malformed values fall back to no rules (a typo must
    /// not change the measurement) but are reported via the
    /// `watch.rules.unrecognized` counter when telemetry is on.
    pub fn from_env() -> WatchConfig {
        match std::env::var("CONSENT_WATCH").as_deref() {
            Ok("") | Err(_) => WatchConfig::none(),
            Ok(spec) => WatchConfig::parse(spec).unwrap_or_else(|| {
                consent_telemetry::count("watch.rules.unrecognized", 1);
                WatchConfig::none()
            }),
        }
    }

    /// Parse a spec (see the [module docs](self) for the grammar).
    pub fn parse(spec: &str) -> Option<WatchConfig> {
        let mut config = WatchConfig::none();
        for token in spec.split(';') {
            let token = token.trim();
            match token {
                "" => return None,
                "none" => {}
                "default" => {
                    let d = WatchConfig::default_rules();
                    config.slo.extend(d.slo);
                    config.drift.extend(d.drift);
                    config.gap = d.gap;
                }
                _ => {
                    if let Some(rest) = token.strip_prefix("slo:") {
                        let mut parts = rest.split(':');
                        let metric = SloMetric::parse(parts.next()?)?;
                        let threshold_pm: u64 = parts.next()?.parse().ok()?;
                        let long_windows: u64 = parts.next()?.parse().ok()?;
                        if parts.next().is_some()
                            || threshold_pm == 0
                            || threshold_pm > 1000
                            || long_windows == 0
                        {
                            return None;
                        }
                        config.slo.push(SloRule {
                            metric,
                            threshold_pm,
                            long_windows,
                        });
                    } else if let Some(rest) = token.strip_prefix("drift:") {
                        let mut parts = rest.split(':');
                        let metric = DriftMetric::parse(parts.next()?)?;
                        let z_centi: u64 = parts.next()?.parse().ok()?;
                        let warmup: u64 = parts.next()?.parse().ok()?;
                        if parts.next().is_some() || z_centi == 0 || warmup == 0 {
                            return None;
                        }
                        config.drift.push(DriftRule {
                            metric,
                            z_centi,
                            warmup,
                        });
                    } else if let Some(rest) = token.strip_prefix("gap:") {
                        let ticks: u64 = rest.parse().ok()?;
                        if ticks == 0 {
                            return None;
                        }
                        config.gap = Some(GapRule { ticks });
                    } else {
                        return None;
                    }
                }
            }
        }
        Some(config)
    }

    /// Stable description for logs and health reports.
    pub fn describe(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for WatchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return f.write_str("none");
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                f.write_str(";")?;
            }
            first = false;
            Ok(())
        };
        for r in &self.slo {
            sep(f)?;
            write!(f, "{r}")?;
        }
        for r in &self.drift {
            sep(f)?;
            write!(f, "{r}")?;
        }
        if let Some(g) = &self.gap {
            sep(f)?;
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for spec in [
            "none",
            "slo:usable:700:3",
            "slo:deadletter:300:1;slo:iofault:250:4",
            "drift:cmp:300:8",
            "drift:throughput:150:2;gap:12",
            "slo:retry:500:2;drift:cmp:100:1;gap:1",
        ] {
            let config = WatchConfig::parse(spec).expect(spec);
            assert_eq!(config.to_string(), spec, "canonical specs round-trip");
            assert_eq!(WatchConfig::parse(&config.to_string()), Some(config));
        }
    }

    #[test]
    fn default_rules_round_trip_and_match_the_named_token() {
        let d = WatchConfig::default_rules();
        assert!(!d.is_none());
        assert_eq!(WatchConfig::parse("default"), Some(d.clone()));
        assert_eq!(WatchConfig::parse(&d.to_string()), Some(d));
    }

    #[test]
    fn garbage_is_rejected() {
        for bad in [
            "",
            ";",
            "slo:usable:700",
            "slo:usable:0:3",
            "slo:usable:1001:3",
            "slo:usable:700:0",
            "slo:nope:700:3",
            "drift:cmp:0:8",
            "drift:cmp:300:0",
            "drift:what:300:8",
            "gap:0",
            "gap:x",
            "watch:me",
            "slo:usable:700:3:9",
        ] {
            assert_eq!(WatchConfig::parse(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn none_token_and_empty_config() {
        let c = WatchConfig::parse("none").unwrap();
        assert!(c.is_none());
        assert_eq!(c.to_string(), "none");
    }

    #[test]
    fn later_gap_token_replaces_earlier() {
        let c = WatchConfig::parse("gap:5;gap:9").unwrap();
        assert_eq!(c.gap, Some(GapRule { ticks: 9 }));
    }

    #[test]
    fn slo_breach_direction_depends_on_metric() {
        let usable = SloRule {
            metric: SloMetric::Usable,
            threshold_pm: 700,
            long_windows: 1,
        };
        assert!(usable.breaches(699));
        assert!(!usable.breaches(700));
        let dead = SloRule {
            metric: SloMetric::DeadLetter,
            threshold_pm: 300,
            long_windows: 1,
        };
        assert!(dead.breaches(301));
        assert!(!dead.breaches(300));
    }
}
