//! consent-watch: a deterministic SLO & anomaly watchdog for
//! consent-observatory campaigns.
//!
//! Long measurement campaigns rot silently: a vantage starts getting
//! blocked, the CMP detection rate drifts as fingerprints age, the
//! dead-letter rate creeps up, a domain stops producing usable captures
//! and the longitudinal interpolation quietly loses confidence. This
//! crate watches for all of that *while the campaign runs*, with the
//! same determinism contract as the rest of the observability plane:
//! every verdict is a pure function of logical-tick counter deltas, so
//! the alert stream is byte-identical across thread counts and
//! kill-halfway resumes.
//!
//! Three detector families (see [`rules`] for the `CONSENT_WATCH=`
//! grammar):
//!
//! - **burn-rate SLO** (`slo:usable:700:3`, …) — short window breaches
//!   open a pending alert, the long-window aggregate confirms it to
//!   firing;
//! - **EWMA drift** (`drift:cmp:300:8`, …) — integer EWMA z-score over
//!   CMP detection rate or throughput;
//! - **coverage gap** (`gap:25`) — ticks since the last usable capture
//!   per vantage, the live warning mirror of the offline
//!   interpolation-confidence analysis.
//!
//! The [`Watch`] engine rides the durable campaign loop through a
//! two-phase stage/commit protocol so that alerts, like obs samples,
//! only describe durable windows; its state is persisted in the
//! checkpoint (section [`WATCH_STATE_SECTION`]) and restored on
//! recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod rules;

pub use engine::{AlertEvent, Watch, WATCH_SCHEMA_VERSION, WATCH_STATE_SECTION};
pub use rules::{DriftMetric, DriftRule, GapRule, SloMetric, SloRule, WatchConfig};
