//! The streaming watch engine: folds [`ObsSample`]s into detector
//! state and a deterministic alert-event log.
//!
//! # Detectors
//!
//! Every detector is a pure function of logical-tick sample content —
//! counter deltas and tick positions, never wall time:
//!
//! - **Burn-rate SLO rules** ([`SloRule`]): the current window's ratio
//!   crossing the threshold opens a *pending* alert; the aggregate
//!   ratio over the rule's long window crossing it too escalates to
//!   *firing* (short window reacts, long window confirms). Ratios are
//!   usable-capture rate per vantage location, dead-letter rate, and
//!   checkpoint `io_fault`/`retry` rates.
//! - **EWMA drift rules** ([`DriftRule`]): integer EWMA mean and mean
//!   absolute deviation (scaled ×1000, update weight 1/8) over CMP
//!   detection rate or per-window throughput; after warmup, a window
//!   deviating by more than the configured z-score fires immediately.
//!   Integer arithmetic keeps the state exactly serializable.
//! - **Coverage gap** ([`GapRule`]): ticks since the last window with a
//!   usable capture per vantage location — pending at the configured
//!   gap, firing at twice it, resolved by the next usable capture.
//!
//! # Deterministic lifecycle
//!
//! Alerts move pending → firing → resolved. Every transition is an
//! [`AlertEvent`] with the tick it happened at (recorded, not
//! wall-clock) and a stable FNV id derived from (rule, label, opened
//! tick) — so the `ALERTS_*.jsonl` export is byte-identical across
//! thread counts and, with the two-phase [`stage`](Watch::stage) /
//! [`commit`](Watch::commit) protocol plus checkpoint-persisted state,
//! across kill-halfway resumes (concatenating the incarnations' exports
//! reproduces the uninterrupted run's bytes).
//!
//! # Two-phase observation
//!
//! The durable driver calls [`Watch::stage`] *before* the checkpoint
//! write — the returned state blob rides inside the checkpoint — and
//! [`Watch::commit`] only after the write proved durable (or
//! [`Watch::abort`] when it was skipped). An alert event therefore
//! exists iff the window it describes is durable, mirroring the
//! sampler's tick-after-save rule. On resume,
//! [`Watch::import_state`] + [`Watch::rebase`] restore the exact
//! detector state the dead process had persisted.

use crate::rules::{DriftMetric, SloMetric, WatchConfig};
use consent_obs::{FlightAlert, ObsSample};
use consent_telemetry::registry::parse_key;
use consent_telemetry::{Registry, Snapshot};
use consent_util::Json;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Version stamped into every exported alert line and state blob.
pub const WATCH_SCHEMA_VERSION: i64 = 1;

/// Checkpoint section name the durable driver stores the watch state
/// blob under.
pub const WATCH_STATE_SECTION: &str = "watch-state";

/// Capture statuses that count as usable — must match
/// `CaptureStatus::usable()` (Ok, Timeout, Truncated: content present,
/// possibly degraded).
const USABLE_STATUSES: &[&str] = &["Ok", "Timeout", "Truncated"];

/// Outcome labels that are *not* dead-lettered — must match the
/// executor's rule (a pair is dead-lettered when its final capture is
/// unusable, i.e. outcome transient/permanent/panic).
const LIVE_OUTCOMES: &[&str] = &["success", "degraded"];

/// One alert lifecycle transition, exported as one `ALERTS_*.jsonl`
/// line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertEvent {
    /// Stable FNV id shared by every transition of one alert:
    /// `stable_id(rule, label, opened-tick)` in hex.
    pub id: String,
    /// The rule's canonical spec form (`slo:usable:700:3`, …).
    pub rule: String,
    /// Instance label (vantage location) — empty for global rules.
    pub label: String,
    /// `pending`, `firing`, or `resolved`.
    pub state: &'static str,
    /// Tick (campaign cursor) this transition happened at.
    pub tick: u64,
    /// Tick the alert opened (went pending).
    pub opened: u64,
    /// Tick the alert escalated to firing, if it did.
    pub fired: Option<u64>,
    /// Detector value at this transition (per-mille ratio, centi-z, or
    /// gap ticks, per the rule family).
    pub value: i64,
    /// The rule threshold the value is compared against.
    pub threshold: i64,
}

impl AlertEvent {
    /// Serialize as one `ALERTS_*.jsonl` line (no trailing newline).
    /// Keys are emitted in a fixed order, so equal events yield equal
    /// bytes.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("kind".to_string(), Json::str("alert")),
            ("schema".to_string(), Json::int(WATCH_SCHEMA_VERSION)),
            ("id".to_string(), Json::str(self.id.clone())),
            ("rule".to_string(), Json::str(self.rule.clone())),
        ];
        if !self.label.is_empty() {
            fields.push(("label".to_string(), Json::str(self.label.clone())));
        }
        fields.push(("state".to_string(), Json::str(self.state)));
        fields.push(("tick".to_string(), Json::int(self.tick as i64)));
        fields.push(("opened".to_string(), Json::int(self.opened as i64)));
        if let Some(f) = self.fired {
            fields.push(("fired".to_string(), Json::int(f as i64)));
        }
        fields.push(("value".to_string(), Json::int(self.value)));
        fields.push(("threshold".to_string(), Json::int(self.threshold)));
        Json::object(fields)
    }
}

/// Stable alert id: FNV over rule, label, and opening tick.
fn alert_id(rule: &str, label: &str, opened: u64) -> String {
    format!(
        "{:016x}",
        consent_trace::stable_id(&[rule, label, &opened.to_string()])
    )
}

/// Lifecycle phase of an open alert instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Pending,
    Firing,
}

/// One open alert (an instance of a rule for one label).
#[derive(Clone, Debug, PartialEq, Eq)]
struct Instance {
    phase: Phase,
    opened: u64,
    fired: Option<u64>,
}

/// Integer EWMA state for one drift rule: mean and mean absolute
/// deviation, scaled ×1000.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct DriftState {
    mean_m: i64,
    mad_m: i64,
    seen: u64,
}

/// The full fold state: everything needed to continue evaluation from
/// a checkpoint. Serialized into the `watch-state` checkpoint section.
#[derive(Clone, Debug, Default, PartialEq)]
struct EngineState {
    /// Open alerts by instance key (`s<idx>|<label>`, `d<idx>`,
    /// `g|<label>`).
    instances: BTreeMap<String, Instance>,
    /// Per-SLO-instance ring of the last `long_windows` (num, den)
    /// window pairs.
    rings: BTreeMap<String, VecDeque<(u64, u64)>>,
    /// Per-drift-rule EWMA state.
    drift: BTreeMap<String, DriftState>,
    /// Per-location tick of the last window with a usable capture.
    gap: BTreeMap<String, u64>,
}

/// Ratio in parts per thousand (caller guarantees `den > 0`).
fn rate_pm(num: u64, den: u64) -> u64 {
    num.saturating_mul(1000) / den
}

/// The window metrics every detector reads, extracted from one sample's
/// counter deltas.
#[derive(Debug, Default)]
struct WindowMetrics {
    /// Per vantage location: (usable captures, total captures).
    capture: BTreeMap<String, (u64, u64)>,
    /// (dead-lettered outcomes, total outcomes).
    dead: (u64, u64),
    /// (io faults, io faults + durable writes).
    iofault: (u64, u64),
    /// (retries, retries + durable writes).
    retry: (u64, u64),
    /// (CMP detection hits, hits + misses).
    cmp: (u64, u64),
    /// Pairs processed this window.
    pairs: u64,
}

impl WindowMetrics {
    fn from_sample(sample: &ObsSample) -> WindowMetrics {
        let mut m = WindowMetrics::default();
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (key, v) in &sample.counters {
            let (base, labels) = parse_key(key);
            match base {
                "capture_db.insert" => {
                    let loc = labels
                        .iter()
                        .find(|(k, _)| *k == "location")
                        .map(|(_, v)| *v)
                        .unwrap_or("");
                    let status = labels
                        .iter()
                        .find(|(k, _)| *k == "status")
                        .map(|(_, v)| *v)
                        .unwrap_or("");
                    let entry = m.capture.entry(loc.to_string()).or_insert((0, 0));
                    entry.1 += v;
                    if USABLE_STATUSES.contains(&status) {
                        entry.0 += v;
                    }
                }
                "campaign.outcome" => {
                    let outcome = labels
                        .iter()
                        .find(|(k, _)| *k == "outcome")
                        .map(|(_, v)| *v)
                        .unwrap_or("");
                    m.dead.1 += v;
                    if !LIVE_OUTCOMES.contains(&outcome) {
                        m.dead.0 += v;
                    }
                }
                "fingerprint.detect.hit" => hits += v,
                "fingerprint.detect.miss" | "fingerprint.detect.miss_degraded" => misses += v,
                "checkpoint.io_fault" => m.iofault.0 += v,
                "checkpoint.retry" => m.retry.0 += v,
                "checkpoint.writes" => {
                    m.iofault.1 += v;
                    m.retry.1 += v;
                }
                _ => {}
            }
        }
        m.iofault.1 += m.iofault.0;
        m.retry.1 += m.retry.0;
        m.cmp = (hits, hits + misses);
        m.pairs = sample.pairs();
        m
    }
}

/// Advance one instance's lifecycle given this window's breach verdict.
/// `confirm` is the escalation condition (long-window breach for SLO
/// rules; immediate for drift; 2× gap for coverage).
#[allow(clippy::too_many_arguments)]
fn transition(
    instances: &mut BTreeMap<String, Instance>,
    events: &mut Vec<AlertEvent>,
    key: &str,
    rule: &str,
    label: &str,
    breach: bool,
    confirm: bool,
    tick: u64,
    value: i64,
    threshold: i64,
) {
    let event = |inst: &Instance, state: &'static str| AlertEvent {
        id: alert_id(rule, label, inst.opened),
        rule: rule.to_string(),
        label: label.to_string(),
        state,
        tick,
        opened: inst.opened,
        fired: inst.fired,
        value,
        threshold,
    };
    match instances.get_mut(key) {
        None => {
            if breach {
                let mut inst = Instance {
                    phase: Phase::Pending,
                    opened: tick,
                    fired: None,
                };
                events.push(event(&inst, "pending"));
                if confirm {
                    inst.phase = Phase::Firing;
                    inst.fired = Some(tick);
                    events.push(event(&inst, "firing"));
                }
                instances.insert(key.to_string(), inst);
            }
        }
        Some(inst) => {
            if breach {
                if confirm && inst.phase == Phase::Pending {
                    inst.phase = Phase::Firing;
                    inst.fired = Some(tick);
                    let ev = event(inst, "firing");
                    events.push(ev);
                }
            } else {
                let ev = event(inst, "resolved");
                events.push(ev);
                instances.remove(key);
            }
        }
    }
}

/// Evaluate every configured rule against one sample, mutating `state`
/// and returning the lifecycle transitions, in deterministic rule/label
/// order.
fn eval(config: &WatchConfig, state: &mut EngineState, sample: &ObsSample) -> Vec<AlertEvent> {
    let m = WindowMetrics::from_sample(sample);
    let tick = sample.tick;
    let mut events = Vec::new();

    for (i, rule) in config.slo.iter().enumerate() {
        let rule_str = rule.to_string();
        let step = |state: &mut EngineState,
                    events: &mut Vec<AlertEvent>,
                    label: &str,
                    num: u64,
                    den: u64| {
            let key = format!("s{i}|{label}");
            let ring = state.rings.entry(key.clone()).or_default();
            ring.push_back((num, den));
            while ring.len() as u64 > rule.long_windows {
                ring.pop_front();
            }
            let value_pm = if den > 0 { rate_pm(num, den) } else { 0 };
            let short = den > 0 && rule.breaches(value_pm);
            let (lnum, lden) = ring
                .iter()
                .fold((0u64, 0u64), |(n, d), (rn, rd)| (n + rn, d + rd));
            let long = ring.len() as u64 == rule.long_windows
                && lden > 0
                && rule.breaches(rate_pm(lnum, lden));
            transition(
                &mut state.instances,
                events,
                &key,
                &rule_str,
                label,
                short,
                short && long,
                tick,
                value_pm as i64,
                rule.threshold_pm as i64,
            );
            // A label with no open alert and no data left in its ring
            // stops being tracked (keeps the persisted state compact).
            if !state.instances.contains_key(&key)
                && state.rings[&key].iter().all(|&(n, d)| n == 0 && d == 0)
            {
                state.rings.remove(&key);
            }
        };
        match rule.metric {
            SloMetric::Usable => {
                // Every location seen this window plus every location
                // still tracked by this rule, in sorted order.
                let prefix = format!("s{i}|");
                let mut labels: BTreeSet<String> = m.capture.keys().cloned().collect();
                labels.extend(
                    state
                        .rings
                        .keys()
                        .filter_map(|k| k.strip_prefix(&prefix))
                        .map(|l| l.to_string()),
                );
                for loc in labels {
                    let (usable, total) = m.capture.get(&loc).copied().unwrap_or((0, 0));
                    step(state, &mut events, &loc, usable, total);
                }
            }
            SloMetric::DeadLetter => step(state, &mut events, "", m.dead.0, m.dead.1),
            SloMetric::IoFault => step(state, &mut events, "", m.iofault.0, m.iofault.1),
            SloMetric::Retry => step(state, &mut events, "", m.retry.0, m.retry.1),
        }
    }

    for (i, rule) in config.drift.iter().enumerate() {
        let (x, has_data) = match rule.metric {
            DriftMetric::Cmp => (
                if m.cmp.1 > 0 {
                    rate_pm(m.cmp.0, m.cmp.1)
                } else {
                    0
                },
                m.cmp.1 > 0,
            ),
            DriftMetric::Throughput => (m.pairs, m.pairs > 0),
        };
        if !has_data {
            // A window with no signal neither updates the EWMA nor
            // resolves an open alert — no verdict either way.
            continue;
        }
        let key = format!("d{i}");
        let rule_str = rule.to_string();
        let ds = state.drift.entry(key.clone()).or_default();
        let x_m = (x as i64).saturating_mul(1000);
        let (z_centi, armed) = if ds.seen == 0 {
            (0i64, false)
        } else {
            let diff = x_m - ds.mean_m;
            // MAD floor of 1.0 natural unit: a flat series must not
            // turn rounding noise into infinite z-scores.
            (
                diff.abs().saturating_mul(100) / ds.mad_m.max(1000),
                ds.seen >= rule.warmup,
            )
        };
        if ds.seen == 0 {
            ds.mean_m = x_m;
            ds.mad_m = 0;
        } else {
            let diff = x_m - ds.mean_m;
            ds.mean_m += diff / 8;
            ds.mad_m += (diff.abs() - ds.mad_m) / 8;
        }
        ds.seen += 1;
        let breach = armed && z_centi as u64 >= rule.z_centi;
        transition(
            &mut state.instances,
            &mut events,
            &key,
            &rule_str,
            "",
            breach,
            breach,
            tick,
            z_centi,
            rule.z_centi as i64,
        );
    }

    if let Some(rule) = &config.gap {
        let rule_str = rule.to_string();
        for (loc, (usable, _)) in &m.capture {
            match state.gap.get_mut(loc) {
                None => {
                    // First sight of this location: a usable capture
                    // anchors the gap at this tick; an unusable-only
                    // window anchors it at the window start.
                    let anchor = if *usable > 0 { tick } else { sample.window.0 };
                    state.gap.insert(loc.clone(), anchor);
                }
                Some(last) => {
                    if *usable > 0 {
                        *last = tick;
                    }
                }
            }
        }
        for (loc, last) in state.gap.clone() {
            let gap = tick.saturating_sub(last);
            transition(
                &mut state.instances,
                &mut events,
                &format!("g|{loc}"),
                &rule_str,
                &loc,
                gap >= rule.ticks,
                gap >= 2 * rule.ticks,
                tick,
                gap as i64,
                rule.ticks as i64,
            );
        }
    }

    events
}

/// Serialize the engine state (plus config and cursor) as the
/// `watch-state` checkpoint blob: one compact JSON object, trailing
/// newline, byte-deterministic.
fn export_state(config: &WatchConfig, state: &EngineState, last_tick: u64) -> String {
    let instances = Json::object(state.instances.iter().map(|(k, inst)| {
        let mut fields: Vec<(String, Json)> = vec![
            (
                "phase".to_string(),
                Json::str(match inst.phase {
                    Phase::Pending => "pending",
                    Phase::Firing => "firing",
                }),
            ),
            ("opened".to_string(), Json::int(inst.opened as i64)),
        ];
        if let Some(f) = inst.fired {
            fields.push(("fired".to_string(), Json::int(f as i64)));
        }
        (k.clone(), Json::object(fields))
    }));
    let rings = Json::object(state.rings.iter().map(|(k, ring)| {
        (
            k.clone(),
            Json::array(
                ring.iter()
                    .map(|&(n, d)| Json::array([Json::int(n as i64), Json::int(d as i64)])),
            ),
        )
    }));
    let drift = Json::object(state.drift.iter().map(|(k, ds)| {
        (
            k.clone(),
            Json::object([
                ("mean_m".to_string(), Json::int(ds.mean_m)),
                ("mad_m".to_string(), Json::int(ds.mad_m)),
                ("seen".to_string(), Json::int(ds.seen as i64)),
            ]),
        )
    }));
    let gap = Json::object(
        state
            .gap
            .iter()
            .map(|(k, v)| (k.clone(), Json::int(*v as i64))),
    );
    let doc = Json::object([
        ("kind".to_string(), Json::str("watch_state")),
        ("schema".to_string(), Json::int(WATCH_SCHEMA_VERSION)),
        ("config".to_string(), Json::str(config.to_string())),
        ("last_tick".to_string(), Json::int(last_tick as i64)),
        ("instances".to_string(), instances),
        ("rings".to_string(), rings),
        ("drift".to_string(), drift),
        ("gap".to_string(), gap),
    ]);
    let mut out = doc.to_compact();
    out.push('\n');
    out
}

fn json_u64(j: &Json) -> Option<u64> {
    j.as_f64().map(|f| f as u64)
}

fn json_i64(j: &Json) -> Option<i64> {
    j.as_f64().map(|f| f as i64)
}

/// Parse a state blob back, validating kind, schema, and that the
/// persisting run used the same rule config (resuming under different
/// rules voids the byte-identity contract, so it restarts fresh).
fn import_state(config: &WatchConfig, blob: &str) -> Result<(EngineState, u64), String> {
    let doc = Json::parse(blob.trim_end()).map_err(|e| format!("unparseable watch state: {e}"))?;
    if doc.get("kind").and_then(Json::as_str) != Some("watch_state") {
        return Err("not a watch_state blob".to_string());
    }
    if doc.get("schema").and_then(Json::as_u32) != Some(WATCH_SCHEMA_VERSION as u32) {
        return Err("unsupported watch_state schema".to_string());
    }
    let persisted = doc.get("config").and_then(Json::as_str).unwrap_or("");
    if persisted != config.to_string() {
        return Err(format!(
            "watch config changed (checkpoint: {persisted}, now: {config})"
        ));
    }
    let last_tick = doc
        .get("last_tick")
        .and_then(json_u64)
        .ok_or("missing last_tick")?;
    let mut state = EngineState::default();
    if let Some(obj) = doc.get("instances").and_then(Json::as_object) {
        for (k, v) in obj {
            let phase = match v.get("phase").and_then(Json::as_str) {
                Some("pending") => Phase::Pending,
                Some("firing") => Phase::Firing,
                _ => return Err(format!("bad phase for instance {k}")),
            };
            let opened = v.get("opened").and_then(json_u64).ok_or("missing opened")?;
            let fired = v.get("fired").and_then(json_u64);
            state.instances.insert(
                k.clone(),
                Instance {
                    phase,
                    opened,
                    fired,
                },
            );
        }
    }
    if let Some(obj) = doc.get("rings").and_then(Json::as_object) {
        for (k, v) in obj {
            let ring = v
                .as_array()
                .ok_or("ring is not an array")?
                .iter()
                .map(|pair| {
                    let n = pair.at(0).and_then(json_u64)?;
                    let d = pair.at(1).and_then(json_u64)?;
                    Some((n, d))
                })
                .collect::<Option<VecDeque<_>>>()
                .ok_or("bad ring entry")?;
            state.rings.insert(k.clone(), ring);
        }
    }
    if let Some(obj) = doc.get("drift").and_then(Json::as_object) {
        for (k, v) in obj {
            state.drift.insert(
                k.clone(),
                DriftState {
                    mean_m: v.get("mean_m").and_then(json_i64).ok_or("missing mean_m")?,
                    mad_m: v.get("mad_m").and_then(json_i64).ok_or("missing mad_m")?,
                    seen: v.get("seen").and_then(json_u64).ok_or("missing seen")?,
                },
            );
        }
    }
    if let Some(obj) = doc.get("gap").and_then(Json::as_object) {
        for (k, v) in obj {
            state
                .gap
                .insert(k.clone(), json_u64(v).ok_or("bad gap tick")?);
        }
    }
    Ok((state, last_tick))
}

/// A staged (not yet durable) observation: the evaluated window and the
/// state blob that went into the checkpoint attempt.
struct Staged {
    tick: u64,
    snap: Snapshot,
    state: EngineState,
    events: Vec<AlertEvent>,
}

struct WatchInner {
    base: Snapshot,
    last_tick: u64,
    state: EngineState,
    events: VecDeque<AlertEvent>,
    capacity: usize,
    dropped: u64,
    observed: u64,
    staged: Option<Staged>,
}

/// The watchdog attached to one campaign run (see the
/// [crate docs](crate)).
pub struct Watch {
    registry: &'static Registry,
    config: WatchConfig,
    inner: Mutex<WatchInner>,
}

impl std::fmt::Debug for Watch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Watch")
            .field("config", &self.config.to_string())
            .field("events", &inner.events.len())
            .field("last_tick", &inner.last_tick)
            .finish()
    }
}

impl Watch {
    /// Attach a watch to `registry` with `config`, taking the baseline
    /// snapshot now: traffic before this call is not attributed to any
    /// window. Retains up to 4096 alert events (oldest evicted beyond
    /// that, counted in [`dropped`](Self::dropped)).
    pub fn attach(registry: &'static Registry, config: WatchConfig) -> Arc<Watch> {
        Arc::new(Watch {
            registry,
            config,
            inner: Mutex::new(WatchInner {
                base: registry.snapshot(),
                last_tick: 0,
                state: EngineState::default(),
                events: VecDeque::new(),
                capacity: 4096,
                dropped: 0,
                observed: 0,
                staged: None,
            }),
        })
    }

    /// The rule configuration this watch evaluates.
    pub fn config(&self) -> &WatchConfig {
        &self.config
    }

    /// True when this watch has observed nothing and holds no state —
    /// the only condition under which [`import_state`](Self::import_state)
    /// is allowed.
    pub fn is_fresh(&self) -> bool {
        let inner = self.inner.lock();
        inner.observed == 0
            && inner.events.is_empty()
            && inner.last_tick == 0
            && inner.state == EngineState::default()
    }

    /// Restore detector state persisted by a previous incarnation
    /// (the `watch-state` checkpoint section). Fails if this watch has
    /// already observed traffic or if the blob was written under a
    /// different rule config.
    pub fn import_state(&self, blob: &str) -> Result<(), String> {
        if !self.is_fresh() {
            return Err("watch already has state; import only before the first window".into());
        }
        let (state, last_tick) = import_state(&self.config, blob)?;
        let mut inner = self.inner.lock();
        inner.state = state;
        inner.last_tick = last_tick;
        Ok(())
    }

    /// Re-take the baseline at cursor position `tick` without
    /// evaluating anything. Call after recovery, like
    /// [`Sampler::rebase`](consent_obs::Sampler::rebase): recovery's
    /// re-counting of imported work must not be attributed to any
    /// window. Drops any staged observation.
    pub fn rebase(&self, tick: u64) {
        let snap = self.registry.snapshot();
        let mut inner = self.inner.lock();
        inner.base = snap;
        inner.last_tick = tick;
        inner.staged = None;
    }

    /// Stage the window `(last_tick, tick]`: evaluate every rule on the
    /// registry delta and return the post-window state blob for the
    /// covering checkpoint. Nothing becomes observable until
    /// [`commit`](Self::commit); [`abort`](Self::abort) (or a process
    /// death) discards it. Returns `None` when `tick` has not advanced.
    pub fn stage(&self, tick: u64) -> Option<String> {
        let snap = self.registry.snapshot();
        let mut inner = self.inner.lock();
        if tick <= inner.last_tick {
            return None;
        }
        let delta = snap.delta_since(&inner.base);
        let sample = ObsSample {
            seq: tick,
            tick,
            window: (inner.last_tick, tick),
            counters: delta.counters.clone(),
            ..ObsSample::default()
        };
        let mut state = inner.state.clone();
        let events = eval(&self.config, &mut state, &sample);
        let blob = export_state(&self.config, &state, tick);
        inner.staged = Some(Staged {
            tick,
            snap,
            state,
            events,
        });
        Some(blob)
    }

    /// Make the staged observation durable-visible: advance the
    /// baseline, record the alert events, and publish lifecycle
    /// counters (`watch.alert{rule,state}`) and firing/pending gauges.
    /// No-op without a staged observation.
    pub fn commit(&self) {
        let mut inner = self.inner.lock();
        let Some(staged) = inner.staged.take() else {
            return;
        };
        inner.base = staged.snap;
        inner.last_tick = staged.tick;
        inner.state = staged.state;
        inner.observed += 1;
        let events = staged.events;
        Self::record(&mut inner, events);
    }

    /// Discard the staged observation (the checkpoint write was skipped
    /// or torn): the window stays open and the next
    /// [`stage`](Self::stage) covers it too.
    pub fn abort(&self) {
        self.inner.lock().staged = None;
    }

    /// Evaluate one externally produced sample immediately (no staging)
    /// — the direct streaming path for tests and wall-clock pipelines.
    /// Ignores samples whose tick has not advanced.
    pub fn ingest(&self, sample: &ObsSample) {
        let mut inner = self.inner.lock();
        if sample.tick <= inner.last_tick {
            return;
        }
        let mut state = inner.state.clone();
        let events = eval(&self.config, &mut state, sample);
        inner.state = state;
        inner.last_tick = sample.tick;
        inner.observed += 1;
        Self::record(&mut inner, events);
    }

    fn record(inner: &mut WatchInner, events: Vec<AlertEvent>) {
        for ev in events {
            consent_telemetry::count_labeled(
                "watch.alert",
                &[("rule", &ev.rule), ("state", ev.state)],
                1,
            );
            if inner.events.len() == inner.capacity {
                inner.events.pop_front();
                inner.dropped += 1;
            }
            inner.events.push_back(ev);
        }
        let firing = inner
            .state
            .instances
            .values()
            .filter(|i| i.phase == Phase::Firing)
            .count() as i64;
        let pending = inner.state.instances.len() as i64 - firing;
        consent_telemetry::gauge_set("watch.alerts.firing", firing);
        consent_telemetry::gauge_set("watch.alerts.pending", pending);
    }

    /// Alert events recorded by this incarnation, oldest first.
    pub fn events(&self) -> Vec<AlertEvent> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of retained alert events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Is the event log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Alerts currently in the firing phase.
    pub fn firing(&self) -> usize {
        self.inner
            .lock()
            .state
            .instances
            .values()
            .filter(|i| i.phase == Phase::Firing)
            .count()
    }

    /// Export this incarnation's alert events as `ALERTS_*.jsonl`: one
    /// compact JSON object per line, trailing newline. An empty log
    /// exports the empty string, so a resumed process can append its
    /// export to the previous incarnation's and the concatenation reads
    /// as one well-formed stream.
    pub fn export_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for ev in &inner.events {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// One summary line per firing transition, for the supervisor's
    /// `HealthReport` annotation.
    pub fn fired_summaries(&self) -> Vec<String> {
        self.inner
            .lock()
            .events
            .iter()
            .filter(|e| e.state == "firing")
            .map(|e| {
                let label = if e.label.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", e.label)
                };
                format!(
                    "{}{} fired @{} (value {}, threshold {})",
                    e.rule, label, e.tick, e.value, e.threshold
                )
            })
            .collect()
    }

    /// This incarnation's alerts aggregated per id (latest state wins),
    /// for the flight report's alerts section. Ordered by first
    /// appearance.
    pub fn flight_alerts(&self) -> Vec<FlightAlert> {
        let inner = self.inner.lock();
        let mut order: Vec<String> = Vec::new();
        let mut by_id: BTreeMap<String, FlightAlert> = BTreeMap::new();
        for ev in &inner.events {
            let entry = by_id.entry(ev.id.clone()).or_insert_with(|| {
                order.push(ev.id.clone());
                FlightAlert {
                    id: ev.id.clone(),
                    rule: ev.rule.clone(),
                    label: ev.label.clone(),
                    state: ev.state.to_string(),
                    opened: ev.opened,
                    fired: ev.fired,
                    resolved: None,
                    value: ev.value,
                    threshold: ev.threshold,
                }
            });
            entry.state = ev.state.to_string();
            entry.fired = ev.fired.or(entry.fired);
            if ev.state == "resolved" {
                entry.resolved = Some(ev.tick);
            }
            entry.value = ev.value;
            entry.threshold = ev.threshold;
        }
        order
            .into_iter()
            .filter_map(|id| by_id.remove(&id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DriftRule, GapRule, SloRule};

    fn sample(tick: u64, from: u64, counters: &[(&str, u64)]) -> ObsSample {
        ObsSample {
            seq: tick,
            tick,
            window: (from, tick),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            ..ObsSample::default()
        }
    }

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    fn usable_watch(threshold_pm: u64, long_windows: u64) -> Arc<Watch> {
        Watch::attach(
            leaked_registry(),
            WatchConfig {
                slo: vec![SloRule {
                    metric: SloMetric::Usable,
                    threshold_pm,
                    long_windows,
                }],
                ..WatchConfig::none()
            },
        )
    }

    #[test]
    fn slo_usable_walks_pending_firing_resolved() {
        let w = usable_watch(700, 2);
        let bad = &[
            ("capture_db.insert{location=EU cloud,status=Ok}", 1u64),
            (
                "capture_db.insert{location=EU cloud,status=ConnectionReset}",
                4,
            ),
        ][..];
        let good = &[("capture_db.insert{location=EU cloud,status=Ok}", 5u64)][..];
        // Window 1: short breach only (long window not full) → pending.
        w.ingest(&sample(5, 0, bad));
        // Window 2: short + long breach → firing.
        w.ingest(&sample(10, 5, bad));
        // Window 3: healthy → resolved.
        w.ingest(&sample(15, 10, good));
        let states: Vec<&str> = w.events().iter().map(|e| e.state).collect();
        assert_eq!(states, vec!["pending", "firing", "resolved"]);
        let evs = w.events();
        assert_eq!(evs[0].tick, 5);
        assert_eq!(evs[1].tick, 10);
        assert_eq!(evs[2].tick, 15);
        assert_eq!(evs[0].opened, 5);
        assert_eq!(evs[2].fired, Some(10));
        assert!(
            evs.iter().all(|e| e.id == evs[0].id),
            "one lifecycle, one id"
        );
        assert_eq!(evs[0].label, "EU cloud");
        assert_eq!(evs[0].value, 200, "1 usable of 5 = 200pm");
        assert_eq!(w.firing(), 0);
    }

    #[test]
    fn slo_threshold_is_not_a_breach_without_data() {
        let w = usable_watch(700, 1);
        w.ingest(&sample(5, 0, &[("campaign.progress", 5)]));
        assert!(w.events().is_empty(), "no captures → no usable verdict");
    }

    #[test]
    fn drift_fires_on_throughput_step_change() {
        let w = Watch::attach(
            leaked_registry(),
            WatchConfig {
                drift: vec![DriftRule {
                    metric: DriftMetric::Throughput,
                    z_centi: 300,
                    warmup: 2,
                }],
                ..WatchConfig::none()
            },
        );
        for i in 1..=4u64 {
            w.ingest(&sample(i * 5, (i - 1) * 5, &[("campaign.progress", 5)]));
        }
        assert!(w.events().is_empty(), "flat series never drifts");
        // Throughput collapses 5 → 1: |1000 - 5000| / max(mad,1000) ≫ 3σ.
        w.ingest(&sample(21, 20, &[("campaign.progress", 1)]));
        let states: Vec<&str> = w.events().iter().map(|e| e.state).collect();
        assert_eq!(states, vec!["pending", "firing"], "drift fires immediately");
        assert_eq!(w.firing(), 1);
        // Back to normal: resolved (EWMA only absorbed 1/8 of the dip).
        w.ingest(&sample(26, 21, &[("campaign.progress", 5)]));
        assert_eq!(w.events().last().unwrap().state, "resolved");
    }

    #[test]
    fn coverage_gap_pending_then_firing_then_resolved_by_usable_capture() {
        let w = Watch::attach(
            leaked_registry(),
            WatchConfig {
                gap: Some(GapRule { ticks: 5 }),
                ..WatchConfig::none()
            },
        );
        let usable = &[("capture_db.insert{location=EU cloud,status=Ok}", 2u64)][..];
        let blocked = &[(
            "capture_db.insert{location=EU cloud,status=LegallyBlocked}",
            2u64,
        )][..];
        w.ingest(&sample(5, 0, usable));
        assert!(w.events().is_empty());
        w.ingest(&sample(10, 5, blocked)); // gap 5 → pending
        w.ingest(&sample(15, 10, blocked)); // gap 10 → firing (2×)
        w.ingest(&sample(20, 15, usable)); // usable again → resolved
        let states: Vec<&str> = w.events().iter().map(|e| e.state).collect();
        assert_eq!(states, vec!["pending", "firing", "resolved"]);
        assert_eq!(w.events()[1].value, 10, "gap in ticks");
    }

    #[test]
    fn stage_commit_abort_protocol() {
        let reg = leaked_registry();
        let w = Watch::attach(
            reg,
            WatchConfig {
                slo: vec![SloRule {
                    metric: SloMetric::DeadLetter,
                    threshold_pm: 300,
                    long_windows: 1,
                }],
                ..WatchConfig::none()
            },
        );
        reg.counter("campaign.outcome{outcome=permanent}").add(4);
        reg.counter("campaign.outcome{outcome=success}").add(1);
        let blob = w.stage(5).expect("tick advanced");
        assert!(blob.contains("watch_state"));
        assert!(w.events().is_empty(), "staged events are not visible");
        w.abort();
        // Same window, staged again and committed this time.
        let blob2 = w.stage(5).expect("abort keeps the window open");
        assert_eq!(blob, blob2, "staging is repeatable");
        w.commit();
        let states: Vec<&str> = w.events().iter().map(|e| e.state).collect();
        assert_eq!(states, vec!["pending", "firing"]);
        assert!(w.stage(5).is_none(), "committed ticks never re-stage");
    }

    #[test]
    fn state_blob_round_trips_into_a_fresh_watch() {
        let reg = leaked_registry();
        let config =
            WatchConfig::parse("slo:deadletter:300:2;drift:throughput:300:2;gap:9").unwrap();
        let w = Watch::attach(reg, config.clone());
        reg.counter("campaign.outcome{outcome=permanent}").add(3);
        reg.counter("campaign.progress").add(5);
        reg.counter("capture_db.insert{location=EU cloud,status=Ok}")
            .add(2);
        let blob = w.stage(5).unwrap();
        w.commit();

        let w2 = Watch::attach(leaked_registry(), config.clone());
        assert!(w2.is_fresh());
        w2.import_state(&blob).expect("blob imports");
        assert!(!w2.is_fresh());
        // Continuing from the blob reproduces the uninterrupted state.
        let blob_direct = w.stage(9).map(|_| ()).map(|_| w.commit());
        let _ = blob_direct;
        w2.rebase(5);
        // Mismatched config is rejected.
        let w3 = Watch::attach(
            leaked_registry(),
            WatchConfig::parse("slo:deadletter:301:2").unwrap(),
        );
        assert!(w3.import_state(&blob).is_err());
        // A used watch refuses imports.
        assert!(w.import_state(&blob).is_err());
    }

    #[test]
    fn export_jsonl_is_parseable_and_empty_when_no_events() {
        let w = usable_watch(700, 1);
        assert_eq!(w.export_jsonl(), "", "empty log exports empty string");
        w.ingest(&sample(
            5,
            0,
            &[("capture_db.insert{location=EU cloud,status=HttpError}", 3)],
        ));
        let out = w.export_jsonl();
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            let j = Json::parse(line).expect("valid JSON");
            assert_eq!(j.get("kind").and_then(Json::as_str), Some("alert"));
            assert_eq!(j.get("schema").and_then(Json::as_u32), Some(1));
            assert!(j.get("id").and_then(Json::as_str).unwrap().len() == 16);
        }
    }

    #[test]
    fn flight_alerts_aggregate_lifecycles() {
        let w = usable_watch(700, 1);
        let bad = &[(
            "capture_db.insert{location=EU cloud,status=HttpError}",
            3u64,
        )][..];
        let good = &[("capture_db.insert{location=EU cloud,status=Ok}", 3u64)][..];
        w.ingest(&sample(5, 0, bad));
        w.ingest(&sample(10, 5, good));
        let rows = w.flight_alerts();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].state, "resolved");
        assert_eq!(rows[0].opened, 5);
        assert_eq!(rows[0].fired, Some(5));
        assert_eq!(rows[0].resolved, Some(10));
    }
}
