//! Random distributions used by the simulator.
//!
//! Implemented in-repo (rather than via `rand_distr`) to stay within the
//! approved dependency set:
//!
//! * [`Zipf`] — website popularity and social-media reshare counts are
//!   classic Zipf phenomena; the crawler feed and the synthetic web both
//!   sample from it.
//! * [`LogNormal`] — human interaction times (Figure 10) and page resource
//!   counts are well described by log-normals.
//! * [`Pareto`] — heavy-tailed transfer sizes.
//! * [`Exponential`] — inter-arrival times in the social feed.

use rand::Rng;

/// Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^-s`.
///
/// Sampling uses rejection-inversion (Hörmann & Derflinger), which is O(1)
/// per sample and exact, so we can draw from `n = 1_000_000` ranks without
/// precomputing a CDF table.
#[derive(Clone, Copy, Debug)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_n: f64,
    threshold: f64,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n` with exponent `s > 0`.
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let threshold = 2.0 - h_integral_inverse(h_integral(2.5, s) - h_mass(2.0, s), s);
        Zipf {
            n,
            s,
            h_x1,
            h_n,
            threshold,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Draw a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.threshold || u >= h_integral(k + 0.5, self.s) - h_mass(k, self.s) {
                return k as u64;
            }
        }
    }

    /// Unnormalized probability mass at rank `k`.
    pub fn mass(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        (k as f64).powf(-self.s)
    }
}

/// `H(x) = ∫ t^-s dt`, the integral of the Zipf mass envelope.
fn h_integral(x: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(1.0 - s) - 1.0) / (1.0 - s)
    }
}

/// Inverse of [`h_integral`].
fn h_integral_inverse(t: f64, s: f64) -> f64 {
    if (s - 1.0).abs() < 1e-12 {
        t.exp()
    } else {
        // Clamp to keep the radicand positive under float rounding.
        let radicand = (1.0 + t * (1.0 - s)).max(f64::MIN_POSITIVE);
        radicand.powf(1.0 / (1.0 - s))
    }
}

/// The Zipf envelope mass `h(x) = x^-s`.
fn h_mass(x: f64, s: f64) -> f64 {
    x.powf(-s)
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal (of ln X).
    pub mu: f64,
    /// Standard deviation of the underlying normal.
    pub sigma: f64,
}

impl LogNormal {
    /// Construct directly from the log-space parameters. Panics if
    /// `sigma < 0`.
    pub fn new(mu: f64, sigma: f64) -> LogNormal {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Construct so that the distribution has the given *median* and
    /// multiplicative spread `sigma` (log-space sd). The median of a
    /// log-normal is `exp(mu)`, so this is the natural way to encode
    /// "median user takes 3.2 s".
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        assert!(median > 0.0, "median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Median of the distribution.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draw a sample using Box–Muller on two uniform draws.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto (type I) distribution with scale `x_min` and shape `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    /// Scale (minimum value).
    pub x_min: f64,
    /// Shape (tail index).
    pub alpha: f64,
}

impl Pareto {
    /// Panics unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Pareto {
        assert!(x_min > 0.0 && alpha > 0.0);
        Pareto { x_min, alpha }
    }

    /// Draw by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    /// Rate parameter (mean is `1/lambda`).
    pub lambda: f64,
}

impl Exponential {
    /// Panics unless `lambda > 0`.
    pub fn new(lambda: f64) -> Exponential {
        assert!(lambda > 0.0);
        Exponential { lambda }
    }

    /// Draw by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() / self.lambda
    }
}

/// One draw from the standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipf_rank1_frequency_matches_theory() {
        // For n=1000, s=1: P(1) = 1/H(1000) ≈ 0.1336.
        let z = Zipf::new(1000, 1.0);
        let mut r = rng();
        let n = 200_000;
        let ones = (0..n).filter(|_| z.sample(&mut r) == 1).count();
        let p1 = ones as f64 / n as f64;
        let h1000: f64 = (1..=1000).map(|k| 1.0 / k as f64).sum();
        let expected = 1.0 / h1000;
        assert!(
            (p1 - expected).abs() < 0.01,
            "observed {p1}, expected {expected}"
        );
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(100, 1.2);
        let mut r = rng();
        let mut counts = [0u32; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // Head ranks should dominate the tail decisively.
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[100]);
        assert_eq!(z.n(), 100);
        assert!((z.s() - 1.2).abs() < 1e-12);
        assert!(z.mass(1) > z.mass(2));
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_ranks() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn lognormal_median_is_exact_parameter() {
        let d = LogNormal::from_median(3.2, 0.6);
        assert!((d.median() - 3.2).abs() < 1e-12);
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 3.2).abs() < 0.1, "sample median {med}");
        assert!(d.mean() > d.median()); // right-skew
    }

    #[test]
    fn pareto_bounded_below() {
        let p = Pareto::new(2.0, 1.5);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(p.sample(&mut r) >= 2.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let e = Exponential::new(0.5);
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| e.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
