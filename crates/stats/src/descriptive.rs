//! Descriptive statistics: means, medians, quantiles, dispersion.
//!
//! The paper reports medians throughout ("it took the median user 3.2 s to
//! accept") because interaction-time distributions are heavily skewed.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample variance (n − 1 denominator); `None` for fewer than two values.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation; `None` for fewer than two values.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (average of the two central order statistics for even n).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Linear-interpolation quantile (type 7, the R/NumPy default).
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Quantile of an already-sorted slice (no allocation). Panics on empty
/// input in debug builds; returns the single element for n = 1.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Summary of a sample: n, mean, sd, min, p25, median, p75, p90, max.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for n = 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute a summary; `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Some(Summary {
            n: xs.len(),
            mean: mean(xs).unwrap(),
            std_dev: std_dev(xs).unwrap_or(0.0),
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p90: quantile_sorted(&sorted, 0.9),
            max: *sorted.last().unwrap(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

/// Empirical CDF evaluated at `x`: fraction of the sample ≤ `x`.
pub fn ecdf(xs: &[f64], x: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&v| v <= x).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[3.0]), Some(3.0));
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        assert_eq!(variance(&[5.0]), None);
        assert!(
            (variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 4.571428).abs() < 1e-5
        );
        assert!((std_dev(&[1.0, 2.0]).unwrap() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[7.0]), Some(7.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.25), Some(1.75));
        assert_eq!(quantile(&xs, 0.75), Some(3.25));
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.iqr(), 2.0);
        assert!(Summary::of(&[]).is_none());
        let one = Summary::of(&[2.0]).unwrap();
        assert_eq!(one.std_dev, 0.0);
        assert_eq!(one.p90, 2.0);
    }

    #[test]
    fn ecdf_basics() {
        let xs = [1.0, 2.0, 2.0, 10.0];
        assert_eq!(ecdf(&xs, 0.0), 0.0);
        assert_eq!(ecdf(&xs, 2.0), 0.75);
        assert_eq!(ecdf(&xs, 100.0), 1.0);
        assert_eq!(ecdf(&[], 1.0), 0.0);
    }
}
