//! Fixed-bin histograms and empirical CDF tables.
//!
//! Used by the timing experiments (Figure 10 reports interaction-time
//! distributions) and by the benches to print distribution shapes.

/// A histogram over `[lo, hi)` with equal-width bins, plus underflow and
/// overflow counters.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins spanning
    /// `[lo, hi)`. Panics unless `lo < hi` and `nbins > 0`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(nbins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn record_all(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.record(x);
        }
    }

    /// Total number of observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.bins.len()
    }

    /// `(lower_edge, upper_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Fraction of in-range mass at or below the upper edge of bin `i`.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.bins.iter().sum();
        if in_range == 0 {
            return 0.0;
        }
        let upto: u64 = self.bins[..=i].iter().sum();
        upto as f64 / in_range as f64
    }

    /// Render a compact ASCII bar chart, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("{lo:8.2} -{hi:8.2} | {c:>7} {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("   < {:8.2} | {:>7}\n", self.lo, self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("  >= {:8.2} | {:>7}\n", self.hi, self.overflow));
        }
        out
    }
}

/// An empirical CDF: sorted sample with quantile evaluation in O(log n).
#[derive(Clone, Debug, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (NaNs are rejected with a panic).
    pub fn new(mut xs: Vec<f64>) -> Ecdf {
        assert!(xs.iter().all(|x| !x.is_nan()), "NaN in ECDF input");
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted: xs }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of the sample ≤ x.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF at probability `q` (type-7 interpolation).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(crate::descriptive::quantile_sorted(&self.sorted, q))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.record_all([0.0, 1.9, 2.0, 9.99, -1.0, 10.0, 55.0]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.bin(0), 2); // 0.0, 1.9
        assert_eq!(h.bin(1), 1); // 2.0
        assert_eq!(h.bin(4), 1); // 9.99
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.nbins(), 5);
        assert_eq!(h.bin_edges(1), (2.0, 4.0));
    }

    #[test]
    fn cumulative_fraction_monotone() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_all([0.5, 1.5, 2.5, 3.5]);
        let fr: Vec<f64> = (0..4).map(|i| h.cumulative_fraction(i)).collect();
        assert_eq!(fr, [0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn render_is_wellformed() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record_all([0.5, 0.6, 1.5, -3.0, 9.0]);
        let s = h.render(10);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains('#'));
    }

    #[test]
    fn empty_histogram_render() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.cumulative_fraction(2), 0.0);
        assert_eq!(h.render(5).lines().count(), 3);
    }

    #[test]
    fn ecdf_eval_and_quantile() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.5));
        assert_eq!(e.quantile(0.0), Some(1.0));
        let empty = Ecdf::new(vec![]);
        assert_eq!(empty.eval(1.0), 0.0);
        assert_eq!(empty.quantile(0.5), None);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic]
    fn ecdf_rejects_nan() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }
}
