//! Proportion tests: two-proportion z-test and chi-square.
//!
//! The paper reports a consent-rate increase from 83 % to 90 % between
//! the two dialog configurations (Figure 10); comparing two binomial
//! proportions is the standard test for that effect.

use crate::normal;

/// Result of a two-proportion z-test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TwoProportion {
    /// Successes / trials in the first sample.
    pub x1: u64,
    /// Trials in the first sample.
    pub n1: u64,
    /// Successes in the second sample.
    pub x2: u64,
    /// Trials in the second sample.
    pub n2: u64,
    /// First sample proportion.
    pub p1: f64,
    /// Second sample proportion.
    pub p2: f64,
    /// z statistic under the pooled null.
    pub z: f64,
    /// Two-sided p-value.
    pub p_two_sided: f64,
}

/// Error for degenerate proportion-test inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProportionError {
    /// A sample has zero trials.
    EmptySample,
    /// Successes exceed trials.
    Inconsistent,
    /// Pooled proportion is 0 or 1; the z statistic is undefined.
    Degenerate,
}

impl std::fmt::Display for ProportionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProportionError::EmptySample => write!(f, "empty sample"),
            ProportionError::Inconsistent => write!(f, "successes exceed trials"),
            ProportionError::Degenerate => write!(f, "all successes or all failures"),
        }
    }
}

impl std::error::Error for ProportionError {}

/// Two-sided two-proportion z-test with a pooled variance estimate.
///
/// ```
/// use consent_stats::proportion::two_proportion_z;
/// // The paper's consent rates: 1344/1623 (83%) vs 1152/1287 (90%).
/// let t = two_proportion_z(1344, 1623, 1152, 1287).unwrap();
/// assert!(t.p_two_sided < 0.001);
/// assert!(t.z < 0.0); // first rate lower
/// ```
pub fn two_proportion_z(
    x1: u64,
    n1: u64,
    x2: u64,
    n2: u64,
) -> Result<TwoProportion, ProportionError> {
    if n1 == 0 || n2 == 0 {
        return Err(ProportionError::EmptySample);
    }
    if x1 > n1 || x2 > n2 {
        return Err(ProportionError::Inconsistent);
    }
    let p1 = x1 as f64 / n1 as f64;
    let p2 = x2 as f64 / n2 as f64;
    let pooled = (x1 + x2) as f64 / (n1 + n2) as f64;
    if pooled <= 0.0 || pooled >= 1.0 {
        return Err(ProportionError::Degenerate);
    }
    let se = (pooled * (1.0 - pooled) * (1.0 / n1 as f64 + 1.0 / n2 as f64)).sqrt();
    let z = (p1 - p2) / se;
    Ok(TwoProportion {
        x1,
        n1,
        x2,
        n2,
        p1,
        p2,
        z,
        p_two_sided: normal::p_two_sided(z),
    })
}

/// Pearson chi-square statistic for a 2×2 contingency table
/// `[[a, b], [c, d]]`, with 1 degree of freedom. Returns `(chi2, p)`.
/// The p-value uses the identity χ²(1) = z², so it matches
/// [`two_proportion_z`] without a continuity correction.
pub fn chi_square_2x2(a: u64, b: u64, c: u64, d: u64) -> Result<(f64, f64), ProportionError> {
    let n = (a + b + c + d) as f64;
    if n == 0.0 {
        return Err(ProportionError::EmptySample);
    }
    let (af, bf, cf, df) = (a as f64, b as f64, c as f64, d as f64);
    let denom = (af + bf) * (cf + df) * (af + cf) * (bf + df);
    if denom == 0.0 {
        return Err(ProportionError::Degenerate);
    }
    let chi2 = n * (af * df - bf * cf).powi(2) / denom;
    let p = normal::p_two_sided(chi2.sqrt());
    Ok((chi2, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_consent_rates_significant() {
        // 83 % vs 90 % at the paper's sample sizes.
        let t = two_proportion_z(1344, 1623, 1152, 1287).unwrap();
        assert!((t.p1 - 0.828).abs() < 0.001);
        assert!((t.p2 - 0.895).abs() < 0.001);
        assert!(t.z < -4.0, "z = {}", t.z);
        assert!(t.p_two_sided < 1e-5);
    }

    #[test]
    fn equal_rates_insignificant() {
        let t = two_proportion_z(500, 1000, 250, 500).unwrap();
        assert!(t.z.abs() < 1e-9);
        assert!((t.p_two_sided - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors() {
        assert_eq!(
            two_proportion_z(1, 0, 1, 2),
            Err(ProportionError::EmptySample)
        );
        assert_eq!(
            two_proportion_z(3, 2, 1, 2),
            Err(ProportionError::Inconsistent)
        );
        assert_eq!(
            two_proportion_z(0, 10, 0, 10),
            Err(ProportionError::Degenerate)
        );
        assert_eq!(
            two_proportion_z(10, 10, 10, 10),
            Err(ProportionError::Degenerate)
        );
        assert!(chi_square_2x2(0, 0, 0, 0).is_err());
        assert!(chi_square_2x2(5, 5, 0, 0).is_err());
    }

    #[test]
    fn chi_square_matches_z_squared() {
        let t = two_proportion_z(80, 100, 60, 100).unwrap();
        let (chi2, p) = chi_square_2x2(80, 20, 60, 40).unwrap();
        assert!((chi2 - t.z * t.z).abs() < 1e-9, "{chi2} vs {}", t.z * t.z);
        assert!((p - t.p_two_sided).abs() < 1e-9);
    }

    #[test]
    fn known_chi_square_value() {
        // Table [[10, 20], [30, 40]]: n=100, (ad-bc)^2 = 200^2,
        // chi2 = 100*40000 / (30*70*40*60) = 0.79365.
        let (chi2, p) = chi_square_2x2(10, 20, 30, 40).unwrap();
        assert!((chi2 - 0.79365).abs() < 0.001, "chi2 {chi2}");
        assert!((p - 0.373).abs() < 0.002, "p {p}");
    }
}
