//! Mann–Whitney U test (Wilcoxon rank-sum), with tie correction.
//!
//! The paper's Figure 10 analysis uses exactly this test to compare
//! accept-vs-reject interaction times, reporting
//! `U(N_accept = 1344, N_reject = 279) = 166582, z = -2.93, p < 0.01`.
//! We implement the large-sample normal approximation with tie-corrected
//! variance and a continuity correction, which is what standard packages
//! (R's `wilcox.test`, SciPy's `mannwhitneyu`) use for samples this size.

use crate::normal;

/// Result of a Mann–Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MannWhitney {
    /// Size of the first sample.
    pub n1: usize,
    /// Size of the second sample.
    pub n2: usize,
    /// U statistic of the *first* sample.
    pub u1: f64,
    /// U statistic of the second sample (`n1*n2 - u1`).
    pub u2: f64,
    /// Standard-normal test statistic (signed; negative when the first
    /// sample tends to be smaller).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_two_sided: f64,
    /// Rank-biserial effect size in `[-1, 1]`.
    pub effect_size: f64,
}

impl MannWhitney {
    /// Readable significance stars for report output.
    pub fn stars(&self) -> &'static str {
        if self.p_two_sided < 0.001 {
            "***"
        } else if self.p_two_sided < 0.01 {
            "**"
        } else if self.p_two_sided < 0.05 {
            "*"
        } else {
            ""
        }
    }
}

/// Error for degenerate inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MannWhitneyError {
    /// One or both samples are empty.
    EmptySample,
    /// All observations are identical; the statistic is undefined.
    AllTied,
}

impl std::fmt::Display for MannWhitneyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MannWhitneyError::EmptySample => write!(f, "empty sample"),
            MannWhitneyError::AllTied => write!(f, "all observations tied"),
        }
    }
}

impl std::error::Error for MannWhitneyError {}

/// Run the two-sided Mann–Whitney U test on two independent samples.
///
/// ```
/// use consent_stats::mann_whitney::mann_whitney_u;
/// let fast = [1.0, 2.0, 3.0, 2.5, 1.5];
/// let slow = [4.0, 5.0, 6.0, 5.5, 4.5];
/// let r = mann_whitney_u(&fast, &slow).unwrap();
/// assert!(r.p_two_sided < 0.05);
/// assert!(r.z < 0.0); // first sample stochastically smaller
/// ```
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Result<MannWhitney, MannWhitneyError> {
    let (n1, n2) = (xs.len(), ys.len());
    if n1 == 0 || n2 == 0 {
        return Err(MannWhitneyError::EmptySample);
    }

    // Pool, remember group membership, and rank with midranks for ties.
    let mut pooled: Vec<(f64, bool)> = xs
        .iter()
        .map(|&v| (v, true))
        .chain(ys.iter().map(|&v| (v, false)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in Mann-Whitney input"));

    let n = n1 + n2;
    let mut rank_sum_1 = 0.0f64; // sum of ranks of the first sample
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i + 1;
        while j < n && pooled[j].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i) as f64;
        // Midrank of this tie group (ranks are 1-based).
        let midrank = (i + 1 + j) as f64 / 2.0;
        for item in &pooled[i..j] {
            if item.1 {
                rank_sum_1 += midrank;
            }
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let nf = n as f64;
    let u1 = rank_sum_1 - n1f * (n1f + 1.0) / 2.0;
    let u2 = n1f * n2f - u1;

    let mean_u = n1f * n2f / 2.0;
    // Tie-corrected variance of U.
    let var_u = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return Err(MannWhitneyError::AllTied);
    }

    // Continuity correction toward the mean.
    let diff = u1 - mean_u;
    let cc = if diff > 0.0 {
        -0.5
    } else if diff < 0.0 {
        0.5
    } else {
        0.0
    };
    let z = (diff + cc) / var_u.sqrt();
    let p = normal::p_two_sided(z);
    let effect_size = 2.0 * u1 / (n1f * n2f) - 1.0;

    Ok(MannWhitney {
        n1,
        n2,
        u1,
        u2,
        z,
        p_two_sided: p,
        effect_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_input() {
        assert_eq!(
            mann_whitney_u(&[], &[1.0]),
            Err(MannWhitneyError::EmptySample)
        );
        assert_eq!(
            mann_whitney_u(&[1.0], &[]),
            Err(MannWhitneyError::EmptySample)
        );
        assert_eq!(
            mann_whitney_u(&[2.0, 2.0], &[2.0, 2.0]),
            Err(MannWhitneyError::AllTied)
        );
    }

    #[test]
    fn u_statistics_sum_to_n1n2() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        let ys = [2.0, 4.0, 6.0];
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert_eq!(r.u1 + r.u2, (xs.len() * ys.len()) as f64);
    }

    #[test]
    fn symmetric_under_swap() {
        let xs = [1.0, 2.0, 2.0, 3.0, 9.0];
        let ys = [4.0, 5.0, 6.0];
        let a = mann_whitney_u(&xs, &ys).unwrap();
        let b = mann_whitney_u(&ys, &xs).unwrap();
        assert_eq!(a.u1, b.u2);
        assert!((a.z + b.z).abs() < 1e-12);
        assert!((a.p_two_sided - b.p_two_sided).abs() < 1e-12);
        assert!((a.effect_size + b.effect_size).abs() < 1e-12);
    }

    #[test]
    fn reference_value_scipy() {
        // scipy.stats.mannwhitneyu([1,2,3,4,5], [3,4,5,6,7],
        //   use_continuity=True, alternative='two-sided')
        // Hand computation: pooled midranks give R1 = 19.5, so
        // U1 = 19.5 - 15 = 4.5. Tie-corrected variance:
        // 25/12 * (11 - 18/90) = 22.5, z = (4.5 - 12.5 + 0.5)/sqrt(22.5)
        // = -1.5811, two-sided p = 0.1138.
        let r = mann_whitney_u(&[1.0, 2.0, 3.0, 4.0, 5.0], &[3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        assert_eq!(r.u1, 4.5);
        assert!((r.z + 1.5811).abs() < 1e-3, "z = {}", r.z);
        assert!(
            (r.p_two_sided - 0.1138).abs() < 0.001,
            "p = {}",
            r.p_two_sided
        );
    }

    #[test]
    fn clear_separation_is_significant() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..50).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert_eq!(r.u1, 0.0);
        assert!(r.p_two_sided < 1e-10);
        assert_eq!(r.effect_size, -1.0);
        assert_eq!(r.stars(), "***");
    }

    #[test]
    fn no_difference_is_insignificant() {
        let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let ys: Vec<f64> = (0..100).map(|i| ((i + 5) % 10) as f64).collect();
        let r = mann_whitney_u(&xs, &ys).unwrap();
        assert!(r.p_two_sided > 0.5);
        assert_eq!(r.stars(), "");
        assert!(r.effect_size.abs() < 0.05);
    }

    #[test]
    fn stars_thresholds() {
        let mk = |p| MannWhitney {
            n1: 1,
            n2: 1,
            u1: 0.0,
            u2: 0.0,
            z: 0.0,
            p_two_sided: p,
            effect_size: 0.0,
        };
        assert_eq!(mk(0.0005).stars(), "***");
        assert_eq!(mk(0.005).stars(), "**");
        assert_eq!(mk(0.03).stars(), "*");
        assert_eq!(mk(0.2).stars(), "");
    }
}
