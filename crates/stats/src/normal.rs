//! Standard normal distribution functions.
//!
//! Used by the Mann–Whitney normal approximation (the paper reports
//! z-scores and p-values for its Figure 10 experiment) and by the
//! bootstrap confidence intervals.

/// Probability density of the standard normal at `x`.
pub fn pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Cumulative distribution function Φ(x) of the standard normal.
///
/// Uses the complementary error function via Abramowitz & Stegun 7.1.26,
/// accurate to about 1.5e-7 — ample for reporting p-value thresholds.
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value for a standard-normal test statistic `z`.
pub fn p_two_sided(z: f64) -> f64 {
    (2.0 * cdf(-z.abs())).clamp(0.0, 1.0)
}

/// Complementary error function, |error| ≤ 1.5e-7.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes rational Chebyshev approximation.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Inverse of the standard normal CDF (probit function).
///
/// Acklam's rational approximation, relative error < 1.15e-9. Panics if
/// `p` is outside `(0, 1)`.
pub fn quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_reference_values() {
        assert!((cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!((cdf(-1.96) - 0.024_997_895).abs() < 1e-6);
        assert!((cdf(3.0) - 0.998_650_102).abs() < 1e-6);
        assert!(cdf(-10.0) < 1e-20);
        // The A&S approximation's absolute error (~1.5e-7) dominates in
        // the upper tail, where the true gap to 1 is below 1e-20.
        assert!(cdf(10.0) > 1.0 - 1e-6);
    }

    #[test]
    fn pdf_reference_values() {
        assert!((pdf(0.0) - 0.398_942_280).abs() < 1e-8);
        assert!((pdf(1.0) - 0.241_970_725).abs() < 1e-8);
        assert!((pdf(-1.0) - pdf(1.0)).abs() < 1e-15);
    }

    #[test]
    fn p_values() {
        // z = 2.93 -> p ≈ 0.0034 (< 0.01 as the paper reports).
        let p = p_two_sided(-2.93);
        assert!(p < 0.01 && p > 0.001, "p = {p}");
        // z = 11.57 -> p far below 0.001.
        assert!(p_two_sided(-11.57) < 1e-6);
        assert!((p_two_sided(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.99, 0.999] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-6, "p={p} x={x} cdf={}", cdf(x));
        }
        assert!((quantile(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    #[should_panic]
    fn quantile_rejects_zero() {
        quantile(0.0);
    }
}
