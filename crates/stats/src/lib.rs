//! # consent-stats
//!
//! Statistics substrate for the consent-observatory workspace:
//!
//! * [`mann_whitney`] — the tie-corrected Mann–Whitney U test the paper
//!   uses for its Figure 10 timing experiment.
//! * [`descriptive`] — means, medians, quantiles, summaries.
//! * [`distributions`] — Zipf, log-normal, Pareto, exponential samplers
//!   driving the synthetic web and the user-behaviour model.
//! * [`histogram`] — fixed-bin histograms and empirical CDFs.
//! * [`bootstrap`] — percentile-bootstrap confidence intervals.
//! * [`normal`] — standard normal pdf/cdf/quantile.
//! * [`proportion`] — two-proportion z-test and 2×2 chi-square for the
//!   consent-rate comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod descriptive;
pub mod distributions;
pub mod histogram;
pub mod mann_whitney;
pub mod normal;
pub mod proportion;

pub use bootstrap::{median_ci, ConfidenceInterval};
pub use descriptive::{mean, median, quantile, Summary};
pub use distributions::{Exponential, LogNormal, Pareto, Zipf};
pub use histogram::{Ecdf, Histogram};
pub use mann_whitney::{mann_whitney_u, MannWhitney};
pub use proportion::{chi_square_2x2, two_proportion_z, TwoProportion};
