//! Bootstrap confidence intervals.
//!
//! The timing experiments report medians of skewed distributions;
//! percentile-bootstrap CIs are the standard non-parametric way to attach
//! uncertainty to them.

use crate::descriptive;
use consent_util::SeedTree;
use rand::Rng;

/// A two-sided confidence interval for a resampled statistic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Nominal coverage, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// True if `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        (self.lower..=self.upper).contains(&x)
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Returns `None` for an empty sample. Deterministic given the seed.
pub fn bootstrap_ci<F>(
    xs: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: SeedTree,
) -> Option<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64,
{
    if xs.is_empty() || resamples == 0 {
        return None;
    }
    assert!(
        (0.0..1.0).contains(&level) && level > 0.5,
        "level must be in (0.5, 1)"
    );
    let estimate = statistic(xs);
    let mut rng = seed.child("bootstrap").rng();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; xs.len()];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[rng.gen_range(0..xs.len())];
        }
        stats.push(statistic(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let alpha = (1.0 - level) / 2.0;
    Some(ConfidenceInterval {
        estimate,
        lower: descriptive::quantile_sorted(&stats, alpha),
        upper: descriptive::quantile_sorted(&stats, 1.0 - alpha),
        level,
    })
}

/// Percentile-bootstrap CI for the median.
pub fn median_ci(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: SeedTree,
) -> Option<ConfidenceInterval> {
    bootstrap_ci(
        xs,
        |s| descriptive::median(s).expect("non-empty by construction"),
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_yields_none() {
        assert!(median_ci(&[], 100, 0.95, SeedTree::new(1)).is_none());
        assert!(bootstrap_ci(&[1.0], |_| 0.0, 0, 0.95, SeedTree::new(1)).is_none());
    }

    #[test]
    fn interval_brackets_estimate() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let ci = median_ci(&xs, 500, 0.95, SeedTree::new(7)).unwrap();
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.contains(ci.estimate));
        assert!(ci.width() >= 0.0);
        assert_eq!(ci.level, 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
        let a = median_ci(&xs, 300, 0.9, SeedTree::new(5)).unwrap();
        let b = median_ci(&xs, 300, 0.9, SeedTree::new(5)).unwrap();
        assert_eq!(a, b);
        let c = median_ci(&xs, 300, 0.9, SeedTree::new(6)).unwrap();
        // Different seeds almost surely give a (slightly) different interval.
        assert!(a != c || a.estimate == c.estimate);
    }

    #[test]
    fn narrower_with_larger_sample() {
        let small: Vec<f64> = (0..20).map(|i| (i % 7) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 7) as f64).collect();
        let ci_s = median_ci(&small, 400, 0.95, SeedTree::new(2)).unwrap();
        let ci_l = median_ci(&large, 400, 0.95, SeedTree::new(2)).unwrap();
        assert!(ci_l.width() <= ci_s.width());
    }

    #[test]
    #[should_panic]
    fn rejects_nonsense_level() {
        let _ = median_ci(&[1.0, 2.0], 10, 0.3, SeedTree::new(1));
    }
}
