//! Prometheus text-exposition rendering of a telemetry [`Snapshot`].
//!
//! Output follows the text format version 0.0.4: one `# TYPE` line per
//! metric family, counters suffixed `_total`, gauges verbatim, and
//! histograms rendered as `summary` families (the registry's histograms
//! already reduce to p50/p95/p99, which is exactly a summary's shape).
//! Registry keys like `campaign.outcome{outcome=ok}` are split by
//! [`parse_key`] into family + labels; names are sanitized to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` grammar and label values escaped per the
//! spec. Every family also gets a `# HELP` line: the text comes from a
//! small static registry of known metric prefixes ([`HELP`]), falling
//! back to the sanitized family name for metrics nobody documented.

use consent_telemetry::registry::parse_key;
use consent_telemetry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sanitize a metric name: every character outside `[a-zA-Z0-9_:]`
/// becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// HELP text by metric-name prefix (matched against the sanitized
/// family name, longest-prefix-first is not needed — prefixes are
/// disjoint). Unknown families fall back to their sanitized name.
pub const HELP: &[(&str, &str)] = &[
    (
        "campaign.degrade",
        "Degradation-ladder descents and current rung of the checkpoint supervisor.",
    ),
    (
        "campaign.",
        "Campaign executor: pair processing, chunk progress, and per-pair outcomes.",
    ),
    (
        "capture_db.",
        "Capture database inserts by vantage location and capture status.",
    ),
    (
        "checkpoint.",
        "Durable checkpoint store: writes, opens, IO faults, retries, and maintenance.",
    ),
    (
        "supervisor.",
        "Self-healing write supervisor: logical backoff and recovery timing.",
    ),
    (
        "engine.",
        "Capture engine spans (page fetch and consent-dialog interaction).",
    ),
    (
        "fingerprint.",
        "CMP fingerprint detection verdicts (hits by CMP, misses, degraded inputs).",
    ),
    (
        "faultsim.",
        "Deterministically injected network and storage chaos.",
    ),
    ("trace.", "Structured trace log volume and shedding."),
    (
        "watch.",
        "Campaign watchdog: alert lifecycle transitions and currently pending/firing alerts.",
    ),
    (
        "obs.",
        "Flight-recorder internals (sampler windows and ring occupancy).",
    ),
];

/// The `# HELP` text for one sanitized family name.
fn help_for(family: &str) -> String {
    for (prefix, help) in HELP {
        if family.starts_with(&sanitize_name(prefix)) {
            return (*help).to_string();
        }
    }
    format!("Metric {family}.")
}

/// Escape HELP text: backslash and newline per the exposition-format
/// spec (double quotes are legal in help text).
fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a label value: backslash, double quote, and newline per the
/// exposition-format spec.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a label set (pre-sanitized names, raw values) as
/// `{k="v",…}`, or the empty string for no labels.
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

fn parsed_labels(key: &str) -> (String, Vec<(String, String)>) {
    let (base, labels) = parse_key(key);
    (
        sanitize_name(base),
        labels
            .into_iter()
            .map(|(k, v)| (sanitize_name(k), v.to_string()))
            .collect(),
    )
}

/// Label pairs for one series within a family.
type Labels = Vec<(String, String)>;

/// Group keys by sanitized family name, preserving per-key labels.
fn families<'a, T>(
    metrics: impl Iterator<Item = (&'a String, T)>,
) -> BTreeMap<String, Vec<(Labels, T)>> {
    let mut out: BTreeMap<String, Vec<(Labels, T)>> = BTreeMap::new();
    for (key, value) in metrics {
        let (family, labels) = parsed_labels(key);
        out.entry(family).or_default().push((labels, value));
    }
    out
}

/// Render `snapshot` in Prometheus text exposition format 0.0.4.
///
/// Deterministic: families and series appear in sorted key order, so
/// equal snapshots render to equal bytes.
pub fn exposition(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (family, series) in families(snapshot.counters.iter().map(|(k, v)| (k, *v))) {
        let name = format!("{family}_total");
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&help_for(&family)));
        let _ = writeln!(out, "# TYPE {name} counter");
        for (labels, value) in series {
            let _ = writeln!(out, "{name}{} {value}", label_block(&labels));
        }
    }
    for (family, series) in families(snapshot.gauges.iter().map(|(k, v)| (k, *v))) {
        let _ = writeln!(out, "# HELP {family} {}", escape_help(&help_for(&family)));
        let _ = writeln!(out, "# TYPE {family} gauge");
        for (labels, value) in series {
            let _ = writeln!(out, "{family}{} {value}", label_block(&labels));
        }
    }
    for (family, series) in families(snapshot.histograms.iter().map(|(k, h)| (k, *h))) {
        let _ = writeln!(out, "# HELP {family} {}", escape_help(&help_for(&family)));
        let _ = writeln!(out, "# TYPE {family} summary");
        for (labels, h) in series {
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                let mut ql = labels.clone();
                ql.push(("quantile".to_string(), q.to_string()));
                let _ = writeln!(out, "{family}{} {v}", label_block(&ql));
            }
            let block = label_block(&labels);
            let _ = writeln!(out, "{family}_sum{block} {}", h.sum);
            let _ = writeln!(out, "{family}_count{block} {}", h.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use consent_telemetry::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("campaign.pair"), "campaign_pair");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:sub"), "ok_name:sub");
    }

    #[test]
    fn escapes_label_values() {
        let block = label_block(&[("loc".to_string(), "EU \"cloud\"\n\\x".to_string())]);
        assert_eq!(block, "{loc=\"EU \\\"cloud\\\"\\n\\\\x\"}");
    }

    #[test]
    fn renders_all_three_kinds_with_one_type_line_per_family() {
        let reg = Registry::new();
        reg.counter_labeled("campaign.outcome", &[("outcome", "ok")])
            .add(7);
        reg.counter_labeled("campaign.outcome", &[("outcome", "dead letter")])
            .add(2);
        reg.gauge("queue.tracked_urls").set(-3);
        reg.histogram("campaign.pair").record(100);
        reg.histogram("campaign.pair").record(300);
        let text = exposition(&reg.snapshot());

        assert_eq!(
            text.matches("# TYPE campaign_outcome_total counter")
                .count(),
            1,
            "{text}"
        );
        assert!(text.contains("campaign_outcome_total{outcome=\"ok\"} 7"));
        assert!(text.contains("campaign_outcome_total{outcome=\"dead letter\"} 2"));
        assert!(text.contains("# TYPE queue_tracked_urls gauge"));
        assert!(text.contains("queue_tracked_urls -3"));
        assert!(text.contains("# TYPE campaign_pair summary"));
        assert!(text.contains("campaign_pair{quantile=\"0.5\"}"));
        assert!(text.contains("campaign_pair{quantile=\"0.95\"}"));
        assert!(text.contains("campaign_pair{quantile=\"0.99\"}"));
        assert!(text.contains("campaign_pair_sum 400"));
        assert!(text.contains("campaign_pair_count 2"));

        // HELP metadata: known prefixes get curated text, unknown
        // families fall back to their sanitized name; exactly one HELP
        // line per family, directly above its TYPE line.
        assert!(text.contains("# HELP campaign_outcome_total Campaign executor:"));
        assert!(text.contains("# HELP campaign_pair Campaign executor:"));
        assert!(text.contains("# HELP queue_tracked_urls Metric queue_tracked_urls."));
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.starts_with("# TYPE ") {
                assert!(
                    i > 0 && lines[i - 1].starts_with("# HELP "),
                    "TYPE without preceding HELP: {line}"
                );
            }
        }

        // Structural invariants every line must satisfy.
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP name + text");
                assert!(!help.is_empty());
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                assert!(matches!(
                    parts.next(),
                    Some("counter" | "gauge" | "summary")
                ));
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            } else {
                let (series, value) = line.rsplit_once(' ').expect("sample line");
                assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
                let name = series.split('{').next().unwrap();
                assert!(!name.is_empty());
                assert!(name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
            }
        }
    }

    #[test]
    fn deterministic_for_equal_snapshots() {
        let mk = || {
            let reg = Registry::new();
            reg.counter("b").add(2);
            reg.counter("a").add(1);
            reg.gauge("g").set(4);
            reg.histogram("h").record(10);
            exposition(&reg.snapshot())
        };
        assert_eq!(mk(), mk());
    }
}
