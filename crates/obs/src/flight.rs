//! Post-run flight report: what the campaign did, rendered for humans
//! and exported as JSON for CI artifacts.
//!
//! Built from the two things the recorder leaves behind — the sampled
//! [`TimeSeries`] and a cumulative end-of-run [`Snapshot`] delta — the
//! report has six sections:
//!
//! 1. **Phase breakdown**: time spent per instrumented span (pair
//!    processing, engine capture, checkpoint writes/opens, …).
//! 2. **Throughput curve**: pairs per sample window as an ASCII bar
//!    chart (per second in wall mode, per window in logical mode).
//! 3. **Fault heatmap**: `faultsim.injected{fault=…}` intensity per
//!    fault kind per window.
//! 4. **Storage health** (only when something went wrong): checkpoint
//!    IO faults, retries, skipped writes, store-maintenance counters,
//!    and every degradation-ladder descent with the window that first
//!    recorded it.
//! 5. **Archive health** (only when a bundle was packed or replayed):
//!    pack/dedup totals, scrub repairs, and replay divergences from the
//!    `bundle.*` counters.
//! 6. **Slowest windows**: the sample windows whose `campaign.pair`
//!    latency was worst (wall mode; logical mode falls back to the
//!    cumulative `campaign.pair` quantiles, since per-window durations
//!    are outside the determinism boundary).

use crate::series::{ObsSample, TimeSeries};
use consent_telemetry::registry::parse_key;
use consent_telemetry::{HistSummary, Snapshot};
use consent_util::table::{thousands, Table};
use consent_util::Json;
use std::collections::BTreeMap;

/// Spans surfaced in the phase breakdown, with display names.
const PHASES: &[(&str, &str)] = &[
    ("campaign.run", "campaign run"),
    ("campaign.pair", "pair processing"),
    ("engine.capture", "engine capture"),
    ("checkpoint.write", "checkpoint write"),
    ("checkpoint.open", "checkpoint open"),
];

/// Width of the ASCII bars/heatmap in characters.
const BAR_WIDTH: usize = 40;

/// Windows listed in the slowest-windows table.
const SLOWEST_N: usize = 5;

/// One row of the phase breakdown.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Display name of the phase.
    pub phase: String,
    /// Metric key of the underlying span histogram.
    pub key: String,
    /// Span count.
    pub count: u64,
    /// Total microseconds across all spans.
    pub total_us: u64,
    /// p50 / p95 microseconds.
    pub p50_us: u64,
    /// 95th percentile microseconds.
    pub p95_us: u64,
}

/// One point of the throughput curve.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Window end (cursor position or wall sample number).
    pub tick: u64,
    /// Pairs completed in the window.
    pub pairs: u64,
    /// Pairs per second (wall mode only).
    pub pairs_per_sec: Option<f64>,
}

/// One row of the fault heatmap: a fault kind and its per-window counts.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// The injected fault kind (label value).
    pub fault: String,
    /// Injection count per sample window, oldest first.
    pub per_window: Vec<u64>,
    /// Total injections.
    pub total: u64,
}

/// One degradation-ladder descent surfaced by the campaign supervisor.
#[derive(Clone, Debug)]
pub struct DegradeRow {
    /// Ladder rung entered (`shed-trace`, `wide-cadence`, `memory-only`).
    pub level: String,
    /// Times the rung was entered across the run.
    pub count: u64,
    /// Tick of the first sample window recording the descent (absent
    /// when the descent happened outside any sampled window).
    pub first_tick: Option<u64>,
}

/// Storage-health totals: what the checkpoint layer and the campaign
/// supervisor saw from the disk. All zeros on a healthy run — the
/// section is omitted entirely then.
#[derive(Clone, Debug, Default)]
pub struct StorageHealth {
    /// Checkpoint-write IO faults observed (`checkpoint.io_fault`).
    pub io_faults: u64,
    /// Supervised save retries (`checkpoint.retry`).
    pub retries: u64,
    /// Checkpoint writes skipped in memory-only mode
    /// (`checkpoint.skipped`).
    pub writes_skipped: u64,
    /// Directory-fsync failures surfaced by the store
    /// (`checkpoint.dir_fsync_fail`).
    pub dir_fsync_fails: u64,
    /// Orphaned temp files swept at store open (`checkpoint.tmp_swept`).
    pub tmp_swept: u64,
    /// Quarantined generations pruned to bound the quarantine
    /// (`checkpoint.quarantine.pruned`).
    pub quarantine_pruned: u64,
    /// Final degradation-ladder gauge (`campaign.degrade.level`,
    /// 0 = normal … 3 = memory-only).
    pub final_level: i64,
    /// Ladder descents, in rung order.
    pub degrades: Vec<DegradeRow>,
}

impl StorageHealth {
    /// True when nothing storage-related went wrong.
    pub fn is_quiet(&self) -> bool {
        self.io_faults == 0
            && self.retries == 0
            && self.writes_skipped == 0
            && self.dir_fsync_fails == 0
            && self.tmp_swept == 0
            && self.quarantine_pruned == 0
            && self.final_level == 0
            && self.degrades.is_empty()
    }
}

/// Archive-health totals: what the bundle packer, verifier, and
/// replayer reported through the `bundle.*` counters. Omitted entirely
/// when no bundle activity happened during the run.
#[derive(Clone, Debug, Default)]
pub struct ArchiveHealth {
    /// Bundles packed and verified clean (`bundle.packed`).
    pub packed: u64,
    /// Packs skipped because storage had degraded to memory-only
    /// (`bundle.pack.skipped`).
    pub packs_skipped: u64,
    /// Packs that failed outright (`bundle.pack.failures`).
    pub pack_failures: u64,
    /// Blobs physically written to the store (`bundle.blobs_written`).
    pub blobs_written: u64,
    /// Blobs deduplicated against already-stored content
    /// (`bundle.blobs_deduped`).
    pub blobs_deduped: u64,
    /// Logical bytes addressed by all manifests (`bundle.bytes_logical`).
    pub bytes_logical: u64,
    /// Bytes actually stored after dedup (`bundle.bytes_stored`).
    pub bytes_stored: u64,
    /// Corrupt blobs found by fsck (`bundle.verify.failures`).
    pub verify_failures: u64,
    /// Read faults absorbed by the bundle retry layer
    /// (`bundle.read.fault`).
    pub read_faults: u64,
    /// Write faults absorbed by the bundle retry layer
    /// (`bundle.write.fault`).
    pub write_faults: u64,
    /// Scrub rounds run by verified packing (`bundle.scrub.rounds`).
    pub scrub_rounds: u64,
    /// Condemned blobs repaired by the scrub loop
    /// (`bundle.scrub.repaired`).
    pub scrub_repaired: u64,
    /// Bundle replays executed (`bundle.replayed`).
    pub replays: u64,
    /// Replays that diverged from the archived documents
    /// (`bundle.replay.divergence`).
    pub replay_divergences: u64,
}

impl ArchiveHealth {
    /// True when no bundle was packed, replayed, skipped, or failed —
    /// the section carries no information then and is omitted.
    pub fn is_quiet(&self) -> bool {
        self.packed == 0 && self.packs_skipped == 0 && self.pack_failures == 0 && self.replays == 0
    }

    /// True when every pack verified clean, nothing was skipped or
    /// repaired under duress, and no replay diverged.
    pub fn is_healthy(&self) -> bool {
        self.packs_skipped == 0
            && self.pack_failures == 0
            && self.verify_failures == 0
            && self.scrub_repaired == 0
            && self.replay_divergences == 0
    }

    /// Blob-level dedup ratio (logical / stored bytes); 1.0 when
    /// nothing was stored.
    pub fn dedup_ratio(&self) -> f64 {
        if self.bytes_stored == 0 {
            1.0
        } else {
            self.bytes_logical as f64 / self.bytes_stored as f64
        }
    }
}

/// One watchdog alert surfaced in the report's alerts section: a full
/// lifecycle aggregated per stable alert id (produced by
/// `consent-watch`, attached via [`FlightReport::with_alerts`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightAlert {
    /// Stable FNV id shared by the alert's lifecycle events.
    pub id: String,
    /// Canonical rule spec (`slo:usable:700:3`, `drift:cmp:300:8`, …).
    pub rule: String,
    /// Instance label (vantage location); empty for global rules.
    pub label: String,
    /// Final lifecycle state seen: `pending`, `firing`, or `resolved`.
    pub state: String,
    /// Tick the alert opened.
    pub opened: u64,
    /// Tick it escalated to firing, if it did.
    pub fired: Option<u64>,
    /// Tick it resolved, if it did.
    pub resolved: Option<u64>,
    /// Last detector value observed.
    pub value: i64,
    /// Rule threshold the value is compared against.
    pub threshold: i64,
}

/// One row of the slowest-windows table.
#[derive(Clone, Debug)]
pub struct SlowWindow {
    /// The window `[from, to)`.
    pub window: (u64, u64),
    /// `campaign.pair` summary for that window.
    pub pair: HistSummary,
}

/// The assembled post-run report. Build with [`FlightReport::build`],
/// render with [`render`](FlightReport::render) or
/// [`to_json`](FlightReport::to_json).
#[derive(Clone, Debug)]
pub struct FlightReport {
    /// Phase breakdown rows (spans actually observed).
    pub phases: Vec<PhaseRow>,
    /// Throughput per sample window, oldest first.
    pub throughput: Vec<ThroughputPoint>,
    /// Fault heatmap rows (empty when chaos was off).
    pub faults: Vec<FaultRow>,
    /// Storage health and degradation events (`None` on a quiet run).
    pub storage: Option<StorageHealth>,
    /// Bundle pack/verify/replay health (`None` when no bundle
    /// activity happened).
    pub archive: Option<ArchiveHealth>,
    /// Watchdog alerts (empty without a watch; see
    /// [`with_alerts`](FlightReport::with_alerts)).
    pub alerts: Vec<FlightAlert>,
    /// Worst windows by per-window `campaign.pair` p95 (wall mode).
    pub slowest: Vec<SlowWindow>,
    /// Cumulative `campaign.pair` summary (always available; the only
    /// latency view in logical mode).
    pub pair_total: Option<HistSummary>,
    /// Total pairs covered by the series.
    pub pairs_total: u64,
    /// Samples evicted from the ring before the report was built.
    pub samples_dropped: u64,
}

impl FlightReport {
    /// Assemble a report from the sampled `series` and the cumulative
    /// end-of-run snapshot delta `total` (e.g. a
    /// `RunReport`'s delta, or `Registry::delta` against a pre-run
    /// baseline).
    pub fn build(series: &TimeSeries, total: &Snapshot) -> FlightReport {
        let samples: Vec<&ObsSample> = series.samples().collect();
        let phases = PHASES
            .iter()
            .filter_map(|(key, name)| {
                let h = total.histograms.get(*key)?;
                if h.count == 0 {
                    return None;
                }
                Some(PhaseRow {
                    phase: name.to_string(),
                    key: key.to_string(),
                    count: h.count,
                    total_us: h.sum,
                    p50_us: h.p50,
                    p95_us: h.p95,
                })
            })
            .collect();

        let mut prev_elapsed = 0u64;
        let throughput = samples
            .iter()
            .map(|s| {
                let pairs = s.pairs();
                let pairs_per_sec = s.elapsed_us.map(|us| {
                    let window_us = us.saturating_sub(prev_elapsed).max(1);
                    prev_elapsed = us;
                    pairs as f64 * 1_000_000.0 / window_us as f64
                });
                ThroughputPoint {
                    tick: s.tick,
                    pairs,
                    pairs_per_sec,
                }
            })
            .collect();

        let mut fault_rows: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for (i, s) in samples.iter().enumerate() {
            for (key, n) in &s.counters {
                let (base, labels) = parse_key(key);
                if base != "faultsim.injected" {
                    continue;
                }
                let Some((_, fault)) = labels.iter().find(|(k, _)| *k == "fault") else {
                    continue;
                };
                let row = fault_rows
                    .entry(fault.to_string())
                    .or_insert_with(|| vec![0; samples.len()]);
                row[i] = *n;
            }
        }
        let faults = fault_rows
            .into_iter()
            .map(|(fault, per_window)| FaultRow {
                total: per_window.iter().sum(),
                fault,
                per_window,
            })
            .collect();

        let mut degrades: Vec<DegradeRow> = total
            .counters
            .iter()
            .filter_map(|(key, n)| {
                let (base, labels) = parse_key(key);
                if base != "campaign.degrade" {
                    return None;
                }
                let (_, level) = labels.iter().find(|(k, _)| *k == "level")?;
                let first_tick = samples
                    .iter()
                    .find(|s| s.counters.get(key).is_some_and(|&c| c > 0))
                    .map(|s| s.tick);
                Some(DegradeRow {
                    level: level.to_string(),
                    count: *n,
                    first_tick,
                })
            })
            .collect();
        // Rung order, not alphabetical: the ladder reads top-down.
        let rung = |l: &str| match l {
            "shed-trace" => 1,
            "wide-cadence" => 2,
            "memory-only" => 3,
            _ => 4,
        };
        degrades.sort_by_key(|r| rung(&r.level));
        let storage = StorageHealth {
            io_faults: total.counter("checkpoint.io_fault"),
            retries: total.counter("checkpoint.retry"),
            writes_skipped: total.counter("checkpoint.skipped"),
            dir_fsync_fails: total.counter("checkpoint.dir_fsync_fail"),
            tmp_swept: total.counter("checkpoint.tmp_swept"),
            quarantine_pruned: total.counter("checkpoint.quarantine.pruned"),
            final_level: total
                .gauges
                .get("campaign.degrade.level")
                .copied()
                .unwrap_or(0),
            degrades,
        };
        let storage = (!storage.is_quiet()).then_some(storage);

        let archive = ArchiveHealth {
            packed: total.counter("bundle.packed"),
            packs_skipped: total.counter("bundle.pack.skipped"),
            pack_failures: total.counter("bundle.pack.failures"),
            blobs_written: total.counter("bundle.blobs_written"),
            blobs_deduped: total.counter("bundle.blobs_deduped"),
            bytes_logical: total.counter("bundle.bytes_logical"),
            bytes_stored: total.counter("bundle.bytes_stored"),
            verify_failures: total.counter("bundle.verify.failures"),
            read_faults: total.counter("bundle.read.fault"),
            write_faults: total.counter("bundle.write.fault"),
            scrub_rounds: total.counter("bundle.scrub.rounds"),
            scrub_repaired: total.counter("bundle.scrub.repaired"),
            replays: total.counter("bundle.replayed"),
            replay_divergences: total.counter("bundle.replay.divergence"),
        };
        let archive = (!archive.is_quiet()).then_some(archive);

        let mut slowest: Vec<SlowWindow> = samples
            .iter()
            .filter_map(|s| {
                let pair = *s.histograms.get("campaign.pair")?;
                (pair.count > 0).then_some(SlowWindow {
                    window: s.window,
                    pair,
                })
            })
            .collect();
        slowest.sort_by(|a, b| {
            (b.pair.p95, b.pair.max, b.window)
                .partial_cmp(&(a.pair.p95, a.pair.max, a.window))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        slowest.truncate(SLOWEST_N);

        FlightReport {
            phases,
            throughput,
            faults,
            storage,
            archive,
            alerts: Vec::new(),
            slowest,
            pair_total: total.histograms.get("campaign.pair").copied(),
            pairs_total: samples.iter().map(|s| s.pairs()).sum(),
            samples_dropped: series.dropped(),
        }
    }

    /// Attach the watchdog's per-id alert lifecycles to the report's
    /// alerts section.
    pub fn with_alerts(mut self, alerts: Vec<FlightAlert>) -> FlightReport {
        self.alerts = alerts;
        self
    }

    /// Render the report as human-readable tables and ASCII charts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== Campaign flight report: {} pairs across {} sample windows ===\n",
            thousands(self.pairs_total),
            self.throughput.len()
        ));
        if self.samples_dropped > 0 {
            out.push_str(&format!(
                "(ring buffer evicted {} early samples; report covers the retained window)\n",
                thousands(self.samples_dropped)
            ));
        }

        if !self.phases.is_empty() {
            let mut t = Table::with_columns(&["Phase", "Spans", "Total ms", "p50 µs", "p95 µs"]);
            t.numeric().title("Phase breakdown");
            for p in &self.phases {
                t.row(vec![
                    p.phase.clone(),
                    thousands(p.count),
                    format!("{:.1}", p.total_us as f64 / 1000.0),
                    thousands(p.p50_us),
                    thousands(p.p95_us),
                ]);
            }
            out.push('\n');
            out.push_str(&t.to_string());
        }

        if !self.throughput.is_empty() {
            out.push_str("\nThroughput curve (pairs per window)\n");
            let max_pairs = self.throughput.iter().map(|p| p.pairs).max().unwrap_or(0);
            for p in &self.throughput {
                let bar_len = if max_pairs == 0 {
                    0
                } else {
                    ((p.pairs as f64 / max_pairs as f64) * BAR_WIDTH as f64).round() as usize
                };
                let rate = match p.pairs_per_sec {
                    Some(r) => format!(" ({r:.0}/s)"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "  @{:>8} |{:<width$}| {}{}\n",
                    thousands(p.tick),
                    "#".repeat(bar_len),
                    thousands(p.pairs),
                    rate,
                    width = BAR_WIDTH
                ));
            }
        }

        if !self.faults.is_empty() {
            out.push_str("\nFault heatmap (injections per window: · none, ░ low, ▒ mid, █ high)\n");
            let peak = self
                .faults
                .iter()
                .flat_map(|r| r.per_window.iter().copied())
                .max()
                .unwrap_or(0)
                .max(1);
            for row in &self.faults {
                let cells: String = compress(&row.per_window, BAR_WIDTH)
                    .into_iter()
                    .map(|n| {
                        if n == 0 {
                            '·'
                        } else if n * 3 <= peak {
                            '░'
                        } else if n * 3 <= peak * 2 {
                            '▒'
                        } else {
                            '█'
                        }
                    })
                    .collect();
                out.push_str(&format!(
                    "  {:<22} {} {}\n",
                    row.fault,
                    cells,
                    thousands(row.total)
                ));
            }
        }

        if let Some(sh) = &self.storage {
            out.push_str(&format!(
                "\nStorage health: {} io fault(s), {} retr{}, {} write(s) skipped, \
                 final ladder level {}\n",
                thousands(sh.io_faults),
                thousands(sh.retries),
                if sh.retries == 1 { "y" } else { "ies" },
                thousands(sh.writes_skipped),
                sh.final_level,
            ));
            if sh.dir_fsync_fails + sh.tmp_swept + sh.quarantine_pruned > 0 {
                out.push_str(&format!(
                    "  store: {} dir-fsync failure(s), {} orphaned tmp file(s) swept, \
                     {} quarantined generation(s) pruned\n",
                    thousands(sh.dir_fsync_fails),
                    thousands(sh.tmp_swept),
                    thousands(sh.quarantine_pruned),
                ));
            }
            for d in &sh.degrades {
                let at = match d.first_tick {
                    Some(t) => format!(" (first seen @{})", thousands(t)),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "  degraded -> {} x{}{at}\n",
                    d.level,
                    thousands(d.count)
                ));
            }
        }

        if let Some(ah) = &self.archive {
            out.push_str(&format!(
                "\nArchive health: {} bundle(s) packed, {} blob(s) written, \
                 {} deduped, dedup ratio {:.3}\n",
                thousands(ah.packed),
                thousands(ah.blobs_written),
                thousands(ah.blobs_deduped),
                ah.dedup_ratio(),
            ));
            if ah.replays > 0 {
                out.push_str(&format!(
                    "  replay: {} run(s), {} divergence(s)\n",
                    thousands(ah.replays),
                    thousands(ah.replay_divergences),
                ));
            }
            if !ah.is_healthy() {
                out.push_str(&format!(
                    "  trouble: {} pack(s) skipped, {} pack failure(s), \
                     {} corrupt blob(s) found, {} repaired over {} scrub round(s), \
                     {} read / {} write fault(s) absorbed\n",
                    thousands(ah.packs_skipped),
                    thousands(ah.pack_failures),
                    thousands(ah.verify_failures),
                    thousands(ah.scrub_repaired),
                    thousands(ah.scrub_rounds),
                    thousands(ah.read_faults),
                    thousands(ah.write_faults),
                ));
            }
        }

        if !self.alerts.is_empty() {
            let mut t = Table::with_columns(&[
                "Rule", "Label", "State", "Opened", "Fired", "Resolved", "Value",
            ]);
            t.numeric().title("Watchdog alerts");
            let opt = |tick: Option<u64>| tick.map(thousands).unwrap_or_else(|| "-".to_string());
            for a in &self.alerts {
                t.row(vec![
                    a.rule.clone(),
                    if a.label.is_empty() {
                        "-".to_string()
                    } else {
                        a.label.clone()
                    },
                    a.state.clone(),
                    thousands(a.opened),
                    opt(a.fired),
                    opt(a.resolved),
                    format!("{} (≥|< {})", a.value, a.threshold),
                ]);
            }
            out.push('\n');
            out.push_str(&t.to_string());
        }

        if !self.slowest.is_empty() {
            let mut t = Table::with_columns(&["Window", "Pairs", "p50 µs", "p95 µs", "Max µs"]);
            t.numeric().title("Slowest windows (campaign.pair)");
            for w in &self.slowest {
                t.row(vec![
                    format!("{}..{}", w.window.0, w.window.1),
                    thousands(w.pair.count),
                    thousands(w.pair.p50),
                    thousands(w.pair.p95),
                    thousands(w.pair.max),
                ]);
            }
            out.push('\n');
            out.push_str(&t.to_string());
        } else if let Some(h) = &self.pair_total {
            let mut t = Table::with_columns(&["Spans", "p50 µs", "p95 µs", "p99 µs", "Max µs"]);
            t.numeric().title(
                "Pair latency (cumulative; per-window durations unavailable in logical-tick mode)",
            );
            t.row(vec![
                thousands(h.count),
                thousands(h.p50),
                thousands(h.p95),
                thousands(h.p99),
                thousands(h.max),
            ]);
            out.push('\n');
            out.push_str(&t.to_string());
        }
        out
    }

    /// Export the report as a JSON document (the CI artifact format).
    pub fn to_json(&self) -> Json {
        let hist = |h: &HistSummary| {
            Json::object([
                ("count".to_string(), Json::int(h.count as i64)),
                ("sum_us".to_string(), Json::int(h.sum as i64)),
                ("p50_us".to_string(), Json::int(h.p50 as i64)),
                ("p95_us".to_string(), Json::int(h.p95 as i64)),
                ("p99_us".to_string(), Json::int(h.p99 as i64)),
                ("max_us".to_string(), Json::int(h.max as i64)),
            ])
        };
        let mut fields = vec![
            ("kind".to_string(), Json::str("flight_report")),
            ("schema".to_string(), Json::int(1)),
            (
                "pairs_total".to_string(),
                Json::int(self.pairs_total as i64),
            ),
            (
                "samples_dropped".to_string(),
                Json::int(self.samples_dropped as i64),
            ),
            (
                "phases".to_string(),
                Json::array(self.phases.iter().map(|p| {
                    Json::object([
                        ("phase".to_string(), Json::str(p.phase.clone())),
                        ("key".to_string(), Json::str(p.key.clone())),
                        ("count".to_string(), Json::int(p.count as i64)),
                        ("total_us".to_string(), Json::int(p.total_us as i64)),
                        ("p50_us".to_string(), Json::int(p.p50_us as i64)),
                        ("p95_us".to_string(), Json::int(p.p95_us as i64)),
                    ])
                })),
            ),
            (
                "throughput".to_string(),
                Json::array(self.throughput.iter().map(|p| {
                    let mut f = vec![
                        ("tick".to_string(), Json::int(p.tick as i64)),
                        ("pairs".to_string(), Json::int(p.pairs as i64)),
                    ];
                    if let Some(r) = p.pairs_per_sec {
                        f.push(("pairs_per_sec".to_string(), Json::Number(r)));
                    }
                    Json::object(f)
                })),
            ),
            (
                "faults".to_string(),
                Json::array(self.faults.iter().map(|r| {
                    Json::object([
                        ("fault".to_string(), Json::str(r.fault.clone())),
                        ("total".to_string(), Json::int(r.total as i64)),
                        (
                            "per_window".to_string(),
                            Json::array(r.per_window.iter().map(|n| Json::int(*n as i64))),
                        ),
                    ])
                })),
            ),
            (
                "slowest_windows".to_string(),
                Json::array(self.slowest.iter().map(|w| {
                    Json::object([
                        (
                            "window".to_string(),
                            Json::array([
                                Json::int(w.window.0 as i64),
                                Json::int(w.window.1 as i64),
                            ]),
                        ),
                        ("pair".to_string(), hist(&w.pair)),
                    ])
                })),
            ),
        ];
        if let Some(sh) = &self.storage {
            fields.push((
                "storage_health".to_string(),
                Json::object([
                    ("io_faults".to_string(), Json::int(sh.io_faults as i64)),
                    ("retries".to_string(), Json::int(sh.retries as i64)),
                    (
                        "writes_skipped".to_string(),
                        Json::int(sh.writes_skipped as i64),
                    ),
                    (
                        "dir_fsync_fails".to_string(),
                        Json::int(sh.dir_fsync_fails as i64),
                    ),
                    ("tmp_swept".to_string(), Json::int(sh.tmp_swept as i64)),
                    (
                        "quarantine_pruned".to_string(),
                        Json::int(sh.quarantine_pruned as i64),
                    ),
                    ("final_level".to_string(), Json::int(sh.final_level)),
                    (
                        "degrades".to_string(),
                        Json::array(sh.degrades.iter().map(|d| {
                            let mut f = vec![
                                ("level".to_string(), Json::str(d.level.clone())),
                                ("count".to_string(), Json::int(d.count as i64)),
                            ];
                            if let Some(t) = d.first_tick {
                                f.push(("first_tick".to_string(), Json::int(t as i64)));
                            }
                            Json::object(f)
                        })),
                    ),
                ]),
            ));
        }
        if let Some(ah) = &self.archive {
            fields.push((
                "archive_health".to_string(),
                Json::object([
                    ("packed".to_string(), Json::int(ah.packed as i64)),
                    (
                        "packs_skipped".to_string(),
                        Json::int(ah.packs_skipped as i64),
                    ),
                    (
                        "pack_failures".to_string(),
                        Json::int(ah.pack_failures as i64),
                    ),
                    (
                        "blobs_written".to_string(),
                        Json::int(ah.blobs_written as i64),
                    ),
                    (
                        "blobs_deduped".to_string(),
                        Json::int(ah.blobs_deduped as i64),
                    ),
                    (
                        "bytes_logical".to_string(),
                        Json::int(ah.bytes_logical as i64),
                    ),
                    (
                        "bytes_stored".to_string(),
                        Json::int(ah.bytes_stored as i64),
                    ),
                    ("dedup_ratio".to_string(), Json::Number(ah.dedup_ratio())),
                    (
                        "verify_failures".to_string(),
                        Json::int(ah.verify_failures as i64),
                    ),
                    ("read_faults".to_string(), Json::int(ah.read_faults as i64)),
                    (
                        "write_faults".to_string(),
                        Json::int(ah.write_faults as i64),
                    ),
                    (
                        "scrub_rounds".to_string(),
                        Json::int(ah.scrub_rounds as i64),
                    ),
                    (
                        "scrub_repaired".to_string(),
                        Json::int(ah.scrub_repaired as i64),
                    ),
                    ("replays".to_string(), Json::int(ah.replays as i64)),
                    (
                        "replay_divergences".to_string(),
                        Json::int(ah.replay_divergences as i64),
                    ),
                ]),
            ));
        }
        if !self.alerts.is_empty() {
            fields.push((
                "alerts".to_string(),
                Json::array(self.alerts.iter().map(|a| {
                    let mut f = vec![
                        ("id".to_string(), Json::str(a.id.clone())),
                        ("rule".to_string(), Json::str(a.rule.clone())),
                    ];
                    if !a.label.is_empty() {
                        f.push(("label".to_string(), Json::str(a.label.clone())));
                    }
                    f.push(("state".to_string(), Json::str(a.state.clone())));
                    f.push(("opened".to_string(), Json::int(a.opened as i64)));
                    if let Some(t) = a.fired {
                        f.push(("fired".to_string(), Json::int(t as i64)));
                    }
                    if let Some(t) = a.resolved {
                        f.push(("resolved".to_string(), Json::int(t as i64)));
                    }
                    f.push(("value".to_string(), Json::int(a.value)));
                    f.push(("threshold".to_string(), Json::int(a.threshold)));
                    Json::object(f)
                })),
            ));
        }
        if let Some(h) = &self.pair_total {
            fields.push(("pair_total".to_string(), hist(h)));
        }
        Json::object(fields)
    }
}

/// Downsample `values` to at most `width` cells by summing runs, so a
/// long campaign's heatmap still fits one terminal row.
fn compress(values: &[u64], width: usize) -> Vec<u64> {
    if values.len() <= width {
        return values.to_vec();
    }
    let mut out = vec![0u64; width];
    for (i, v) in values.iter().enumerate() {
        out[i * width / values.len()] += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample(tick: u64, pairs: u64, faults: &[(&str, u64)]) -> ObsSample {
        let mut counters = BTreeMap::new();
        counters.insert("campaign.progress".to_string(), pairs);
        for (f, n) in faults {
            counters.insert(format!("faultsim.injected{{fault={f}}}"), *n);
        }
        ObsSample {
            seq: tick,
            tick,
            window: (tick.saturating_sub(pairs), tick),
            counters,
            ..ObsSample::default()
        }
    }

    fn total_snapshot() -> Snapshot {
        let mut s = Snapshot::default();
        s.histograms.insert(
            "campaign.pair".to_string(),
            HistSummary {
                count: 30,
                sum: 60_000,
                mean: 2000.0,
                min: 100,
                max: 9000,
                p50: 1500,
                p95: 7000,
                p99: 8800,
            },
        );
        s.histograms.insert(
            "checkpoint.write".to_string(),
            HistSummary {
                count: 3,
                sum: 4500,
                mean: 1500.0,
                min: 1000,
                max: 2000,
                p50: 1500,
                p95: 2000,
                p99: 2000,
            },
        );
        s
    }

    #[test]
    fn report_covers_all_sections() {
        let mut ts = TimeSeries::new(16);
        ts.push(sample(10, 10, &[("timeout", 2)]));
        ts.push(sample(20, 10, &[("timeout", 6), ("reset", 1)]));
        ts.push(sample(30, 10, &[]));
        let report = FlightReport::build(&ts, &total_snapshot());

        assert_eq!(report.pairs_total, 30);
        assert_eq!(report.throughput.len(), 3);
        assert!(report.throughput.iter().all(|p| p.pairs_per_sec.is_none()));
        assert_eq!(report.faults.len(), 2);
        let timeout = report.faults.iter().find(|r| r.fault == "timeout").unwrap();
        assert_eq!(timeout.per_window, vec![2, 6, 0]);
        assert_eq!(timeout.total, 8);
        let phases: Vec<&str> = report.phases.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(phases, vec!["campaign.pair", "checkpoint.write"]);
        // Logical samples carry no per-window histograms: slowest table
        // empty, cumulative fallback present.
        assert!(report.slowest.is_empty());
        assert_eq!(report.pair_total.unwrap().count, 30);
        // No storage trouble in this run: the section is omitted.
        assert!(report.storage.is_none());

        let text = report.render();
        assert!(text.contains("flight report"));
        assert!(text.contains("Phase breakdown"));
        assert!(text.contains("Throughput curve"));
        assert!(text.contains("Fault heatmap"));
        assert!(text.contains("cumulative"));

        let json = report.to_json();
        assert_eq!(
            json.get("kind").and_then(Json::as_str),
            Some("flight_report")
        );
        assert_eq!(
            json.get("faults").and_then(Json::as_array).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn wall_samples_rank_slowest_windows() {
        let mut ts = TimeSeries::new(16);
        for (i, p95) in [(1u64, 100u64), (2, 900), (3, 400)] {
            let mut s = sample(i, 5, &[]);
            s.elapsed_us = Some(i * 1000);
            s.histograms.insert(
                "campaign.pair".to_string(),
                HistSummary {
                    count: 5,
                    sum: 5 * p95,
                    mean: p95 as f64,
                    min: 10,
                    max: p95 + 50,
                    p50: p95 / 2,
                    p95,
                    p99: p95,
                },
            );
            ts.push(s);
        }
        let report = FlightReport::build(&ts, &total_snapshot());
        assert_eq!(report.slowest.len(), 3);
        assert_eq!(report.slowest[0].pair.p95, 900);
        assert_eq!(report.slowest[1].pair.p95, 400);
        assert!(report.throughput.iter().all(|p| p.pairs_per_sec.is_some()));
        assert!(report.render().contains("Slowest windows"));
    }

    #[test]
    fn storage_health_section_surfaces_degradations() {
        let mut ts = TimeSeries::new(16);
        ts.push(sample(10, 10, &[]));
        let mut s2 = sample(20, 10, &[("io-enospc", 3)]);
        s2.counters
            .insert("campaign.degrade{level=shed-trace}".to_string(), 1);
        ts.push(s2);

        let mut total = total_snapshot();
        total.counters.insert("checkpoint.io_fault".to_string(), 4);
        total.counters.insert("checkpoint.retry".to_string(), 2);
        total.counters.insert("checkpoint.skipped".to_string(), 1);
        total
            .counters
            .insert("campaign.degrade{level=shed-trace}".to_string(), 1);
        total
            .counters
            .insert("campaign.degrade{level=memory-only}".to_string(), 1);
        total.gauges.insert("campaign.degrade.level".to_string(), 3);

        let report = FlightReport::build(&ts, &total);
        let sh = report.storage.as_ref().expect("storage section present");
        assert!(!sh.is_quiet());
        assert_eq!((sh.io_faults, sh.retries, sh.writes_skipped), (4, 2, 1));
        assert_eq!(sh.final_level, 3);
        // Ladder order, not alphabetical; first_tick only where sampled.
        let levels: Vec<(&str, Option<u64>)> = sh
            .degrades
            .iter()
            .map(|d| (d.level.as_str(), d.first_tick))
            .collect();
        assert_eq!(
            levels,
            vec![("shed-trace", Some(20)), ("memory-only", None)]
        );
        // IO faults also land in the ordinary fault heatmap via their
        // faultsim.injected labels.
        assert!(report.faults.iter().any(|r| r.fault == "io-enospc"));

        let text = report.render();
        assert!(text.contains("Storage health"));
        assert!(text.contains("degraded -> shed-trace"));
        assert!(text.contains("first seen @20"));

        let json = report.to_json();
        let sh_json = json.get("storage_health").expect("json section");
        assert_eq!(
            sh_json.get("final_level").and_then(Json::as_f64),
            Some(3.0),
            "{}",
            json.to_pretty()
        );
        assert_eq!(
            sh_json
                .get("degrades")
                .and_then(Json::as_array)
                .map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn archive_health_section_surfaces_bundle_activity() {
        let mut ts = TimeSeries::new(16);
        ts.push(sample(10, 10, &[]));

        // No bundle counters: section omitted entirely.
        let report = FlightReport::build(&ts, &total_snapshot());
        assert!(report.archive.is_none());
        assert!(!report.render().contains("Archive health"));

        let mut total = total_snapshot();
        total.counters.insert("bundle.packed".to_string(), 1);
        total
            .counters
            .insert("bundle.blobs_written".to_string(), 40);
        total.counters.insert("bundle.blobs_deduped".to_string(), 8);
        total
            .counters
            .insert("bundle.bytes_logical".to_string(), 3000);
        total
            .counters
            .insert("bundle.bytes_stored".to_string(), 2000);
        total.counters.insert("bundle.scrub.rounds".to_string(), 1);
        total.counters.insert("bundle.replayed".to_string(), 1);

        let report = FlightReport::build(&ts, &total);
        let ah = report.archive.as_ref().expect("archive section present");
        assert!(!ah.is_quiet());
        assert!(ah.is_healthy(), "a clean pack+replay is healthy");
        assert_eq!((ah.packed, ah.blobs_written, ah.blobs_deduped), (1, 40, 8));
        assert!((ah.dedup_ratio() - 1.5).abs() < 1e-9);
        let text = report.render();
        assert!(text.contains("Archive health"));
        assert!(text.contains("dedup ratio 1.500"));
        assert!(text.contains("replay: 1 run(s), 0 divergence(s)"));
        assert!(!text.contains("trouble:"), "healthy run hides trouble line");

        // Trouble counters flip is_healthy and surface the detail line.
        total
            .counters
            .insert("bundle.verify.failures".to_string(), 2);
        total
            .counters
            .insert("bundle.scrub.repaired".to_string(), 2);
        total
            .counters
            .insert("bundle.replay.divergence".to_string(), 1);
        let report = FlightReport::build(&ts, &total);
        let ah = report.archive.as_ref().unwrap();
        assert!(!ah.is_healthy());
        let text = report.render();
        assert!(text.contains("trouble:"));
        assert!(text.contains("2 corrupt blob(s) found"));

        let json = report.to_json();
        let ah_json = json.get("archive_health").expect("json section");
        assert_eq!(ah_json.get("packed").and_then(Json::as_f64), Some(1.0));
        assert_eq!(
            ah_json.get("dedup_ratio").and_then(Json::as_f64),
            Some(1.5),
            "{}",
            json.to_pretty()
        );
        assert_eq!(
            ah_json.get("replay_divergences").and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn compress_preserves_totals() {
        let values: Vec<u64> = (0..100).map(|i| i % 7).collect();
        let c = compress(&values, 40);
        assert_eq!(c.len(), 40);
        assert_eq!(c.iter().sum::<u64>(), values.iter().sum::<u64>());
        assert_eq!(compress(&[1, 2, 3], 40), vec![1, 2, 3]);
    }
}
