//! The live sampler: periodically (or at logical ticks) turns registry
//! deltas into [`ObsSample`]s.
//!
//! # Two modes, one determinism boundary
//!
//! [`SampleMode::WallClock`] is the production mode: [`Sampler::start`]
//! spawns a monotonic background thread that samples every `interval`.
//! Its output carries wall-clock timestamps, gauge readings, and
//! per-window latency summaries — and is explicitly **outside** the
//! workspace's byte-identity guarantee (when a sample lands depends on
//! scheduling).
//!
//! [`SampleMode::LogicalTick`] keeps the determinism story testable:
//! the durable campaign driver calls [`Sampler::tick_at`] once per
//! *durable* chunk boundary — immediately after a successful checkpoint
//! `save` — so a sample exists iff the window it describes survived a
//! crash. In this mode the sample drops everything nondeterministic:
//! no wall time, no gauges (point-in-time racy reads), histograms
//! reduced to event-count deltas (how *many* pairs ran is deterministic;
//! how long they took is not), and keys matching the
//! [deny list](ObsConfig::deny) removed (e.g. `campaign.parallel.*`,
//! whose per-shard sample counts vary with the thread count). The
//! resulting `OBS_*.jsonl` is byte-identical across 1/2/4 threads and
//! kill-halfway resumes — asserted by `tests/it_obs.rs`.
//!
//! # Resume
//!
//! After recovery a resumed process re-counts work it never performed
//! (checkpoint import calls `CaptureDb::insert`, the store counts
//! `checkpoint.opens`, …). [`Sampler::rebase`] swallows that traffic:
//! call it with the recovered cursor *after* recovery and trace import,
//! *before* the chunk loop, and the next tick's window starts clean at
//! the recovered position. Because a logical sample's identity is its
//! cursor window — `seq == tick == pairs_done` — no sampler state needs
//! to be persisted for the concatenated exports of a killed run and its
//! resume to equal an uninterrupted run's.

use crate::series::{ObsSample, TimeSeries};
use consent_telemetry::{Registry, Snapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

/// Metric-key prefixes dropped from logical-tick samples by default.
///
/// `campaign.parallel.` is thread-count-dependent by construction: its
/// `shard_pairs` histogram records one sample per worker shard and its
/// `workers` gauge is the thread count, so keeping the family would
/// break byte-identity across 1/2/4-thread runs. `checkpoint.pruned`
/// depends on how many generations a crash left on disk, which differs
/// between an uninterrupted run and a kill-halfway resume. `watch.` is
/// the watchdog's own lifecycle telemetry: alert counters land in the
/// registry on commit — after the covering sample was emitted — so
/// they would surface one window late and vanish across a resume. The
/// delta-checkpoint families (`checkpoint.delta.`, `checkpoint.rebase`,
/// `checkpoint.chain.`) encode chain *position* — every resume opens a
/// fresh full base, so a kill-halfway run's delta/rebase counts differ
/// from an uninterrupted run's even though the measurement bytes match.
pub const DEFAULT_DENY: &[&str] = &[
    "campaign.parallel.",
    "checkpoint.pruned",
    "checkpoint.delta.",
    "checkpoint.rebase",
    "checkpoint.chain.",
    "watch.",
];

/// When samples are taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Background thread samples every `interval` (production; outside
    /// the byte-identity guarantee).
    WallClock {
        /// Time between samples.
        interval: Duration,
    },
    /// Samples only at explicit [`Sampler::tick_at`] calls (chunk
    /// boundaries of the durable driver); output is deterministic.
    LogicalTick,
}

/// Sampler configuration.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Ring-buffer capacity in samples (oldest evicted beyond this).
    pub capacity: usize,
    /// Wall-clock or logical-tick sampling.
    pub mode: SampleMode,
    /// Key prefixes removed from every sample.
    pub deny: Vec<String>,
}

impl Default for ObsConfig {
    /// Wall-clock sampling at 250 ms, 4096-sample ring, nothing denied.
    fn default() -> ObsConfig {
        ObsConfig {
            capacity: 4096,
            mode: SampleMode::WallClock {
                interval: Duration::from_millis(250),
            },
            deny: Vec::new(),
        }
    }
}

impl ObsConfig {
    /// The deterministic logical-tick configuration: samples at durable
    /// chunk boundaries, [`DEFAULT_DENY`] prefixes removed.
    pub fn deterministic() -> ObsConfig {
        ObsConfig {
            capacity: 4096,
            mode: SampleMode::LogicalTick,
            deny: DEFAULT_DENY.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Wall-clock sampling at `interval`, defaults otherwise.
    pub fn wall(interval: Duration) -> ObsConfig {
        ObsConfig {
            mode: SampleMode::WallClock { interval },
            ..ObsConfig::default()
        }
    }
}

struct Inner {
    /// Baseline snapshot: the next sample is the registry delta since
    /// this.
    base: Snapshot,
    series: TimeSeries,
    /// Cursor position of the last emitted logical sample (or the last
    /// rebase).
    last_tick: u64,
    /// Wall-clock sample count (logical mode derives seq from the tick).
    wall_seq: u64,
    started: Instant,
}

/// Samples a [`Registry`] into a [`TimeSeries`] (see the
/// [module docs](self) for the two modes).
pub struct Sampler {
    registry: &'static Registry,
    mode: SampleMode,
    deny: Vec<String>,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Sampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Sampler")
            .field("mode", &self.mode)
            .field("deny", &self.deny)
            .field("samples", &inner.series.len())
            .field("last_tick", &inner.last_tick)
            .finish()
    }
}

impl Sampler {
    /// Attach a sampler to `registry`, taking the baseline snapshot
    /// now: traffic before this call is not attributed to any window.
    pub fn attach(registry: &'static Registry, config: ObsConfig) -> Arc<Sampler> {
        Arc::new(Sampler {
            registry,
            mode: config.mode,
            deny: config.deny,
            inner: Mutex::new(Inner {
                base: registry.snapshot(),
                series: TimeSeries::new(config.capacity),
                last_tick: 0,
                wall_seq: 0,
                started: Instant::now(),
            }),
        })
    }

    /// The sampling mode this sampler was configured with.
    pub fn mode(&self) -> &SampleMode {
        &self.mode
    }

    /// Re-take the baseline at cursor position `tick` without emitting
    /// a sample. Call after recovery (see [module docs](self)): traffic
    /// since the previous baseline — including recovery's re-counting of
    /// imported work — is discarded, and the next [`tick_at`]
    /// (/wall sample) window starts here.
    ///
    /// [`tick_at`]: Self::tick_at
    pub fn rebase(&self, tick: u64) {
        let snap = self.registry.snapshot();
        let mut inner = self.inner.lock();
        inner.base = snap;
        inner.last_tick = tick;
    }

    /// Emit one deterministic sample covering `(last_tick, tick]`.
    ///
    /// No-op unless the mode is [`SampleMode::LogicalTick`], and no-op
    /// when `tick` has not advanced past the last emitted/rebased
    /// position (so a checkpoint that made no progress emits nothing).
    pub fn tick_at(&self, tick: u64) {
        if self.mode != SampleMode::LogicalTick {
            return;
        }
        let snap = self.registry.snapshot();
        let mut inner = self.inner.lock();
        if tick <= inner.last_tick {
            return;
        }
        let delta = snap.delta_since(&inner.base);
        let sample = ObsSample {
            seq: tick,
            tick,
            window: (inner.last_tick, tick),
            elapsed_us: None,
            counters: self.filter_counters(&delta),
            events: self.filter_events(&delta),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        inner.base = snap;
        inner.last_tick = tick;
        inner.series.push(sample);
    }

    /// Take one wall-clock sample now. No-op in logical-tick mode
    /// (chunk boundaries own the sampling there).
    pub fn sample_now(&self) {
        if self.mode == SampleMode::LogicalTick {
            return;
        }
        let snap = self.registry.snapshot();
        let mut inner = self.inner.lock();
        let delta = snap.delta_since(&inner.base);
        inner.wall_seq += 1;
        let seq = inner.wall_seq;
        let sample = ObsSample {
            seq,
            tick: seq,
            window: (seq - 1, seq),
            elapsed_us: Some(inner.started.elapsed().as_micros() as u64),
            counters: self.filter_counters(&delta),
            events: BTreeMap::new(),
            gauges: delta
                .gauges
                .iter()
                .filter(|(k, _)| !self.denied(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: delta
                .histograms
                .iter()
                .filter(|(k, _)| !self.denied(k))
                .map(|(k, h)| (k.clone(), *h))
                .collect(),
        };
        inner.base = snap;
        inner.series.push(sample);
    }

    /// Spawn the background sampling thread (wall-clock mode only; in
    /// logical-tick mode the returned handle is inert). The thread
    /// samples every `interval` until [`SamplerHandle::stop`] — which
    /// takes one final sample so trailing traffic is never lost — or
    /// the handle is dropped.
    pub fn start(self: &Arc<Self>) -> SamplerHandle {
        let SampleMode::WallClock { interval } = self.mode else {
            return SamplerHandle {
                stop: Arc::new((StdMutex::new(false), Condvar::new())),
                thread: None,
            };
        };
        let stop = Arc::new((StdMutex::new(false), Condvar::new()));
        let sampler = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("consent-obs-sampler".to_string())
            .spawn(move || {
                let (lock, cvar) = &*flag;
                let mut stopped = lock.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, _) = cvar
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        break;
                    }
                    sampler.sample_now();
                }
                // Final sample: traffic between the last periodic
                // sample and the stop signal is still recorded.
                drop(stopped);
                sampler.sample_now();
            })
            .expect("spawn obs sampler thread");
        SamplerHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// A copy of the sampled series so far.
    pub fn series(&self) -> TimeSeries {
        self.inner.lock().series.clone()
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().series.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().series.dropped()
    }

    /// Export the retained samples as `OBS_*.jsonl` (see
    /// [`TimeSeries::export_jsonl`]).
    pub fn export_jsonl(&self) -> String {
        self.inner.lock().series.export_jsonl()
    }

    /// Prometheus text exposition of the registry's *current* state
    /// (cumulative, not per-window — what a scrape endpoint would
    /// serve).
    pub fn prometheus(&self) -> String {
        crate::prometheus::exposition(&self.registry.snapshot())
    }

    fn denied(&self, key: &str) -> bool {
        self.deny.iter().any(|p| key.starts_with(p.as_str()))
    }

    fn filter_counters(&self, delta: &Snapshot) -> BTreeMap<String, u64> {
        delta
            .counters
            .iter()
            .filter(|(k, _)| !self.denied(k))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn filter_events(&self, delta: &Snapshot) -> BTreeMap<String, u64> {
        delta
            .histograms
            .iter()
            .filter(|(k, h)| h.count > 0 && !self.denied(k))
            .map(|(k, h)| (k.clone(), h.count))
            .collect()
    }
}

/// Stops the background sampling thread when asked (or on drop).
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<(StdMutex<bool>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SamplerHandle {
    /// Signal the thread, wait for it to exit, then take one final
    /// sample so the window between the last periodic sample and the
    /// stop is recorded.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cvar.notify_all();
        let _ = thread.join();
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn logical_ticks_window_counter_deltas() {
        let reg = leaked_registry();
        reg.counter("campaign.progress").add(3); // pre-attach traffic
        let sampler = Sampler::attach(reg, ObsConfig::deterministic());

        reg.counter("campaign.progress").add(5);
        reg.counter("campaign.parallel.denied").add(9);
        reg.histogram("campaign.pair").record(40);
        reg.gauge("campaign.cursor").set(5);
        sampler.tick_at(5);

        reg.counter("campaign.progress").add(4);
        sampler.tick_at(9);
        sampler.tick_at(9); // duplicate tick: no sample

        let series = sampler.series();
        assert_eq!(series.len(), 2);
        let samples: Vec<_> = series.samples().cloned().collect();
        assert_eq!(samples[0].window, (0, 5));
        assert_eq!(samples[0].seq, 5);
        assert_eq!(samples[0].counters.get("campaign.progress"), Some(&5));
        assert_eq!(samples[0].events.get("campaign.pair"), Some(&1));
        assert!(samples[0].gauges.is_empty(), "gauges are nondeterministic");
        assert!(samples[0].histograms.is_empty());
        assert!(
            !samples[0].counters.contains_key("campaign.parallel.denied"),
            "deny prefix must drop the parallel family"
        );
        assert_eq!(samples[0].elapsed_us, None);
        assert_eq!(samples[1].window, (5, 9));
        assert_eq!(samples[1].counters.get("campaign.progress"), Some(&4));
        assert!(
            !samples[1].counters.contains_key("campaign.pairs_other"),
            "untouched counters are not re-reported"
        );
    }

    #[test]
    fn rebase_swallows_recovery_traffic() {
        let reg = leaked_registry();
        let sampler = Sampler::attach(reg, ObsConfig::deterministic());
        reg.counter("capture_db.insert").add(100); // simulated recovery import
        sampler.rebase(100);
        reg.counter("capture_db.insert").add(7);
        sampler.tick_at(107);
        let series = sampler.series();
        assert_eq!(series.len(), 1);
        let s = series.latest().unwrap();
        assert_eq!(s.window, (100, 107));
        assert_eq!(s.counters.get("capture_db.insert"), Some(&7));
    }

    #[test]
    fn wall_mode_keeps_gauges_and_histograms() {
        let reg = leaked_registry();
        let sampler = Sampler::attach(reg, ObsConfig::default());
        reg.counter("c").add(2);
        reg.gauge("g").set(11);
        reg.histogram("h").record(30);
        sampler.sample_now();
        let series = sampler.series();
        let s = series.latest().unwrap();
        assert_eq!(s.seq, 1);
        assert!(s.elapsed_us.is_some());
        assert_eq!(s.gauges.get("g"), Some(&11));
        assert_eq!(s.histograms.get("h").unwrap().count, 1);
        // tick_at is inert outside logical mode.
        sampler.tick_at(50);
        assert_eq!(sampler.len(), 1);
    }

    #[test]
    fn background_thread_samples_and_stops() {
        let reg = leaked_registry();
        let sampler = Sampler::attach(reg, ObsConfig::wall(Duration::from_millis(5)));
        let handle = sampler.start();
        reg.counter("bg").add(1);
        std::thread::sleep(Duration::from_millis(40));
        handle.stop();
        let after_stop = sampler.len();
        assert!(after_stop >= 1, "background thread never sampled");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sampler.len(), after_stop, "thread survived stop()");
    }

    #[test]
    fn logical_mode_start_is_inert() {
        let reg = leaked_registry();
        let sampler = Sampler::attach(reg, ObsConfig::deterministic());
        let handle = sampler.start();
        std::thread::sleep(Duration::from_millis(10));
        handle.stop();
        assert_eq!(sampler.len(), 0);
    }
}
