//! The sampled time series: a bounded ring buffer of [`ObsSample`]s
//! with an append-only JSONL export.
//!
//! One sample is one window of registry traffic: counter deltas, and —
//! depending on the [sampling mode](crate::SampleMode) — either bare
//! histogram event counts (logical-tick mode, deterministic) or full
//! per-window histogram summaries plus gauge values (wall-clock mode).
//! The JSONL export writes one `{"kind":"obs", ...}` object per sample
//! with deterministically ordered keys, so two series with the same
//! samples serialize to the same bytes.

use consent_telemetry::HistSummary;
use consent_util::Json;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Version stamped into every exported sample line.
pub const OBS_SCHEMA_VERSION: i64 = 1;

/// One sampled window of metric traffic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSample {
    /// Sample sequence number (1-based, monotonic per sampler).
    pub seq: u64,
    /// Logical position of the window end. In logical-tick mode this is
    /// the campaign cursor (`pairs_done`) at the tick; in wall-clock
    /// mode it equals [`seq`](Self::seq).
    pub tick: u64,
    /// Logical window `[from, to)` this sample covers (tick mode) or
    /// `[seq-1, seq)` (wall mode).
    pub window: (u64, u64),
    /// Microseconds since the sampler started. `None` in logical-tick
    /// mode — wall time is outside the determinism boundary.
    pub elapsed_us: Option<u64>,
    /// Counter deltas over the window (zero deltas dropped).
    pub counters: BTreeMap<String, u64>,
    /// Histogram sample-count deltas over the window (zero dropped).
    /// This is the only histogram signal in logical-tick mode: *how
    /// many* events happened is deterministic, how long they took is
    /// not.
    pub events: BTreeMap<String, u64>,
    /// Gauge values at the sample point (wall-clock mode only).
    pub gauges: BTreeMap<String, i64>,
    /// Per-window histogram summaries (wall-clock mode only): count and
    /// sum are deltas, quantiles are cumulative at the sample point.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl ObsSample {
    /// Serialize as one line of the `OBS_*.jsonl` format (no trailing
    /// newline). Keys and map entries are ordered, so equal samples
    /// yield equal bytes.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("kind".to_string(), Json::str("obs")),
            ("schema".to_string(), Json::int(OBS_SCHEMA_VERSION)),
            ("seq".to_string(), Json::int(self.seq as i64)),
            ("tick".to_string(), Json::int(self.tick as i64)),
            (
                "window".to_string(),
                Json::array([
                    Json::int(self.window.0 as i64),
                    Json::int(self.window.1 as i64),
                ]),
            ),
        ];
        if let Some(us) = self.elapsed_us {
            fields.push(("elapsed_us".to_string(), Json::int(us as i64)));
        }
        if !self.counters.is_empty() {
            fields.push((
                "counters".to_string(),
                Json::object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::int(*v as i64))),
                ),
            ));
        }
        if !self.events.is_empty() {
            fields.push((
                "events".to_string(),
                Json::object(
                    self.events
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::int(*v as i64))),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            fields.push((
                "gauges".to_string(),
                Json::object(self.gauges.iter().map(|(k, v)| (k.clone(), Json::int(*v)))),
            ));
        }
        if !self.histograms.is_empty() {
            fields.push((
                "histograms".to_string(),
                Json::object(self.histograms.iter().map(|(k, h)| {
                    (
                        k.clone(),
                        Json::object([
                            ("count".to_string(), Json::int(h.count as i64)),
                            ("sum".to_string(), Json::int(h.sum as i64)),
                            ("max".to_string(), Json::int(h.max as i64)),
                            ("p50".to_string(), Json::int(h.p50 as i64)),
                            ("p95".to_string(), Json::int(h.p95 as i64)),
                            ("p99".to_string(), Json::int(h.p99 as i64)),
                        ]),
                    )
                })),
            ));
        }
        Json::object(fields)
    }

    /// The number of `(domain, vantage)` pairs this window covered:
    /// the `campaign.progress` counter delta, falling back to the
    /// `campaign.pair` span count.
    pub fn pairs(&self) -> u64 {
        self.counters
            .get("campaign.progress")
            .copied()
            .or_else(|| self.events.get("campaign.pair").copied())
            .or_else(|| self.histograms.get("campaign.pair").map(|h| h.count))
            .unwrap_or(0)
    }
}

/// A bounded, append-only series of [`ObsSample`]s.
///
/// When the ring is full the oldest sample is evicted (and counted in
/// [`dropped`](Self::dropped)) — a campaign that outlives its buffer
/// degrades to a sliding window instead of unbounded memory.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    samples: VecDeque<ObsSample>,
    capacity: usize,
    dropped: u64,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` samples (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> TimeSeries {
        TimeSeries {
            samples: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Append a sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, sample: ObsSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &ObsSample> {
        self.samples.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Is the series empty?
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&ObsSample> {
        self.samples.back()
    }

    /// Export the retained samples as `OBS_*.jsonl`: one compact JSON
    /// object per line, trailing newline, byte-deterministic for equal
    /// samples. An empty series exports the empty string, so resuming
    /// processes can append their export to an existing file and the
    /// concatenation reads as one well-formed series.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json().to_compact());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, tick: u64) -> ObsSample {
        let mut counters = BTreeMap::new();
        counters.insert("campaign.progress".to_string(), 5);
        ObsSample {
            seq,
            tick,
            window: (tick.saturating_sub(5), tick),
            counters,
            ..ObsSample::default()
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ts = TimeSeries::new(3);
        for i in 1..=7u64 {
            ts.push(sample(i, i * 5));
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.dropped(), 4);
        let seqs: Vec<u64> = ts.samples().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        assert_eq!(ts.latest().unwrap().tick, 35);
    }

    #[test]
    fn export_is_one_valid_json_object_per_line() {
        let mut ts = TimeSeries::new(8);
        ts.push(sample(1, 5));
        let mut with_extras = sample(2, 10);
        with_extras.elapsed_us = Some(1234);
        with_extras.gauges.insert("g".to_string(), -3);
        with_extras.events.insert("campaign.pair".to_string(), 5);
        with_extras.histograms.insert(
            "campaign.pair".to_string(),
            HistSummary {
                count: 5,
                sum: 100,
                mean: 20.0,
                min: 10,
                max: 40,
                p50: 20,
                p95: 40,
                p99: 40,
            },
        );
        ts.push(with_extras);
        let jsonl = ts.export_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let parsed = Json::parse(line).expect("valid JSON line");
            assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("obs"));
            assert_eq!(parsed.get("schema").and_then(Json::as_u32), Some(1));
            assert!(parsed.get("window").and_then(Json::as_array).is_some());
        }
        // Identical samples serialize to identical bytes.
        let mut ts2 = TimeSeries::new(8);
        ts2.push(sample(1, 5));
        assert_eq!(
            ts.export_jsonl().lines().next(),
            ts2.export_jsonl().lines().next()
        );
    }

    #[test]
    fn pairs_prefers_progress_counter() {
        let s = sample(1, 5);
        assert_eq!(s.pairs(), 5);
        let mut by_event = ObsSample::default();
        by_event.events.insert("campaign.pair".to_string(), 7);
        assert_eq!(by_event.pairs(), 7);
        assert_eq!(ObsSample::default().pairs(), 0);
    }
}
