//! # consent-obs
//!
//! The campaign flight recorder: live observability for long-running
//! measurement campaigns. Where `consent-telemetry` answers "what
//! happened?" at the end of a run, this crate answers "what is
//! happening?" while it runs — the paper's 547-day × multi-vantage
//! campaigns (and the roadmap's million-domain observatory) are
//! hour-scale jobs whose health must be visible before the final
//! report.
//!
//! Three pieces:
//!
//! - [`Sampler`] turns [`Registry::delta`](consent_telemetry::Registry::delta)
//!   windows into a ring-buffered [`TimeSeries`] of [`ObsSample`]s —
//!   either on a wall-clock background thread (production) or at
//!   deterministic logical ticks driven by the durable campaign loop
//!   (`DurableOpts::sampler`), whose `OBS_*.jsonl` export is
//!   byte-identical across thread counts and kill-halfway resumes.
//! - [`prometheus::exposition`] renders any snapshot in Prometheus
//!   text-exposition format for scraping.
//! - [`FlightReport`] digests the series + a cumulative snapshot into a
//!   post-run report: phase breakdown, throughput curve, fault heatmap,
//!   and slowest-window table.
//!
//! See the [`sampler`] module docs for the determinism boundary, and
//! `examples/flight_recorder.rs` for the end-to-end wiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod prometheus;
pub mod sampler;
pub mod series;

pub use flight::{
    ArchiveHealth, DegradeRow, FaultRow, FlightAlert, FlightReport, PhaseRow, SlowWindow,
    StorageHealth, ThroughputPoint,
};
pub use sampler::{ObsConfig, SampleMode, Sampler, SamplerHandle, DEFAULT_DENY};
pub use series::{ObsSample, TimeSeries, OBS_SCHEMA_VERSION};
