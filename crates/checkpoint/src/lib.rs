//! # consent-checkpoint
//!
//! Crash-safe durable checkpoints for long-running capture campaigns.
//! The paper's pipeline ran for two years and 161 M crawls (§3); at that
//! horizon the process *will* die mid-campaign, so campaign state must
//! survive torn writes and bit rot on disk.
//!
//! The crate is a generic container layer — it knows nothing about
//! campaign state, only named text [`Section`]s:
//!
//! - [`mod@format`]: the v3 on-disk container — a text header with a
//!   per-section manifest (name, byte length, CRC-32) protected by its
//!   own `header_crc`, then the concatenated section payloads.
//!   [`format::scan_bytes`] classifies every section of a damaged file
//!   (intact / truncated / corrupt) instead of failing wholesale.
//! - [`store`]: [`CheckpointStore`] writes generations atomically
//!   (temp file + fsync + rename + directory fsync), keeps a rotating
//!   window of the last K generations, and on [`CheckpointStore::open_latest`]
//!   falls back past corrupt generations — quarantining each (moved to
//!   `quarantine/`, never deleted) with per-section verdicts and the
//!   longest valid prefix of whole sections preserved for salvage.
//! - [`salvage`]: the structured [`SalvageReport`] describing exactly
//!   what recovery did, renderable as text and JSON (the CI artifact of
//!   the crash-consistency sweep).
//! - [`vfs`]: the [`Vfs`] filesystem seam every durable operation goes
//!   through — [`RealVfs`] in production, `consent-faultsim`'s
//!   `FaultyVfs` under storage-fault injection. Storage failures
//!   (including directory fsync) surface as errors for the campaign
//!   supervisor instead of being swallowed.
//!
//! The crawler's durable driver layers campaign semantics on top: it
//! maps `CampaignState` to sections, rebuilds what it can from
//! quarantined-but-intact sections, and re-crawls whatever was lost so
//! final exports still reconcile byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod salvage;
pub mod store;
pub mod vfs;

pub use format::{
    scan_bytes, serialize, validate_name, Checkpoint, NameError, Scan, Section, SectionStatus,
    SectionVerdict, CONTAINER_HEADER, END_HEADER,
};
pub use salvage::{QuarantinedGeneration, SalvageReport};
pub use store::{CheckpointStore, DEFAULT_KEEP};
pub use vfs::{RealVfs, Vfs};
