//! Checkpoint container format v3.
//!
//! A checkpoint file is a self-describing container: a small text header
//! carrying a per-section manifest (name, byte length, CRC-32), its own
//! header CRC, and then the concatenated section payloads. The layout:
//!
//! ```text
//! #consent-checkpoint v3
//! generation=7
//! sections=4
//! section=meta 41 0d9aeb21
//! section=capture-db 1834 9c2f11aa
//! section=dead-letters 25 5f8e0140
//! section=provenance 922 77aa1b02
//! header_crc=4e0c19d7
//! #end-header
//! <payload: section bodies, concatenated in manifest order>
//! ```
//!
//! `header_crc` covers every header byte before its own line, so a bit
//! flip anywhere in the manifest (including a length digit) is detected
//! before any section is trusted. Each section body is independently
//! checked against its manifest CRC, which is what lets [`scan_bytes`]
//! salvage the longest valid prefix of whole sections from a torn file.

use consent_util::crc32::crc32;

/// Magic first line of a v3 checkpoint container.
pub const CONTAINER_HEADER: &str = "#consent-checkpoint v3";

/// Marker line separating the manifest from the payload.
pub const END_HEADER: &str = "#end-header";

/// One named payload carried by a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Manifest name (ascii `[a-z0-9._-]`, validated at save time).
    pub name: String,
    /// Section payload (UTF-8 text; the container checksums its bytes).
    pub body: String,
}

impl Section {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, body: impl Into<String>) -> Section {
        Section {
            name: name.into(),
            body: body.into(),
        }
    }
}

/// A fully validated checkpoint: every manifest entry present and
/// CRC-clean.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Generation number from the header (monotonic per store).
    pub generation: u64,
    /// Sections in manifest order.
    pub sections: Vec<Section>,
}

impl Checkpoint {
    /// Look up a section body by manifest name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// Integrity verdict for one manifest entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionStatus {
    /// Present, CRC-clean, valid UTF-8.
    Intact,
    /// The file ends before this section's declared byte range does.
    Truncated,
    /// The bytes are present but fail the CRC (or are not UTF-8).
    Corrupt,
}

impl SectionStatus {
    /// Stable lowercase name for reports and JSON export.
    pub fn name(self) -> &'static str {
        match self {
            SectionStatus::Intact => "intact",
            SectionStatus::Truncated => "truncated",
            SectionStatus::Corrupt => "corrupt",
        }
    }
}

/// Per-section integrity result from a scan.
#[derive(Debug, Clone)]
pub struct SectionVerdict {
    /// Manifest name.
    pub name: String,
    /// Declared byte length from the manifest.
    pub declared_len: u64,
    /// Integrity status of the stored bytes.
    pub status: SectionStatus,
    /// Human-readable detail for non-intact sections.
    pub detail: String,
}

/// Result of scanning one checkpoint file, torn or not.
///
/// A scan never fails on corruption: it reports what it found. Only
/// filesystem-level errors surface as `io::Error` from the store.
#[derive(Debug, Clone)]
pub struct Scan {
    /// Generation number (from the filename; cross-checked against the
    /// header when the header is readable).
    pub generation: u64,
    /// Set when the container header itself is unusable (missing magic,
    /// bad `header_crc`, truncated before `#end-header`, ...). When set,
    /// no section can be trusted and `verdicts` is empty.
    pub header_error: Option<String>,
    /// One verdict per manifest entry, in manifest order.
    pub verdicts: Vec<SectionVerdict>,
    /// Aligned with `verdicts`; `Some` iff the section is intact.
    pub sections: Vec<Option<Section>>,
}

impl Scan {
    /// True when the header and every section validated.
    pub fn intact(&self) -> bool {
        self.header_error.is_none()
            && !self.verdicts.is_empty()
            && self
                .verdicts
                .iter()
                .all(|v| v.status == SectionStatus::Intact)
    }

    /// Number of leading sections that are intact — the longest valid
    /// prefix of whole sections that can be salvaged from a torn file.
    pub fn valid_prefix(&self) -> usize {
        self.verdicts
            .iter()
            .take_while(|v| v.status == SectionStatus::Intact)
            .count()
    }

    /// Every individually intact section (not just the prefix); torn
    /// tails keep their leading sections, bit flips keep everything
    /// around the damaged entry.
    pub fn salvageable(&self) -> Vec<Section> {
        self.sections.iter().flatten().cloned().collect()
    }

    /// Intact section by name.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().flatten().find(|s| s.name == name)
    }

    /// Convert a fully intact scan into a [`Checkpoint`].
    pub fn into_checkpoint(self) -> Option<Checkpoint> {
        if !self.intact() {
            return None;
        }
        Some(Checkpoint {
            generation: self.generation,
            sections: self.sections.into_iter().flatten().collect(),
        })
    }

    /// One-line summary of what is wrong (empty for intact scans).
    pub fn describe(&self) -> String {
        if let Some(e) = &self.header_error {
            return format!("header: {e}");
        }
        let bad: Vec<String> = self
            .verdicts
            .iter()
            .filter(|v| v.status != SectionStatus::Intact)
            .map(|v| format!("{} {}", v.name, v.status.name()))
            .collect();
        bad.join(", ")
    }
}

/// Error for section names the manifest cannot carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameError(pub String);

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid section name {:?}: must be non-empty ascii [a-z0-9._-]",
            self.0
        )
    }
}

impl std::error::Error for NameError {}

/// Validate a manifest name: non-empty ascii `[a-z0-9._-]`.
pub fn validate_name(name: &str) -> Result<(), NameError> {
    let ok = !name.is_empty()
        && name.bytes().all(|b| {
            b.is_ascii_lowercase() || b.is_ascii_digit() || matches!(b, b'-' | b'_' | b'.')
        });
    if ok {
        Ok(())
    } else {
        Err(NameError(name.to_string()))
    }
}

/// Serialize sections into the v3 container byte layout.
///
/// Section names must already be validated (the store does this).
pub fn serialize(generation: u64, sections: &[Section]) -> Vec<u8> {
    let mut header = String::new();
    header.push_str(CONTAINER_HEADER);
    header.push('\n');
    header.push_str(&format!("generation={generation}\n"));
    header.push_str(&format!("sections={}\n", sections.len()));
    for s in sections {
        header.push_str(&format!(
            "section={} {} {:08x}\n",
            s.name,
            s.body.len(),
            crc32(s.body.as_bytes())
        ));
    }
    let hcrc = crc32(header.as_bytes());
    header.push_str(&format!("header_crc={hcrc:08x}\n"));
    header.push_str(END_HEADER);
    header.push('\n');

    let mut out = header.into_bytes();
    for s in sections {
        out.extend_from_slice(s.body.as_bytes());
    }
    out
}

fn header_scan_error(generation: u64, msg: impl Into<String>) -> Scan {
    Scan {
        generation,
        header_error: Some(msg.into()),
        verdicts: Vec::new(),
        sections: Vec::new(),
    }
}

/// Scan raw checkpoint bytes, tolerating truncation and bit flips.
///
/// `generation` is the caller's expectation (from the filename); a
/// readable header that disagrees is reported as a header error.
pub fn scan_bytes(generation: u64, bytes: &[u8]) -> Scan {
    let marker = format!("{END_HEADER}\n");
    let marker_bytes = marker.as_bytes();
    let Some(pos) = bytes
        .windows(marker_bytes.len())
        .position(|w| w == marker_bytes)
    else {
        return header_scan_error(generation, "missing #end-header marker (torn header?)");
    };
    let header_bytes = &bytes[..pos];
    let payload = &bytes[pos + marker_bytes.len()..];
    let Ok(header) = std::str::from_utf8(header_bytes) else {
        return header_scan_error(generation, "header is not valid UTF-8");
    };

    let lines: Vec<&str> = header.lines().collect();
    if lines.len() < 4 {
        return header_scan_error(generation, "header too short");
    }
    if lines[0] != CONTAINER_HEADER {
        return header_scan_error(generation, format!("bad magic line {:?}", lines[0]));
    }

    // header_crc covers every header byte before its own line.
    let crc_line = lines[lines.len() - 1];
    let Some(declared_hcrc) = crc_line
        .strip_prefix("header_crc=")
        .and_then(|h| u32::from_str_radix(h, 16).ok())
    else {
        return header_scan_error(generation, format!("bad header_crc line {crc_line:?}"));
    };
    let covered_len = header.len() - crc_line.len() - 1; // trailing '\n' of crc line is outside `header`
    let actual_hcrc = crc32(&header.as_bytes()[..covered_len]);
    if actual_hcrc != declared_hcrc {
        return header_scan_error(
            generation,
            format!(
                "header_crc mismatch: declared {declared_hcrc:08x}, computed {actual_hcrc:08x}"
            ),
        );
    }

    // From here on the manifest is trustworthy.
    let Some(file_gen) = lines[1]
        .strip_prefix("generation=")
        .and_then(|g| g.parse::<u64>().ok())
    else {
        return header_scan_error(generation, format!("bad generation line {:?}", lines[1]));
    };
    if file_gen != generation {
        return header_scan_error(
            generation,
            format!("generation mismatch: filename says {generation}, header says {file_gen}"),
        );
    }
    let Some(n_sections) = lines[2]
        .strip_prefix("sections=")
        .and_then(|n| n.parse::<usize>().ok())
    else {
        return header_scan_error(generation, format!("bad sections line {:?}", lines[2]));
    };
    let manifest_lines = &lines[3..lines.len() - 1];
    if manifest_lines.len() != n_sections {
        return header_scan_error(
            generation,
            format!(
                "manifest declares {n_sections} sections but lists {}",
                manifest_lines.len()
            ),
        );
    }

    let mut manifest: Vec<(String, u64, u32)> = Vec::with_capacity(n_sections);
    for line in manifest_lines {
        let Some(rest) = line.strip_prefix("section=") else {
            return header_scan_error(generation, format!("bad manifest line {line:?}"));
        };
        let parts: Vec<&str> = rest.split(' ').collect();
        let parsed = match parts.as_slice() {
            [name, len, crc] => len
                .parse::<u64>()
                .ok()
                .zip(u32::from_str_radix(crc, 16).ok())
                .map(|(l, c)| (name.to_string(), l, c)),
            _ => None,
        };
        let Some(entry) = parsed else {
            return header_scan_error(generation, format!("bad manifest line {line:?}"));
        };
        manifest.push(entry);
    }

    let declared_total: u64 = manifest.iter().map(|(_, l, _)| *l).sum();
    if (payload.len() as u64) > declared_total {
        return header_scan_error(
            generation,
            format!(
                "payload has {} trailing bytes beyond the {declared_total} declared",
                payload.len() as u64 - declared_total
            ),
        );
    }

    let mut verdicts = Vec::with_capacity(manifest.len());
    let mut sections = Vec::with_capacity(manifest.len());
    let mut offset: u64 = 0;
    for (name, len, declared_crc) in manifest {
        let end = offset + len;
        if end > payload.len() as u64 {
            let have = (payload.len() as u64).saturating_sub(offset);
            verdicts.push(SectionVerdict {
                name,
                declared_len: len,
                status: SectionStatus::Truncated,
                detail: format!("declared {len} bytes, only {have} present"),
            });
            sections.push(None);
            offset = end;
            continue;
        }
        let body = &payload[offset as usize..end as usize];
        offset = end;
        let actual_crc = crc32(body);
        if actual_crc != declared_crc {
            verdicts.push(SectionVerdict {
                name,
                declared_len: len,
                status: SectionStatus::Corrupt,
                detail: format!(
                    "crc mismatch: declared {declared_crc:08x}, computed {actual_crc:08x}"
                ),
            });
            sections.push(None);
            continue;
        }
        match std::str::from_utf8(body) {
            Ok(text) => {
                verdicts.push(SectionVerdict {
                    name: name.clone(),
                    declared_len: len,
                    status: SectionStatus::Intact,
                    detail: String::new(),
                });
                sections.push(Some(Section::new(name, text)));
            }
            Err(_) => {
                verdicts.push(SectionVerdict {
                    name,
                    declared_len: len,
                    status: SectionStatus::Corrupt,
                    detail: "body is not valid UTF-8".to_string(),
                });
                sections.push(None);
            }
        }
    }

    Scan {
        generation,
        header_error: None,
        verdicts,
        sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_sections() -> Vec<Section> {
        vec![
            Section::new("meta", "#consent-campaign-state v3\npairs_done=2\n"),
            Section::new("capture-db", "row-a\nrow-b\n"),
            Section::new("provenance", "#consent-provenance v1\n"),
        ]
    }

    #[test]
    fn round_trip_is_intact() {
        let bytes = serialize(5, &demo_sections());
        let scan = scan_bytes(5, &bytes);
        assert!(scan.intact(), "{:?}", scan);
        let ckpt = scan.into_checkpoint().unwrap();
        assert_eq!(ckpt.generation, 5);
        assert_eq!(ckpt.sections, demo_sections());
    }

    #[test]
    fn empty_sections_round_trip() {
        let sections = vec![Section::new("meta", ""), Section::new("capture-db", "")];
        let scan = scan_bytes(1, &serialize(1, &sections));
        assert!(scan.intact());
        assert_eq!(scan.into_checkpoint().unwrap().sections, sections);
    }

    #[test]
    fn payload_bit_flip_is_localized() {
        let sections = demo_sections();
        let mut bytes = serialize(3, &sections);
        // Flip a bit in the second section's payload.
        let marker = format!("{END_HEADER}\n");
        let payload_start = bytes
            .windows(marker.len())
            .position(|w| w == marker.as_bytes())
            .unwrap()
            + marker.len();
        let second_off = payload_start + sections[0].body.len() + 1;
        bytes[second_off] ^= 0x40;
        let scan = scan_bytes(3, &bytes);
        assert!(!scan.intact());
        assert_eq!(scan.valid_prefix(), 1);
        assert_eq!(scan.verdicts[1].status, SectionStatus::Corrupt);
        // The undamaged third section is still individually salvageable.
        assert_eq!(scan.verdicts[2].status, SectionStatus::Intact);
        assert_eq!(scan.salvageable().len(), 2);
    }

    #[test]
    fn truncation_keeps_valid_prefix() {
        let sections = demo_sections();
        let full = serialize(9, &sections);
        // Cut inside the last section.
        let cut = full.len() - 5;
        let scan = scan_bytes(9, &full[..cut]);
        assert!(!scan.intact());
        assert_eq!(scan.valid_prefix(), 2);
        assert_eq!(scan.verdicts[2].status, SectionStatus::Truncated);
    }

    #[test]
    fn header_bit_flip_rejects_whole_file() {
        let mut bytes = serialize(2, &demo_sections());
        // Flip a bit inside a manifest length digit (still in the header).
        let line_off = bytes
            .windows(b"section=capture-db".len())
            .position(|w| w == b"section=capture-db")
            .unwrap();
        bytes[line_off + b"section=capture-db ".len()] ^= 0x01;
        let scan = scan_bytes(2, &bytes);
        assert!(scan.header_error.is_some(), "{scan:?}");
    }

    #[test]
    fn truncation_inside_header_rejects_whole_file() {
        let bytes = serialize(2, &demo_sections());
        let scan = scan_bytes(2, &bytes[..10]);
        assert!(scan.header_error.is_some());
        assert_eq!(scan.valid_prefix(), 0);
    }

    #[test]
    fn generation_mismatch_is_header_error() {
        let bytes = serialize(7, &demo_sections());
        let scan = scan_bytes(8, &bytes);
        assert!(scan
            .header_error
            .as_deref()
            .unwrap()
            .contains("generation mismatch"));
    }

    #[test]
    fn trailing_garbage_is_header_error() {
        let mut bytes = serialize(4, &demo_sections());
        bytes.extend_from_slice(b"junk");
        let scan = scan_bytes(4, &bytes);
        assert!(scan.header_error.as_deref().unwrap().contains("trailing"));
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("capture-db").is_ok());
        assert!(validate_name("trace_v1.jsonl").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("has space").is_err());
        assert!(validate_name("Upper").is_err());
        assert!(validate_name("new\nline").is_err());
    }
}
