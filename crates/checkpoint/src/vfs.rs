//! The store's filesystem seam.
//!
//! Every durable byte the [`CheckpointStore`](crate::CheckpointStore)
//! moves goes through a [`Vfs`] — create, write, sync, rename,
//! directory sync, read, remove. Production uses [`RealVfs`], a thin
//! passthrough to `std::fs` that adds nothing (same syscalls, same
//! bytes on disk as calling `std::fs` directly). Tests swap in
//! `consent-faultsim`'s `FaultyVfs`, which injects deterministic
//! storage faults (`ENOSPC`, `EIO`, silent short writes) keyed on a
//! global operation index — so a sweep can fail *every* individual
//! filesystem operation of a campaign and assert the recovery story
//! holds.
//!
//! The trait is deliberately flat and path-addressed rather than
//! handle-based: each method is one observable durability step, which
//! is exactly the granularity fault injection wants. `write` persists
//! the whole buffer (create-if-needed + truncate + write-all), so a
//! short write can only be *injected*, never accidental.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// A minimal filesystem abstraction covering every durable operation
/// the checkpoint store performs. See the [module docs](self).
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create (or truncate) an empty file at `path`.
    fn create(&self, path: &Path) -> io::Result<()>;

    /// Write the whole buffer to `path`, truncating any prior content.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flush `path`'s data and metadata to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Flush the directory entry table at `dir` (`fsync` on the
    /// directory) so a completed rename survives power loss.
    fn dir_sync(&self, dir: &Path) -> io::Result<()>;

    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// The production [`Vfs`]: a faithful passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<()> {
        OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map(|_| ())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.write_all(bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn dir_sync(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "consent-vfs-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_vfs_round_trips_bytes() {
        let dir = tmp_dir();
        let vfs = RealVfs;
        let tmp = dir.join("a.tmp");
        let fin = dir.join("a.bin");
        vfs.create(&tmp).unwrap();
        vfs.write(&tmp, b"hello vfs").unwrap();
        vfs.sync(&tmp).unwrap();
        vfs.rename(&tmp, &fin).unwrap();
        vfs.dir_sync(&dir).unwrap();
        assert_eq!(vfs.read(&fin).unwrap(), b"hello vfs");
        assert!(!tmp.exists());
        vfs.remove_file(&fin).unwrap();
        assert!(!fin.exists());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn write_truncates_prior_content() {
        let dir = tmp_dir();
        let vfs = RealVfs;
        let path = dir.join("f");
        vfs.write(&path, b"a longer first body").unwrap();
        vfs.write(&path, b"short").unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"short");
        std::fs::remove_dir_all(dir).unwrap();
    }
}
