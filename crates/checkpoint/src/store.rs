//! Durable on-disk checkpoint store.
//!
//! One directory per campaign. Live checkpoints are `gen-NNNNNNNN.ckpt`;
//! files that fail validation are moved (never deleted) into a
//! `quarantine/` subdirectory so a post-mortem can inspect exactly what
//! was on disk. Writes are atomic: serialize to a temp file in the same
//! directory, `fsync` it, `rename` over the final name, then best-effort
//! `fsync` the directory — a crash at any instant leaves either the old
//! generation set or the old set plus one complete new file.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::format::{scan_bytes, serialize, validate_name, Checkpoint, Scan, Section};
use crate::salvage::{QuarantinedGeneration, SalvageReport};

/// Default number of generations retained by [`CheckpointStore::open`].
pub const DEFAULT_KEEP: usize = 4;

const QUARANTINE_DIR: &str = "quarantine";

/// A rotating store of checkpoint generations in one directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Open (creating if needed) a store keeping [`DEFAULT_KEEP`]
    /// generations.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CheckpointStore> {
        CheckpointStore::with_keep(dir, DEFAULT_KEEP)
    }

    /// Open (creating if needed) a store with an explicit retention
    /// window. `keep` is clamped to at least 1.
    pub fn with_keep(dir: impl AsRef<Path>, keep: usize) -> io::Result<CheckpointStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore {
            dir,
            keep: keep.max(1),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a generation's checkpoint file.
    pub fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:08}.ckpt"))
    }

    /// Path of the quarantine subdirectory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Live generation numbers, ascending.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = generations_in(&self.dir)?;
        gens.sort_unstable();
        Ok(gens)
    }

    fn next_generation(&self) -> io::Result<u64> {
        // Quarantined generations still count: a salvaged campaign must
        // never reuse a generation number that exists in quarantine.
        let mut max = 0u64;
        for g in generations_in(&self.dir)? {
            max = max.max(g);
        }
        let qdir = self.quarantine_dir();
        if qdir.is_dir() {
            for g in generations_in(&qdir)? {
                max = max.max(g);
            }
        }
        Ok(max + 1)
    }

    /// Atomically write a new generation and prune old ones. Returns
    /// the generation number written.
    pub fn save(&self, sections: &[Section]) -> io::Result<u64> {
        let _span = consent_telemetry::span("checkpoint.write");
        let generation = self.prepare(sections)?;
        let bytes = serialize(generation, sections);
        self.write_atomic(generation, &bytes)?;
        consent_telemetry::count("checkpoint.writes", 1);
        consent_telemetry::observe("checkpoint.write.bytes", bytes.len() as u64);
        self.prune()?;
        Ok(generation)
    }

    /// Fault-injection write: serialize like [`CheckpointStore::save`]
    /// but persist only the first `keep_bytes` bytes, simulating a torn
    /// write on a filesystem without atomic-rename guarantees. Skips
    /// pruning (a crashing process never got that far).
    pub fn save_torn(&self, sections: &[Section], keep_bytes: u64) -> io::Result<u64> {
        let generation = self.prepare(sections)?;
        let bytes = serialize(generation, sections);
        let cut = (keep_bytes as usize).min(bytes.len());
        self.write_atomic(generation, &bytes[..cut])?;
        Ok(generation)
    }

    fn prepare(&self, sections: &[Section]) -> io::Result<u64> {
        for s in sections {
            validate_name(&s.name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        }
        for (i, s) in sections.iter().enumerate() {
            if sections[..i].iter().any(|p| p.name == s.name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate section name {:?}", s.name),
                ));
            }
        }
        self.next_generation()
    }

    fn write_atomic(&self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        let final_path = self.path_for(generation);
        let tmp_path = self.dir.join(format!(".tmp-gen-{generation:08}.ckpt"));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        // Persist the rename itself. Directory fsync is not portable
        // everywhere, so failures here are tolerated.
        let _ = File::open(&self.dir).and_then(|d| d.sync_all());
        Ok(())
    }

    fn prune(&self) -> io::Result<()> {
        let mut gens = self.generations()?;
        if gens.len() > self.keep {
            let dropped = gens.len() - self.keep;
            for &g in &gens[..dropped] {
                fs::remove_file(self.path_for(g))?;
            }
            gens.drain(..dropped);
            // How many old generations a run sheds depends on what a
            // crash left on disk, so this counter is denied from
            // deterministic samples (see consent-obs DEFAULT_DENY).
            consent_telemetry::count("checkpoint.pruned", dropped as u64);
        }
        consent_telemetry::gauge_set("checkpoint.generations", gens.len() as i64);
        Ok(())
    }

    /// Scan one generation's file for integrity without moving it.
    pub fn scan_generation(&self, generation: u64) -> io::Result<Scan> {
        let bytes = fs::read(self.path_for(generation))?;
        Ok(scan_bytes(generation, &bytes))
    }

    /// Move a generation's file into `quarantine/`, returning the new
    /// path.
    pub fn quarantine(&self, generation: u64) -> io::Result<PathBuf> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let from = self.path_for(generation);
        let to = qdir.join(format!("gen-{generation:08}.ckpt"));
        fs::rename(&from, &to)?;
        let _ = File::open(&self.dir).and_then(|d| d.sync_all());
        consent_telemetry::count("checkpoint.quarantined", 1);
        Ok(to)
    }

    /// Load the newest generation that validates end-to-end.
    ///
    /// Generations are scanned newest-first. Every newer generation that
    /// fails validation is quarantined and recorded in the returned
    /// [`SalvageReport`] together with its per-section verdicts, the
    /// longest valid prefix, and every individually intact section body
    /// (so callers can attempt domain-level salvage). Returns
    /// `(None, report)` when no generation is usable.
    pub fn open_latest(&self) -> io::Result<(Option<Checkpoint>, SalvageReport)> {
        let _span = consent_telemetry::span("checkpoint.open");
        let mut report = SalvageReport::default();
        let mut gens = self.generations()?;
        gens.reverse();
        for g in gens {
            let scan = self.scan_generation(g)?;
            if scan.intact() {
                report.used_generation = Some(g);
                consent_telemetry::count("checkpoint.opens", 1);
                return Ok((scan.into_checkpoint(), report));
            }
            let qpath = self.quarantine(g)?;
            let salvaged = scan.salvageable();
            consent_telemetry::observe("checkpoint.salvage.sections", salvaged.len() as u64);
            consent_telemetry::count(
                "checkpoint.salvage.bytes",
                salvaged.iter().map(|s| s.body.len() as u64).sum(),
            );
            report.actions.push(format!(
                "quarantined generation {g} ({}): {}",
                qpath.display(),
                scan.describe()
            ));
            report.quarantined.push(QuarantinedGeneration {
                generation: g,
                reason: scan.describe(),
                valid_prefix: scan.valid_prefix(),
                salvaged,
                verdicts: scan.verdicts,
                quarantine_path: Some(qpath.display().to_string()),
            });
        }
        Ok((None, report))
    }
}

fn generations_in(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("gen-")
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push(g);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_store(keep: usize) -> (PathBuf, CheckpointStore) {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "consent-ckpt-store-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CheckpointStore::with_keep(&dir, keep).unwrap();
        (dir, store)
    }

    fn sections(tag: &str) -> Vec<Section> {
        vec![
            Section::new("meta", format!("meta-{tag}\n")),
            Section::new("capture-db", format!("db-{tag}\nrow\n")),
        ]
    }

    #[test]
    fn save_then_open_latest_round_trips() {
        let (dir, store) = tmp_store(3);
        let g1 = store.save(&sections("a")).unwrap();
        let g2 = store.save(&sections("b")).unwrap();
        assert_eq!((g1, g2), (1, 2));
        let (ckpt, report) = store.open_latest().unwrap();
        let ckpt = ckpt.unwrap();
        assert_eq!(ckpt.generation, 2);
        assert_eq!(ckpt.section("meta").unwrap().body, "meta-b\n");
        assert!(report.is_clean());
        assert_eq!(report.used_generation, Some(2));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_keeps_last_k() {
        let (dir, store) = tmp_store(2);
        for i in 0..5 {
            store.save(&sections(&i.to_string())).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let (dir, store) = tmp_store(3);
        store.save(&sections("good")).unwrap();
        store.save_torn(&sections("torn"), 30).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert_eq!(ckpt.unwrap().section("meta").unwrap().body, "meta-good\n");
        assert_eq!(report.used_generation, Some(1));
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].generation, 2);
        // The torn file was preserved for post-mortem, not deleted.
        assert!(store.quarantine_dir().join("gen-00000002.ckpt").is_file());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_of_zero_bytes_is_still_detected() {
        let (dir, store) = tmp_store(3);
        store.save(&sections("good")).unwrap();
        store.save_torn(&sections("torn"), 0).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_some());
        assert_eq!(report.quarantined.len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn quarantined_generation_numbers_are_never_reused() {
        let (dir, store) = tmp_store(3);
        store.save_torn(&sections("torn"), 10).unwrap();
        let (ckpt, _) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        let g = store.save(&sections("fresh")).unwrap();
        assert_eq!(g, 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_flip_quarantines_and_reports_prefix() {
        let (dir, store) = tmp_store(3);
        let g = store.save(&sections("x")).unwrap();
        let path = store.path_for(g);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        let q = &report.quarantined[0];
        assert_eq!(q.valid_prefix, 1, "{report:?}");
        assert_eq!(q.salvaged.len(), 1);
        assert_eq!(q.salvaged[0].name, "meta");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_opens_clean() {
        let (dir, store) = tmp_store(3);
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        assert!(report.is_clean());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn duplicate_section_names_rejected() {
        let (dir, store) = tmp_store(3);
        let dup = vec![Section::new("meta", "a"), Section::new("meta", "b")];
        assert!(store.save(&dup).is_err());
        fs::remove_dir_all(dir).unwrap();
    }
}
