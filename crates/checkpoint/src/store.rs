//! Durable on-disk checkpoint store.
//!
//! One directory per campaign. Live checkpoints are `gen-NNNNNNNN.ckpt`;
//! files that fail validation are moved (never deleted) into a
//! `quarantine/` subdirectory so a post-mortem can inspect exactly what
//! was on disk. Writes are atomic: serialize to a temp file in the same
//! directory, `fsync` it, `rename` over the final name, then `fsync`
//! the directory — a crash at any instant leaves either the old
//! generation set or the old set plus one complete new file.
//!
//! Every durable operation goes through the store's [`Vfs`] (the real
//! filesystem by default), so storage faults can be injected
//! deterministically — see [`vfs`](crate::vfs) and
//! `consent-faultsim`'s `FaultyVfs`. Storage failures are **surfaced,
//! never swallowed**: a failed directory fsync is counted
//! (`checkpoint.dir_fsync_fail`) and returned as an error for the
//! campaign supervisor to classify, retry, or degrade around.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::format::{scan_bytes, serialize, validate_name, Checkpoint, Scan, Section};
use crate::salvage::{QuarantinedGeneration, SalvageReport};
use crate::vfs::{RealVfs, Vfs};

/// Default number of generations retained by [`CheckpointStore::open`].
pub const DEFAULT_KEEP: usize = 4;

const QUARANTINE_DIR: &str = "quarantine";

/// A rotating store of checkpoint generations in one directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    vfs: Arc<dyn Vfs>,
}

impl CheckpointStore {
    /// Open (creating if needed) a store keeping [`DEFAULT_KEEP`]
    /// generations on the real filesystem.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<CheckpointStore> {
        CheckpointStore::with_keep(dir, DEFAULT_KEEP)
    }

    /// Open (creating if needed) a store with an explicit retention
    /// window on the real filesystem. `keep` is clamped to at least 1.
    pub fn with_keep(dir: impl AsRef<Path>, keep: usize) -> io::Result<CheckpointStore> {
        CheckpointStore::with_vfs(dir, keep, Arc::new(RealVfs))
    }

    /// Open (creating if needed) a store whose file operations go
    /// through an explicit [`Vfs`] — the hook for deterministic storage
    /// fault injection. `keep` is clamped to at least 1.
    ///
    /// Opening also sweeps orphaned `.tmp-gen-*.ckpt` files: a write
    /// that failed between create and rename leaves its temp file
    /// behind (deliberately — the dying process must not mutate the
    /// store further), and the next open reclaims the space. Swept
    /// files are counted via `checkpoint.tmp_swept`.
    pub fn with_vfs(
        dir: impl AsRef<Path>,
        keep: usize,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<CheckpointStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let store = CheckpointStore {
            dir,
            keep: keep.max(1),
            vfs,
        };
        store.sweep_tmp_files()?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a generation's checkpoint file.
    pub fn path_for(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:08}.ckpt"))
    }

    /// Path of the quarantine subdirectory.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Live generation numbers, ascending.
    pub fn generations(&self) -> io::Result<Vec<u64>> {
        let mut gens = generations_in(&self.dir)?;
        gens.sort_unstable();
        Ok(gens)
    }

    /// Quarantined generation numbers, ascending.
    pub fn quarantined_generations(&self) -> io::Result<Vec<u64>> {
        let qdir = self.quarantine_dir();
        if !qdir.is_dir() {
            return Ok(Vec::new());
        }
        let mut gens = generations_in(&qdir)?;
        gens.sort_unstable();
        Ok(gens)
    }

    /// Remove orphaned temp files left by writes that died between
    /// create and rename. Returns how many were swept.
    fn sweep_tmp_files(&self) -> io::Result<u64> {
        let mut swept = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with(".tmp-gen-") && name.ends_with(".ckpt") {
                self.vfs.remove_file(&entry.path())?;
                swept += 1;
            }
        }
        if swept > 0 {
            consent_telemetry::count("checkpoint.tmp_swept", swept);
        }
        Ok(swept)
    }

    fn next_generation(&self) -> io::Result<u64> {
        // Quarantined generations still count: a salvaged campaign must
        // never reuse a generation number that exists in quarantine.
        let mut max = 0u64;
        for g in generations_in(&self.dir)? {
            max = max.max(g);
        }
        let qdir = self.quarantine_dir();
        if qdir.is_dir() {
            for g in generations_in(&qdir)? {
                max = max.max(g);
            }
        }
        Ok(max + 1)
    }

    /// Atomically write a new generation and prune old ones. Returns
    /// the generation number written.
    pub fn save(&self, sections: &[Section]) -> io::Result<u64> {
        self.save_with_min_retained(sections, u64::MAX)
    }

    /// Like [`save`](Self::save), but generations numbered `keep_from`
    /// or higher are exempt from pruning even when they fall outside
    /// the retention window. Delta checkpointing uses this with
    /// `keep_from` = the chain's base generation: a delta is useless
    /// without its base, so the base (and every chain member after it)
    /// must outlive the rotation that would otherwise drop it. Passing
    /// `u64::MAX` imposes no floor and behaves exactly like `save`.
    pub fn save_with_min_retained(&self, sections: &[Section], keep_from: u64) -> io::Result<u64> {
        let _span = consent_telemetry::span("checkpoint.write");
        let generation = self.prepare(sections)?;
        let bytes = serialize(generation, sections);
        self.write_atomic(generation, &bytes)?;
        consent_telemetry::count("checkpoint.writes", 1);
        consent_telemetry::observe("checkpoint.write.bytes", bytes.len() as u64);
        self.prune(keep_from)?;
        Ok(generation)
    }

    /// Fault-injection write: serialize like [`CheckpointStore::save`]
    /// but persist only the first `keep_bytes` bytes, simulating a torn
    /// write on a filesystem without atomic-rename guarantees. Skips
    /// pruning (a crashing process never got that far).
    pub fn save_torn(&self, sections: &[Section], keep_bytes: u64) -> io::Result<u64> {
        let generation = self.prepare(sections)?;
        let bytes = serialize(generation, sections);
        let cut = (keep_bytes as usize).min(bytes.len());
        self.write_atomic(generation, &bytes[..cut])?;
        Ok(generation)
    }

    fn prepare(&self, sections: &[Section]) -> io::Result<u64> {
        for s in sections {
            validate_name(&s.name)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        }
        for (i, s) in sections.iter().enumerate() {
            if sections[..i].iter().any(|p| p.name == s.name) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("duplicate section name {:?}", s.name),
                ));
            }
        }
        self.next_generation()
    }

    fn write_atomic(&self, generation: u64, bytes: &[u8]) -> io::Result<()> {
        let final_path = self.path_for(generation);
        let tmp_path = self.dir.join(format!(".tmp-gen-{generation:08}.ckpt"));
        self.vfs.create(&tmp_path)?;
        self.vfs.write(&tmp_path, bytes)?;
        self.vfs.sync(&tmp_path)?;
        self.vfs.rename(&tmp_path, &final_path)?;
        self.dir_fsync()
    }

    /// Persist the directory entry table (the rename itself). Failures
    /// are counted and **returned**: a rename that is not known durable
    /// is a storage fault the supervisor must see, not a shrug.
    fn dir_fsync(&self) -> io::Result<()> {
        self.vfs.dir_sync(&self.dir).inspect_err(|_| {
            consent_telemetry::count("checkpoint.dir_fsync_fail", 1);
        })
    }

    /// Drop generations that are both outside the last-`keep` window
    /// *and* below `keep_from`. The second condition is what keeps a
    /// delta chain's base alive: rotation alone would delete it while
    /// newer deltas still depend on it.
    fn prune(&self, keep_from: u64) -> io::Result<()> {
        let gens = self.generations()?;
        let mut kept = gens.len();
        if gens.len() > self.keep {
            let window_start = gens[gens.len() - self.keep];
            let mut dropped = 0u64;
            for &g in &gens {
                if g >= window_start || g >= keep_from {
                    continue;
                }
                self.vfs.remove_file(&self.path_for(g))?;
                dropped += 1;
            }
            kept = gens.len() - dropped as usize;
            if dropped > 0 {
                // How many old generations a run sheds depends on what a
                // crash left on disk, so this counter is denied from
                // deterministic samples (see consent-obs DEFAULT_DENY).
                consent_telemetry::count("checkpoint.pruned", dropped);
            }
        }
        consent_telemetry::gauge_set("checkpoint.generations", kept as i64);
        Ok(())
    }

    /// Bound `quarantine/` growth to the same window the live set uses:
    /// at most `keep` quarantined generations survive, pruning oldest
    /// first and never touching the newest. The count is exposed as the
    /// `checkpoint.quarantine.generations` gauge.
    fn prune_quarantine(&self) -> io::Result<()> {
        let mut gens = self.quarantined_generations()?;
        if gens.len() > self.keep {
            let dropped = gens.len() - self.keep;
            let qdir = self.quarantine_dir();
            for &g in &gens[..dropped] {
                self.vfs
                    .remove_file(&qdir.join(format!("gen-{g:08}.ckpt")))?;
            }
            gens.drain(..dropped);
            consent_telemetry::count("checkpoint.quarantine.pruned", dropped as u64);
        }
        consent_telemetry::gauge_set("checkpoint.quarantine.generations", gens.len() as i64);
        Ok(())
    }

    /// Scan one generation's file for integrity without moving it.
    pub fn scan_generation(&self, generation: u64) -> io::Result<Scan> {
        let bytes = self.vfs.read(&self.path_for(generation))?;
        Ok(scan_bytes(generation, &bytes))
    }

    /// Move a generation's file into `quarantine/`, returning the new
    /// path. The quarantine window is bounded (see
    /// `prune_quarantine` — oldest pruned
    /// beyond the store's `keep`, newest always retained).
    pub fn quarantine(&self, generation: u64) -> io::Result<PathBuf> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let from = self.path_for(generation);
        let to = qdir.join(format!("gen-{generation:08}.ckpt"));
        self.vfs.rename(&from, &to)?;
        self.dir_fsync()?;
        consent_telemetry::count("checkpoint.quarantined", 1);
        self.prune_quarantine()?;
        Ok(to)
    }

    /// Load the newest generation that validates end-to-end.
    ///
    /// Generations are scanned newest-first. Every newer generation that
    /// fails validation is quarantined and recorded in the returned
    /// [`SalvageReport`] together with its per-section verdicts, the
    /// longest valid prefix, and every individually intact section body
    /// (so callers can attempt domain-level salvage). Returns
    /// `(None, report)` when no generation is usable.
    pub fn open_latest(&self) -> io::Result<(Option<Checkpoint>, SalvageReport)> {
        let _span = consent_telemetry::span("checkpoint.open");
        let mut report = SalvageReport::default();
        let mut gens = self.generations()?;
        gens.reverse();
        for g in gens {
            let scan = self.scan_generation(g)?;
            if scan.intact() {
                report.used_generation = Some(g);
                consent_telemetry::count("checkpoint.opens", 1);
                return Ok((scan.into_checkpoint(), report));
            }
            let qpath = self.quarantine(g)?;
            let salvaged = scan.salvageable();
            consent_telemetry::observe("checkpoint.salvage.sections", salvaged.len() as u64);
            consent_telemetry::count(
                "checkpoint.salvage.bytes",
                salvaged.iter().map(|s| s.body.len() as u64).sum(),
            );
            report.actions.push(format!(
                "quarantined generation {g} ({}): {}",
                qpath.display(),
                scan.describe()
            ));
            report.quarantined.push(QuarantinedGeneration {
                generation: g,
                reason: scan.describe(),
                valid_prefix: scan.valid_prefix(),
                salvaged,
                verdicts: scan.verdicts,
                quarantine_path: Some(qpath.display().to_string()),
            });
        }
        Ok((None, report))
    }
}

fn generations_in(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix("gen-")
            .and_then(|r| r.strip_suffix(".ckpt"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push(g);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_store(keep: usize) -> (PathBuf, CheckpointStore) {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "consent-ckpt-store-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CheckpointStore::with_keep(&dir, keep).unwrap();
        (dir, store)
    }

    fn sections(tag: &str) -> Vec<Section> {
        vec![
            Section::new("meta", format!("meta-{tag}\n")),
            Section::new("capture-db", format!("db-{tag}\nrow\n")),
        ]
    }

    #[test]
    fn save_then_open_latest_round_trips() {
        let (dir, store) = tmp_store(3);
        let g1 = store.save(&sections("a")).unwrap();
        let g2 = store.save(&sections("b")).unwrap();
        assert_eq!((g1, g2), (1, 2));
        let (ckpt, report) = store.open_latest().unwrap();
        let ckpt = ckpt.unwrap();
        assert_eq!(ckpt.generation, 2);
        assert_eq!(ckpt.section("meta").unwrap().body, "meta-b\n");
        assert!(report.is_clean());
        assert_eq!(report.used_generation, Some(2));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn rotation_keeps_last_k() {
        let (dir, store) = tmp_store(2);
        for i in 0..5 {
            store.save(&sections(&i.to_string())).unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![4, 5]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn min_retained_floor_pins_chain_bases_through_rotation() {
        let (dir, store) = tmp_store(2);
        // Generation 1 plays the chain base: every later save names it
        // as the retention floor, so rotation may drop nothing — every
        // generation from the base onward is a live chain member.
        store.save(&sections("base")).unwrap();
        for i in 0..4 {
            store
                .save_with_min_retained(&sections(&i.to_string()), 1)
                .unwrap();
        }
        assert_eq!(store.generations().unwrap(), vec![1, 2, 3, 4, 5]);
        // Once the floor moves past it, the old base is prunable again.
        store
            .save_with_min_retained(&sections("rebased"), 6)
            .unwrap();
        assert_eq!(store.generations().unwrap(), vec![5, 6]);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_falls_back_to_previous_generation() {
        let (dir, store) = tmp_store(3);
        store.save(&sections("good")).unwrap();
        store.save_torn(&sections("torn"), 30).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert_eq!(ckpt.unwrap().section("meta").unwrap().body, "meta-good\n");
        assert_eq!(report.used_generation, Some(1));
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.quarantined[0].generation, 2);
        // The torn file was preserved for post-mortem, not deleted.
        assert!(store.quarantine_dir().join("gen-00000002.ckpt").is_file());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_write_of_zero_bytes_is_still_detected() {
        let (dir, store) = tmp_store(3);
        store.save(&sections("good")).unwrap();
        store.save_torn(&sections("torn"), 0).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_some());
        assert_eq!(report.quarantined.len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn quarantined_generation_numbers_are_never_reused() {
        let (dir, store) = tmp_store(3);
        store.save_torn(&sections("torn"), 10).unwrap();
        let (ckpt, _) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        let g = store.save(&sections("fresh")).unwrap();
        assert_eq!(g, 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_flip_quarantines_and_reports_prefix() {
        let (dir, store) = tmp_store(3);
        let g = store.save(&sections("x")).unwrap();
        let path = store.path_for(g);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        let q = &report.quarantined[0];
        assert_eq!(q.valid_prefix, 1, "{report:?}");
        assert_eq!(q.salvaged.len(), 1);
        assert_eq!(q.salvaged[0].name, "meta");
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn empty_store_opens_clean() {
        let (dir, store) = tmp_store(3);
        let (ckpt, report) = store.open_latest().unwrap();
        assert!(ckpt.is_none());
        assert!(report.is_clean());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn duplicate_section_names_rejected() {
        let (dir, store) = tmp_store(3);
        let dup = vec![Section::new("meta", "a"), Section::new("meta", "b")];
        assert!(store.save(&dup).is_err());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn orphaned_tmp_files_are_swept_on_open() {
        let (dir, store) = tmp_store(3);
        store.save(&sections("a")).unwrap();
        // A write that died between create and rename leaves its temp
        // file behind; it must not survive the next open.
        let orphan = dir.join(".tmp-gen-00000042.ckpt");
        fs::write(&orphan, b"half a checkpoint").unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(!orphan.exists(), "orphaned tmp file survived open");
        // The live generation was untouched by the sweep.
        let (ckpt, report) = store.open_latest().unwrap();
        assert_eq!(ckpt.unwrap().section("meta").unwrap().body, "meta-a\n");
        assert!(report.is_clean());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn quarantine_growth_is_bounded_to_keep() {
        let (dir, store) = tmp_store(2);
        // Quarantine five generations one at a time; only the newest
        // `keep` (2) survive, and the newest is always among them.
        for i in 0..5u64 {
            store.save_torn(&sections(&i.to_string()), 5).unwrap();
            let (ckpt, _) = store.open_latest().unwrap();
            assert!(ckpt.is_none());
        }
        let qgens = store.quarantined_generations().unwrap();
        assert_eq!(qgens, vec![4, 5], "oldest pruned, newest kept");
        fs::remove_dir_all(dir).unwrap();
    }

    /// A `Vfs` that fails directory syncs but passes everything else
    /// through, to prove the failure is surfaced rather than swallowed.
    #[derive(Debug)]
    struct FailingDirSync(RealVfs);

    impl Vfs for FailingDirSync {
        fn create(&self, path: &Path) -> io::Result<()> {
            self.0.create(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.0.write(path, bytes)
        }
        fn sync(&self, path: &Path) -> io::Result<()> {
            self.0.sync(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.0.rename(from, to)
        }
        fn dir_sync(&self, _dir: &Path) -> io::Result<()> {
            Err(io::Error::other("EIO: injected dir fsync failure"))
        }
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.0.read(path)
        }
        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.0.remove_file(path)
        }
    }

    #[test]
    fn dir_fsync_failures_surface_and_count() {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "consent-ckpt-dirsync-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let store = CheckpointStore::with_vfs(&dir, 3, Arc::new(FailingDirSync(RealVfs))).unwrap();
        consent_telemetry::reset();
        consent_telemetry::enable();
        let err = store.save(&sections("a")).unwrap_err();
        consent_telemetry::disable();
        assert!(err.to_string().contains("dir fsync"), "{err}");
        let counted = consent_telemetry::global()
            .snapshot()
            .counter("checkpoint.dir_fsync_fail");
        consent_telemetry::reset();
        assert_eq!(counted, 1, "dir fsync failure was not counted");
        fs::remove_dir_all(dir).unwrap();
    }

    /// Byte-identity of the Vfs seam itself: a store on an explicit
    /// [`RealVfs`] produces exactly the same file bytes as the default
    /// constructor (which is the pre-Vfs write path).
    #[test]
    fn explicit_real_vfs_is_byte_identical_to_default() {
        let (dir_a, store_a) = tmp_store(3);
        static N: AtomicU64 = AtomicU64::new(0);
        let dir_b = std::env::temp_dir().join(format!(
            "consent-ckpt-vfs-ident-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let store_b = CheckpointStore::with_vfs(&dir_b, 3, Arc::new(RealVfs)).unwrap();
        let g_a = store_a.save(&sections("same")).unwrap();
        let g_b = store_b.save(&sections("same")).unwrap();
        assert_eq!(g_a, g_b);
        assert_eq!(
            fs::read(store_a.path_for(g_a)).unwrap(),
            fs::read(store_b.path_for(g_b)).unwrap(),
        );
        fs::remove_dir_all(dir_a).unwrap();
        fs::remove_dir_all(dir_b).unwrap();
    }
}
