//! Structured record of what recovery did.
//!
//! Every [`CheckpointStore::open_latest`](crate::CheckpointStore::open_latest)
//! call produces a [`SalvageReport`]; domain-level recovery (the
//! crawler's durable driver) appends its own actions. The report is the
//! artifact CI uploads after a crash-consistency sweep, so it has both a
//! human rendering and a JSON export.

use consent_util::Json;

use crate::format::{Section, SectionVerdict};

/// One corrupt generation that was moved to quarantine.
#[derive(Debug, Clone)]
pub struct QuarantinedGeneration {
    /// Generation number of the quarantined file.
    pub generation: u64,
    /// One-line reason (header error or per-section summary).
    pub reason: String,
    /// Per-section verdicts (empty when the header was unreadable).
    pub verdicts: Vec<SectionVerdict>,
    /// Longest valid prefix of whole sections.
    pub valid_prefix: usize,
    /// Every individually intact section body, preserved in memory for
    /// domain-level salvage attempts.
    pub salvaged: Vec<Section>,
    /// Where the file went.
    pub quarantine_path: Option<String>,
}

/// Structured outcome of a recovery pass.
#[derive(Debug, Clone, Default)]
pub struct SalvageReport {
    /// Generation whose data was ultimately used, if any.
    pub used_generation: Option<u64>,
    /// Corrupt generations moved to quarantine, newest first.
    pub quarantined: Vec<QuarantinedGeneration>,
    /// Human-readable log of every recovery action taken.
    pub actions: Vec<String>,
}

impl SalvageReport {
    /// True when recovery found nothing wrong (including the trivial
    /// empty-store case).
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.actions.is_empty()
    }

    /// Append a recovery action to the log.
    pub fn note(&mut self, action: impl Into<String>) {
        self.actions.push(action.into());
    }

    /// Fold another report's findings into this one (used when the
    /// store-level report is extended by domain-level recovery).
    pub fn absorb(&mut self, other: SalvageReport) {
        if other.used_generation.is_some() {
            self.used_generation = other.used_generation;
        }
        self.quarantined.extend(other.quarantined);
        self.actions.extend(other.actions);
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("salvage report\n");
        match self.used_generation {
            Some(g) => out.push_str(&format!("  used generation: {g}\n")),
            None => out.push_str("  used generation: none (fresh state)\n"),
        }
        if self.is_clean() {
            out.push_str("  clean: no corruption encountered\n");
            return out;
        }
        for q in &self.quarantined {
            out.push_str(&format!(
                "  quarantined gen {} (valid prefix {}): {}\n",
                q.generation, q.valid_prefix, q.reason
            ));
            for v in &q.verdicts {
                out.push_str(&format!(
                    "    section {} [{} bytes]: {}{}\n",
                    v.name,
                    v.declared_len,
                    v.status.name(),
                    if v.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" — {}", v.detail)
                    }
                ));
            }
        }
        for a in &self.actions {
            out.push_str(&format!("  action: {a}\n"));
        }
        out
    }

    /// JSON export (CI artifact format).
    pub fn to_json(&self) -> Json {
        let quarantined = self.quarantined.iter().map(|q| {
            Json::object([
                ("generation".to_string(), Json::int(q.generation as i64)),
                ("reason".to_string(), Json::str(q.reason.clone())),
                ("valid_prefix".to_string(), Json::int(q.valid_prefix as i64)),
                (
                    "quarantine_path".to_string(),
                    match &q.quarantine_path {
                        Some(p) => Json::str(p.clone()),
                        None => Json::str(""),
                    },
                ),
                (
                    "verdicts".to_string(),
                    Json::array(q.verdicts.iter().map(|v| {
                        Json::object([
                            ("section".to_string(), Json::str(v.name.clone())),
                            ("declared_len".to_string(), Json::int(v.declared_len as i64)),
                            ("status".to_string(), Json::str(v.status.name())),
                            ("detail".to_string(), Json::str(v.detail.clone())),
                        ])
                    })),
                ),
                (
                    "salvaged_sections".to_string(),
                    Json::array(q.salvaged.iter().map(|s| Json::str(s.name.clone()))),
                ),
            ])
        });
        Json::object([
            (
                "used_generation".to_string(),
                match self.used_generation {
                    Some(g) => Json::int(g as i64),
                    None => Json::int(-1),
                },
            ),
            ("clean".to_string(), Json::Bool(self.is_clean())),
            ("quarantined".to_string(), Json::array(quarantined)),
            (
                "actions".to_string(),
                Json::array(self.actions.iter().map(|a| Json::str(a.clone()))),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{SectionStatus, SectionVerdict};

    #[test]
    fn clean_report_renders_clean() {
        let r = SalvageReport::default();
        assert!(r.is_clean());
        assert!(r.render().contains("clean"));
        assert_eq!(r.to_json().get("clean").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn report_with_quarantine_round_trips_to_json() {
        let mut r = SalvageReport {
            used_generation: Some(3),
            ..Default::default()
        };
        r.quarantined.push(QuarantinedGeneration {
            generation: 4,
            reason: "capture-db corrupt".to_string(),
            verdicts: vec![SectionVerdict {
                name: "capture-db".to_string(),
                declared_len: 100,
                status: SectionStatus::Corrupt,
                detail: "crc mismatch".to_string(),
            }],
            valid_prefix: 1,
            salvaged: vec![Section::new("meta", "m")],
            quarantine_path: Some("/tmp/q/gen-00000004.ckpt".to_string()),
        });
        r.note("fell back to generation 3");
        assert!(!r.is_clean());
        let text = r.render();
        assert!(text.contains("quarantined gen 4"));
        assert!(text.contains("fell back"));
        let json = r.to_json();
        assert_eq!(json.get("used_generation").unwrap().as_f64(), Some(3.0));
        let q = json.get("quarantined").unwrap().at(0).unwrap();
        assert_eq!(
            q.get("verdicts")
                .unwrap()
                .at(0)
                .unwrap()
                .get("status")
                .unwrap()
                .as_str(),
            Some("corrupt")
        );
    }
}
