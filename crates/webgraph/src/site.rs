//! Site identity: domains, TLDs, regions, subsites.
//!
//! Every site in the synthetic web is identified by its true popularity
//! rank. Domain names are generated with a reversible syllable code so
//! that any component (crawler, fingerprints, analysis) can map a
//! hostname back to its rank without a 1M-entry table — the generator is
//! a bijection, not a lookup.

use consent_util::SeedTree;

/// A site's true popularity rank (1 = most popular).
pub type Rank = u32;

/// Geographic orientation of a site's audience and infrastructure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// EU + UK.
    Eu,
    /// United States.
    Us,
    /// Rest of world.
    Other,
}

/// Syllables encoding the digits 0–9 in domain names. All pairwise
/// prefix-free (consonant+vowel), so decoding is unambiguous.
const SYLLABLES: [&str; 10] = ["ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "ne"];

/// Encode a rank as a pronounceable label, e.g. `1234` → `"cedifogu"`.
pub fn rank_to_label(rank: Rank) -> String {
    let digits = rank.to_string();
    let mut out = String::with_capacity(digits.len() * 2);
    for d in digits.bytes() {
        out.push_str(SYLLABLES[(d - b'0') as usize]);
    }
    out
}

/// Decode a label back to its rank; `None` if it is not a valid code.
pub fn label_to_rank(label: &str) -> Option<Rank> {
    if label.is_empty() || label.len() % 2 != 0 {
        return None;
    }
    let mut rank: u64 = 0;
    for chunk in label.as_bytes().chunks(2) {
        let syl = std::str::from_utf8(chunk).ok()?;
        let digit = SYLLABLES.iter().position(|&s| s == syl)? as u64;
        rank = rank * 10 + digit;
        if rank > u64::from(u32::MAX) {
            return None;
        }
    }
    // Leading-zero digit strings don't round-trip; reject them.
    if rank_to_label(rank as Rank).len() != label.len() {
        return None;
    }
    if rank == 0 {
        return None;
    }
    Some(rank as Rank)
}

/// TLD pools per region.
const EU_TLDS: [&str; 10] = [
    "co.uk", "de", "fr", "nl", "es", "it", "pl", "se", "eu", "at",
];
const US_TLDS: [&str; 4] = ["com", "org", "net", "us"];
const OTHER_TLDS: [&str; 8] = ["com", "io", "co", "com.br", "co.jp", "in", "com.au", "ru"];

/// Deterministic region draw for a site, given the probability of an EU
/// region. (The caller biases `eu_share` by CMP brand, §4.1.)
pub fn region_for(site_seed: SeedTree, eu_share: f64) -> Region {
    let u = site_seed.child("region").unit_f64();
    if u < eu_share {
        Region::Eu
    } else if u < eu_share + (1.0 - eu_share) * 0.62 {
        Region::Us
    } else {
        Region::Other
    }
}

/// Deterministic TLD draw for a site of the given region.
pub fn tld_for(site_seed: SeedTree, region: Region) -> &'static str {
    let u = site_seed.child("tld").unit_f64();
    match region {
        Region::Eu => EU_TLDS[(u * EU_TLDS.len() as f64) as usize % EU_TLDS.len()],
        Region::Us => US_TLDS[(u * US_TLDS.len() as f64) as usize % US_TLDS.len()],
        Region::Other => OTHER_TLDS[(u * OTHER_TLDS.len() as f64) as usize % OTHER_TLDS.len()],
    }
}

/// True if `tld` belongs to the EU+UK pool (used for §4.1's EU-TLD-share
/// statistics).
pub fn is_eu_tld(tld: &str) -> bool {
    EU_TLDS.contains(&tld)
}

/// Share of sites hosted on a private-suffix platform (their registrable
/// domain is `label.github.io`-style).
pub const PRIVATE_SUFFIX_SHARE: f64 = 0.015;

/// Platforms used for private-suffix hosting.
const PLATFORMS: [&str; 4] = ["github.io", "blogspot.com", "wordpress.com", "netlify.app"];

/// The canonical registrable domain of the site at `rank`.
pub fn domain_for(rank: Rank, site_seed: SeedTree, region: Region) -> String {
    let label = rank_to_label(rank);
    let u = site_seed.child("hosting").unit_f64();
    if u < PRIVATE_SUFFIX_SHARE {
        let p = PLATFORMS[(site_seed.child("platform").unit_f64() * PLATFORMS.len() as f64)
            as usize
            % PLATFORMS.len()];
        format!("{label}.{p}")
    } else {
        format!("{label}.{}", tld_for(site_seed, region))
    }
}

/// Extract the rank from any hostname belonging to the synthetic web:
/// strips optional `www.` / subdomain labels and the alias suffix.
pub fn rank_of_host(host: &str) -> Option<Rank> {
    for label in host.split('.') {
        let core = label.strip_suffix("-alt").unwrap_or(label);
        if let Some(rank) = label_to_rank(core) {
            return Some(rank);
        }
    }
    None
}

/// Alias (redirecting) domain for sites that have one: a `-alt` twin on a
/// generic TLD, standing in for vanity/legacy domains and shorteners.
pub fn alias_domain_for(rank: Rank) -> String {
    format!("{}-alt.net", rank_to_label(rank))
}

/// Number of distinct subsites (paths) a site exposes, heavy-tailed in
/// popularity: big sites have many shareable articles.
pub fn subsite_count(rank: Rank) -> u32 {
    match rank {
        0..=100 => 5_000,
        101..=1_000 => 1_000,
        1_001..=10_000 => 200,
        10_001..=100_000 => 40,
        _ => 8,
    }
}

/// Path of subsite `idx` for a site. Subsite 0 is the landing page; the
/// last index is always the privacy-policy page (which on some sites
/// embeds no external scripts at all, §3.5 "Subsites").
pub fn subsite_path(rank: Rank, idx: u32) -> String {
    let n = subsite_count(rank);
    if idx == 0 {
        "/".to_owned()
    } else if idx >= n - 1 {
        "/privacy".to_owned()
    } else {
        format!("/article/{idx}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn label_roundtrip_examples() {
        assert_eq!(rank_to_label(1), "ce");
        assert_eq!(rank_to_label(1234), "cedifogu");
        assert_eq!(label_to_rank("cedifogu"), Some(1234));
        assert_eq!(label_to_rank("ce"), Some(1));
        assert_eq!(label_to_rank("ne"), Some(9));
        assert_eq!(label_to_rank("ceba"), Some(10));
    }

    #[test]
    fn label_rejects_invalid() {
        assert_eq!(label_to_rank(""), None);
        assert_eq!(label_to_rank("x"), None);
        assert_eq!(label_to_rank("bax"), None);
        assert_eq!(label_to_rank("zz"), None);
        // Leading zero ("ba" = 0 prefix) does not round-trip.
        assert_eq!(label_to_rank("bace"), None);
        assert_eq!(label_to_rank("ba"), None); // rank 0 invalid
    }

    #[test]
    fn host_rank_extraction() {
        let seed = SeedTree::new(1).child_idx(1234);
        let region = region_for(seed, 0.25);
        let domain = domain_for(1234, seed, region);
        assert_eq!(rank_of_host(&domain), Some(1234));
        assert_eq!(rank_of_host(&format!("www.{domain}")), Some(1234));
        assert_eq!(rank_of_host(&alias_domain_for(1234)), Some(1234));
        assert_eq!(rank_of_host("cdn.cookielaw.org"), None);
        assert_eq!(rank_of_host("example.com"), None);
    }

    #[test]
    fn regions_cover_expected_mix() {
        let n = 20_000;
        let mut eu = 0;
        let mut us = 0;
        for i in 0..n {
            match region_for(SeedTree::new(5).child_idx(i), 0.25) {
                Region::Eu => eu += 1,
                Region::Us => us += 1,
                Region::Other => {}
            }
        }
        let eu_frac = eu as f64 / n as f64;
        let us_frac = us as f64 / n as f64;
        assert!((eu_frac - 0.25).abs() < 0.02, "eu {eu_frac}");
        assert!(us_frac > 0.4, "us {us_frac}");
    }

    #[test]
    fn eu_regions_get_eu_tlds() {
        for i in 0..500 {
            let seed = SeedTree::new(9).child_idx(i);
            assert!(is_eu_tld(tld_for(seed, Region::Eu)));
            assert!(!is_eu_tld(tld_for(seed, Region::Us)));
        }
    }

    #[test]
    fn some_sites_on_private_suffixes() {
        let mut platform_hosted = 0;
        let n = 20_000u32;
        for rank in 1..=n {
            let seed = SeedTree::new(3).child_idx(u64::from(rank));
            let d = domain_for(rank, seed, Region::Us);
            if d.ends_with("github.io")
                || d.ends_with("blogspot.com")
                || d.ends_with("wordpress.com")
                || d.ends_with("netlify.app")
            {
                platform_hosted += 1;
            }
        }
        let frac = f64::from(platform_hosted) / f64::from(n);
        assert!((frac - PRIVATE_SUFFIX_SHARE).abs() < 0.006, "frac {frac}");
    }

    #[test]
    fn subsites_shape() {
        assert_eq!(subsite_path(5, 0), "/");
        assert_eq!(subsite_path(5, 1), "/article/1");
        let n = subsite_count(5);
        assert_eq!(subsite_path(5, n - 1), "/privacy");
        assert!(subsite_count(50) > subsite_count(5_000));
        assert!(subsite_count(5_000) > subsite_count(500_000));
    }

    proptest! {
        #[test]
        fn prop_label_roundtrip(rank in 1u32..=100_000_000) {
            prop_assert_eq!(label_to_rank(&rank_to_label(rank)), Some(rank));
        }

        #[test]
        fn prop_domain_embeds_rank(rank in 1u32..=1_000_000, salt: u64) {
            let seed = SeedTree::new(salt).child_idx(u64::from(rank));
            let region = region_for(seed, 0.3);
            let d = domain_for(rank, seed, region);
            prop_assert_eq!(rank_of_host(&d), Some(rank));
        }
    }
}
