//! The synthetic web: a lazily-generated universe of ranked sites.
//!
//! `World` is the single source of ground truth for the simulator. Every
//! site's identity, CMP trajectory, and behaviour are pure functions of
//! `(seed, rank)`, generated on first access and cached. A 1M-site world
//! therefore costs memory only for the sites actually visited.

use crate::adoption::{trajectory, AdoptionConfig, Trajectory};
use crate::cmp::Cmp;
use crate::site::{
    alias_domain_for, domain_for, rank_of_host, region_for, subsite_count, Rank, Region,
};
use crate::site_config::{behavior_for, SiteBehavior};
use consent_util::{Day, SeedTree};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Why a site is (not) reachable in toplist crawls (§3.5 "Missing Data").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reachability {
    /// Normal website.
    Ok,
    /// No HTTP/HTTPS service at all.
    Unreachable,
    /// TCP answers but no valid HTTP response.
    NoValidHttp,
    /// Responds with an HTTP error status.
    HttpError,
    /// Top-level redirect to another site (counted under the target).
    RedirectsTo(Rank),
}

/// Ground-truth profile of one site.
#[derive(Clone, Debug)]
pub struct SiteProfile {
    /// True popularity rank.
    pub rank: Rank,
    /// Canonical registrable domain.
    pub domain: String,
    /// Audience region.
    pub region: Region,
    /// CMP adoption history.
    pub trajectory: Trajectory,
    /// Behaviour of the embed; `Some` iff the site ever adopts a CMP.
    pub behavior: Option<SiteBehavior>,
    /// An alias domain 301-redirects to the canonical one.
    pub alias: Option<String>,
    /// Toplist-crawl reachability class.
    pub reachability: Reachability,
    /// True for internet infrastructure (CDNs etc.) that users never
    /// share on social media (§3.5: >90 % of never-shared toplist
    /// domains).
    pub infrastructure: bool,
    /// Number of subsite paths.
    pub subsites: u32,
}

impl SiteProfile {
    /// The CMP embedded on `day` (ground truth, before any measurement
    /// distortion).
    pub fn cmp_on(&self, day: Day) -> Option<Cmp> {
        self.trajectory.cmp_on(day)
    }

    /// True if the site can appear in the social-media feed.
    pub fn socially_visible(&self) -> bool {
        !self.infrastructure && matches!(self.reachability, Reachability::Ok)
    }
}

/// World-generation parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Number of ranked sites (the paper's Fig 5 spans the top 1M).
    pub n_sites: Rank,
    /// Root seed.
    pub seed: u64,
    /// Adoption-model parameters.
    pub adoption: AdoptionConfig,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            n_sites: 1_000_000,
            seed: 0xC0_2020,
            adoption: AdoptionConfig::default(),
        }
    }
}

/// The lazily-generated synthetic web.
pub struct World {
    config: WorldConfig,
    root: SeedTree,
    cache: RwLock<HashMap<Rank, Arc<SiteProfile>>>,
}

impl World {
    /// Create a world. No sites are generated until queried.
    pub fn new(config: WorldConfig) -> World {
        let root = SeedTree::new(config.seed).child("world");
        World {
            config,
            root,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// A world with default parameters and the given seed.
    pub fn with_seed(seed: u64) -> World {
        World::new(WorldConfig {
            seed,
            ..WorldConfig::default()
        })
    }

    /// Number of ranked sites.
    pub fn n_sites(&self) -> Rank {
        self.config.n_sites
    }

    /// The generation config.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Ground-truth profile for the site at `rank` (1-based). Panics if
    /// the rank is out of range.
    pub fn profile(&self, rank: Rank) -> Arc<SiteProfile> {
        assert!(
            rank >= 1 && rank <= self.config.n_sites,
            "rank {rank} out of range 1..={}",
            self.config.n_sites
        );
        if let Some(p) = self.cache.read().get(&rank) {
            return Arc::clone(p);
        }
        let p = Arc::new(self.generate(rank));
        self.cache
            .write()
            .entry(rank)
            .or_insert_with(|| Arc::clone(&p));
        p
    }

    /// Resolve any synthetic-web hostname to its site profile.
    pub fn site_by_host(&self, host: &str) -> Option<Arc<SiteProfile>> {
        let rank = rank_of_host(host)?;
        if rank >= 1 && rank <= self.config.n_sites {
            Some(self.profile(rank))
        } else {
            None
        }
    }

    fn generate(&self, rank: Rank) -> SiteProfile {
        let site_seed = self.root.child_idx(u64::from(rank));
        let traj = trajectory(rank, &self.config.adoption, site_seed);

        // Region: CMP customers inherit their brand's EU-TLD skew (§4.1);
        // the rest of the web uses the global mix.
        let eu_share = traj.segments.last().map_or(0.25, |s| s.cmp.eu_tld_share());
        let region = region_for(site_seed, eu_share);
        let domain = domain_for(rank, site_seed, region);

        let behavior = traj
            .segments
            .last()
            .map(|s| behavior_for(s.cmp, s.from, site_seed));

        let alias = (site_seed.child("alias").unit_f64() < 0.08).then(|| alias_domain_for(rank));

        // §3.5 "Missing Data" rates over the Tranco 10k, applied globally.
        let reachability = {
            let u = site_seed.child("reach").unit_f64();
            if u < 0.0315 {
                Reachability::Unreachable
            } else if u < 0.0315 + 0.0004 {
                Reachability::NoValidHttp
            } else if u < 0.0315 + 0.0004 + 0.007 {
                Reachability::HttpError
            } else if u < 0.0315 + 0.0004 + 0.007 + 0.0192 {
                // Redirect target: a deterministic other site.
                let target = (u64::from(rank) * 7919 + 13) % u64::from(self.config.n_sites) + 1;
                Reachability::RedirectsTo(target as Rank)
            } else {
                Reachability::Ok
            }
        };
        // CMP adopters are real consumer sites, never infrastructure.
        let infrastructure = !traj.ever_adopts() && site_seed.child("infra").unit_f64() < 0.045;

        SiteProfile {
            rank,
            domain,
            region,
            trajectory: traj,
            behavior,
            alias,
            reachability,
            infrastructure,
            subsites: subsite_count(rank),
        }
    }

    /// Ground-truth CMP counts over the top `n` sites on `day` — the
    /// reference the measurement pipeline is validated against.
    pub fn true_cmp_counts(&self, n: Rank, day: Day) -> BTreeMap<Cmp, usize> {
        let mut counts = BTreeMap::new();
        for rank in 1..=n.min(self.config.n_sites) {
            if let Some(cmp) = self.profile(rank).cmp_on(day) {
                *counts.entry(cmp).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Number of cached profiles (for memory diagnostics in benches).
    pub fn cached_sites(&self) -> usize {
        self.cache.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World::new(WorldConfig {
            n_sites: 20_000,
            seed: 42,
            adoption: AdoptionConfig::default(),
        })
    }

    #[test]
    fn profiles_deterministic_and_cached() {
        let w = small_world();
        let a = w.profile(123);
        let b = w.profile(123);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(w.cached_sites(), 1);
        // Regenerating in a fresh world gives the same profile.
        let w2 = small_world();
        let c = w2.profile(123);
        assert_eq!(a.domain, c.domain);
        assert_eq!(a.trajectory, c.trajectory);
        assert_eq!(a.reachability, c.reachability);
    }

    #[test]
    fn host_lookup_roundtrip() {
        let w = small_world();
        let p = w.profile(777);
        let found = w.site_by_host(&p.domain).unwrap();
        assert_eq!(found.rank, 777);
        let via_www = w.site_by_host(&format!("www.{}", p.domain)).unwrap();
        assert_eq!(via_www.rank, 777);
        assert!(w.site_by_host("cdn.cookielaw.org").is_none());
    }

    #[test]
    #[should_panic]
    fn out_of_range_rank_panics() {
        small_world().profile(30_000);
    }

    #[test]
    fn adopters_have_behavior_and_vice_versa() {
        let w = small_world();
        for rank in 1..=3_000 {
            let p = w.profile(rank);
            assert_eq!(p.trajectory.ever_adopts(), p.behavior.is_some());
            if p.trajectory.ever_adopts() {
                assert!(!p.infrastructure, "adopter marked infrastructure");
            }
        }
    }

    #[test]
    fn true_counts_shape() {
        let w = small_world();
        let day = Day::from_ymd(2020, 5, 15);
        let counts = w.true_cmp_counts(10_000, day);
        let total: usize = counts.values().sum();
        assert!((600..=1300).contains(&total), "top-10k total {total}");
        let onetrust = counts.get(&Cmp::OneTrust).copied().unwrap_or(0);
        let quantcast = counts.get(&Cmp::Quantcast).copied().unwrap_or(0);
        assert!(
            onetrust > quantcast,
            "OneTrust {onetrust} <= Quantcast {quantcast}"
        );
        // Early 2018: almost nothing.
        let early = w.true_cmp_counts(10_000, Day::from_ymd(2018, 2, 15));
        let early_total: usize = early.values().sum();
        assert!(early_total < 150, "early total {early_total}");
    }

    #[test]
    fn missing_data_rates_plausible() {
        let w = small_world();
        let mut unreachable = 0;
        let mut redirects = 0;
        let mut infra = 0;
        let n = 10_000;
        for rank in 1..=n {
            let p = w.profile(rank);
            match p.reachability {
                Reachability::Unreachable => unreachable += 1,
                Reachability::RedirectsTo(t) => {
                    redirects += 1;
                    assert!(t >= 1 && t <= w.n_sites());
                }
                _ => {}
            }
            if p.infrastructure {
                infra += 1;
                assert!(!p.socially_visible());
            }
        }
        // §3.5: 315 unreachable, 192 redirecting, ~450 infrastructure
        // out of 10k.
        assert!(
            (200..=450).contains(&unreachable),
            "unreachable {unreachable}"
        );
        assert!((100..=300).contains(&redirects), "redirects {redirects}");
        assert!((300..=650).contains(&infra), "infrastructure {infra}");
    }

    #[test]
    fn quantcast_customers_skew_eu() {
        let w = World::new(WorldConfig {
            n_sites: 60_000,
            seed: 9,
            adoption: AdoptionConfig::default(),
        });
        let day = Day::from_ymd(2020, 5, 15);
        let mut q_eu = 0;
        let mut q_total = 0;
        let mut o_eu = 0;
        let mut o_total = 0;
        for rank in 1..=60_000 {
            let p = w.profile(rank);
            match p.cmp_on(day) {
                Some(Cmp::Quantcast) => {
                    q_total += 1;
                    if p.region == Region::Eu {
                        q_eu += 1;
                    }
                }
                Some(Cmp::OneTrust) => {
                    o_total += 1;
                    if p.region == Region::Eu {
                        o_eu += 1;
                    }
                }
                _ => {}
            }
        }
        let q_share = q_eu as f64 / q_total.max(1) as f64;
        let o_share = o_eu as f64 / o_total.max(1) as f64;
        // §4.1: Quantcast 38.3 % EU+UK vs OneTrust 16.3 %.
        assert!(
            (q_share - 0.383).abs() < 0.07,
            "quantcast EU share {q_share}"
        );
        assert!(
            (o_share - 0.163).abs() < 0.05,
            "onetrust EU share {o_share}"
        );
    }
}
