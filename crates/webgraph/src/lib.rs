//! # consent-webgraph
//!
//! The synthetic web: a deterministic generative model of 1M+ ranked
//! websites whose CMP adoption reproduces the paper's measurements —
//! rank profile (Fig 5), time profile with GDPR/CCPA spikes (Fig 6),
//! inter-CMP switching with Cookiebot as the big loser (Fig 4),
//! publisher customization (§4.1), and the measurement-distortion
//! behaviours behind Table 1 (geo gating, anti-bot CDNs, slow loads).
//!
//! The paper crawled the live 2018–2020 web; that population no longer
//! exists, so we regenerate one with the same statistical structure and
//! run the identical measurement pipeline against it (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adoption;
pub mod cmp;
pub mod site;
pub mod site_config;
pub mod world;

pub use adoption::{AdoptionConfig, Segment, Trajectory};
pub use cmp::{Cmp, ALL_CMPS};
pub use site::{Rank, Region};
pub use site_config::{AcceptWording, DialogStyle, GeoBehavior, SiteBehavior};
pub use world::{Reachability, SiteProfile, World, WorldConfig};
