//! The six Consent Management Providers under study.
//!
//! The paper restricts its analysis to "the five major players already
//! identified by Nouwens et al. and LiveRamp, a new entrant that launched
//! in December 2019" (§3.2). Each CMP is identified in crawl data by a
//! unique indicator hostname (Table A.2).

use consent_util::{date::known, Day};
use std::fmt;

/// One of the six CMPs measured in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cmp {
    /// OneTrust — flexible, CCPA-oriented; became overall market leader.
    OneTrust,
    /// Quantcast — GDPR-oriented; early dominance, EU+UK-heavy customers.
    Quantcast,
    /// TrustArc — CCPA-tailored dialogs, slow multi-partner opt-out.
    TrustArc,
    /// Cookiebot — the "gateway CMP" that bleeds customers.
    Cookiebot,
    /// LiveRamp (Faktor) — new entrant, launched December 2019.
    LiveRamp,
    /// Crownpeak (Evidon) — small, stable share.
    Crownpeak,
}

/// All six CMPs in the paper's reporting order (Table 1 row order).
pub const ALL_CMPS: [Cmp; 6] = [
    Cmp::OneTrust,
    Cmp::Quantcast,
    Cmp::TrustArc,
    Cmp::Cookiebot,
    Cmp::LiveRamp,
    Cmp::Crownpeak,
];

impl Cmp {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Cmp::OneTrust => "OneTrust",
            Cmp::Quantcast => "Quantcast",
            Cmp::TrustArc => "TrustArc",
            Cmp::Cookiebot => "Cookiebot",
            Cmp::LiveRamp => "LiveRamp",
            Cmp::Crownpeak => "Crownpeak",
        }
    }

    /// The unique indicator hostname from Table A.2. Every page embedding
    /// this CMP performs an HTTP request to this host on load, regardless
    /// of dialog design — the paper's most robust detection signal.
    pub fn indicator_hostname(self) -> &'static str {
        match self {
            Cmp::OneTrust => "cdn.cookielaw.org",
            Cmp::Quantcast => "quantcast.mgr.consensu.org",
            Cmp::TrustArc => "consent.trustarc.com",
            Cmp::Cookiebot => "consent.cookiebot.com",
            Cmp::LiveRamp => "cmp.choice.faktor.io",
            Cmp::Crownpeak => "iabmap.evidon.com",
        }
    }

    /// First day this CMP's product was available for embedding.
    pub fn launch_date(self) -> Day {
        match self {
            // The five incumbents all predate the observation window.
            Cmp::OneTrust | Cmp::Quantcast | Cmp::TrustArc | Cmp::Cookiebot | Cmp::Crownpeak => {
                Day::from_ymd(2017, 6, 1)
            }
            Cmp::LiveRamp => known::liveramp_launch(),
        }
    }

    /// Share of this CMP's customers with an EU+UK TLD (§4.1: Quantcast
    /// 38.3 %, OneTrust 16.3 %; the rest interpolated from their market
    /// positioning — TrustArc and LiveRamp skew US, Cookiebot is Danish
    /// and skews strongly EU).
    pub fn eu_tld_share(self) -> f64 {
        match self {
            Cmp::OneTrust => 0.163,
            Cmp::Quantcast => 0.383,
            Cmp::TrustArc => 0.12,
            Cmp::Cookiebot => 0.55,
            Cmp::LiveRamp => 0.10,
            Cmp::Crownpeak => 0.20,
        }
    }

    /// Probability that a site embedding this CMP serves the embed *only*
    /// to EU visitors, making it invisible from a US vantage point.
    /// Derived from Table 1's US-cloud vs EU-cloud gaps.
    pub fn embed_only_eu_share(self) -> f64 {
        match self {
            Cmp::OneTrust => 0.07,
            Cmp::Quantcast => 0.16,
            Cmp::TrustArc => 0.09,
            Cmp::Cookiebot => 0.05,
            Cmp::LiveRamp => 0.11,
            Cmp::Crownpeak => 0.02,
        }
    }

    /// Probability that a site embedding this CMP hides it from EU IPs
    /// (CCPA-only products; §4.1 reports 4.4 % for TrustArc).
    pub fn hide_from_eu_share(self) -> f64 {
        match self {
            Cmp::TrustArc => 0.044,
            Cmp::OneTrust => 0.01,
            _ => 0.0,
        }
    }

    /// IAB CMP id used in consent strings (real registered ids).
    pub fn iab_cmp_id(self) -> u16 {
        match self {
            Cmp::Quantcast => 10,
            Cmp::OneTrust => 5,
            Cmp::TrustArc => 21,
            Cmp::Cookiebot => 14,
            Cmp::LiveRamp => 45,
            Cmp::Crownpeak => 76,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_complete_and_distinct() {
        assert_eq!(ALL_CMPS.len(), 6);
        let hosts: Vec<&str> = ALL_CMPS.iter().map(|c| c.indicator_hostname()).collect();
        let mut dedup = hosts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 6, "indicator hostnames must be unique");
        let ids: Vec<u16> = ALL_CMPS.iter().map(|c| c.iab_cmp_id()).collect();
        let mut ids_d = ids.clone();
        ids_d.sort();
        ids_d.dedup();
        assert_eq!(ids_d.len(), 6);
    }

    #[test]
    fn table_a2_hostnames() {
        assert_eq!(Cmp::OneTrust.indicator_hostname(), "cdn.cookielaw.org");
        assert_eq!(
            Cmp::Quantcast.indicator_hostname(),
            "quantcast.mgr.consensu.org"
        );
        assert_eq!(Cmp::TrustArc.indicator_hostname(), "consent.trustarc.com");
        assert_eq!(Cmp::Cookiebot.indicator_hostname(), "consent.cookiebot.com");
        assert_eq!(Cmp::LiveRamp.indicator_hostname(), "cmp.choice.faktor.io");
        assert_eq!(Cmp::Crownpeak.indicator_hostname(), "iabmap.evidon.com");
    }

    #[test]
    fn liveramp_launches_late() {
        assert_eq!(Cmp::LiveRamp.launch_date(), Day::from_ymd(2019, 12, 1));
        assert!(Cmp::Quantcast.launch_date() < Day::from_ymd(2018, 1, 1));
    }

    #[test]
    fn paper_reported_shares() {
        assert!((Cmp::Quantcast.eu_tld_share() - 0.383).abs() < 1e-9);
        assert!((Cmp::OneTrust.eu_tld_share() - 0.163).abs() < 1e-9);
        assert!((Cmp::TrustArc.hide_from_eu_share() - 0.044).abs() < 1e-9);
        for c in ALL_CMPS {
            assert!(c.embed_only_eu_share() < 0.5);
            assert!(c.eu_tld_share() < 1.0);
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Cmp::OneTrust.to_string(), "OneTrust");
        assert_eq!(format!("{}", Cmp::LiveRamp), "LiveRamp");
    }
}
