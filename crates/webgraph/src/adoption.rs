//! CMP adoption trajectories: who adopts, which CMP, when, and switches.
//!
//! This is the calibrated heart of the synthetic web. Each site's
//! trajectory is generated deterministically from its rank and a seed and
//! reproduces the paper's findings:
//!
//! * **Rank profile (Fig 5)** — no adoption among the very largest sites
//!   (in-house solutions), a peak around ranks 1k–5k (~15 %), ~9 % across
//!   the Tranco 10k, declining to ~1.5 % cumulative over the top 1M.
//! * **Brand mix by rank (Fig 5)** — Quantcast leads the top 100, OneTrust
//!   leads the 500–50k band, Quantcast is more common again in the tail.
//! * **Time profile (Fig 6)** — <1 % of the 10k in early 2018, spikes when
//!   GDPR and CCPA come into effect, roughly doubling June 2018 → June
//!   2019 → June 2020, approaching 10 % by September 2020.
//! * **Switching (Fig 4)** — Quantcast and OneTrust trade customers both
//!   ways; Cookiebot loses an order of magnitude more sites than it gains
//!   ("gateway CMP").

use crate::cmp::{Cmp, ALL_CMPS};
use consent_util::{Day, SeedTree};
use rand::rngs::StdRng;
use rand::Rng;

/// One continuous period during which a site embeds a given CMP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The embedded CMP.
    pub cmp: Cmp,
    /// First day of the embed.
    pub from: Day,
    /// Day the embed ends (exclusive); `None` = still active at the end
    /// of the observation window.
    pub until: Option<Day>,
}

impl Segment {
    /// True if the segment covers `day`.
    pub fn covers(&self, day: Day) -> bool {
        day >= self.from && self.until.is_none_or(|u| day < u)
    }
}

/// A site's full CMP history (possibly empty; ordered, non-overlapping).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trajectory {
    /// Ordered segments.
    pub segments: Vec<Segment>,
}

impl Trajectory {
    /// The CMP embedded on `day`, if any.
    pub fn cmp_on(&self, day: Day) -> Option<Cmp> {
        self.segments.iter().find(|s| s.covers(day)).map(|s| s.cmp)
    }

    /// True if the site ever adopts a CMP.
    pub fn ever_adopts(&self) -> bool {
        !self.segments.is_empty()
    }

    /// The switch event `(day, from, to)` if the trajectory contains one.
    pub fn switch_event(&self) -> Option<(Day, Cmp, Cmp)> {
        self.segments.windows(2).find_map(|w| {
            let end = w[0].until?;
            (end == w[1].from).then_some((end, w[0].cmp, w[1].cmp))
        })
    }
}

/// Adoption-model parameters. Defaults are calibrated to the paper; the
/// bench ablations perturb individual fields.
#[derive(Clone, Debug, PartialEq)]
pub struct AdoptionConfig {
    /// End of the observation window (right censor).
    pub window_end: Day,
    /// Global multiplier on adoption density (1.0 = calibrated level).
    pub density_scale: f64,
    /// Probability scale on switching (1.0 = calibrated level).
    pub switch_scale: f64,
    /// Probability a site abandons CMPs entirely after adopting.
    pub abandon_prob: f64,
}

impl Default for AdoptionConfig {
    fn default() -> AdoptionConfig {
        AdoptionConfig {
            window_end: Day::from_ymd(2020, 9, 30),
            density_scale: 1.0,
            switch_scale: 1.0,
            abandon_prob: 0.02,
        }
    }
}

/// Probability that a site of the given Tranco rank embeds one of the six
/// CMPs by the *end* of the window (September 2020). Piecewise in rank,
/// log-linear across the tail decades.
pub fn adoption_density(rank: u32) -> f64 {
    let r = rank.max(1) as f64;
    match rank {
        0..=50 => 0.005,
        51..=100 => 0.075,
        101..=1_000 => 0.15,
        1_001..=5_000 => 0.16,
        5_001..=10_000 => 0.042,
        10_001..=100_000 => log_interp(r, 1e4, 0.038, 1e5, 0.018),
        _ => log_interp(r, 1e5, 0.017, 1e6, 0.011),
    }
}

/// Log-rank linear interpolation between two anchor points.
fn log_interp(r: f64, r0: f64, d0: f64, r1: f64, d1: f64) -> f64 {
    let t = ((r.ln() - r0.ln()) / (r1.ln() - r0.ln())).clamp(0.0, 1.0);
    d0 + (d1 - d0) * t
}

/// Initial brand mix by rank band, in [`ALL_CMPS`] order
/// (OneTrust, Quantcast, TrustArc, Cookiebot, LiveRamp, Crownpeak).
pub fn brand_weights(rank: u32) -> [f64; 6] {
    match rank {
        0..=100 => [0.17, 0.52, 0.11, 0.13, 0.01, 0.06],
        101..=1_000 => [0.34, 0.30, 0.15, 0.16, 0.02, 0.03],
        1_001..=10_000 => [0.44, 0.22, 0.17, 0.15, 0.015, 0.005],
        10_001..=100_000 => [0.40, 0.27, 0.14, 0.15, 0.02, 0.02],
        _ => [0.27, 0.37, 0.11, 0.19, 0.02, 0.04],
    }
}

/// Adoption-date mixture: interval boundaries shared by all brands.
fn date_intervals() -> [(Day, Day); 6] {
    [
        (Day::from_ymd(2017, 8, 1), Day::from_ymd(2018, 5, 1)), // pre-GDPR
        (Day::from_ymd(2018, 5, 1), Day::from_ymd(2018, 8, 1)), // GDPR spike
        (Day::from_ymd(2018, 8, 1), Day::from_ymd(2019, 6, 1)),
        (Day::from_ymd(2019, 6, 1), Day::from_ymd(2019, 12, 1)),
        (Day::from_ymd(2019, 12, 1), Day::from_ymd(2020, 2, 15)), // CCPA spike
        (Day::from_ymd(2020, 2, 15), Day::from_ymd(2020, 9, 30)),
    ]
}

/// Per-brand weights over [`date_intervals`]. Quantcast and Cookiebot are
/// GDPR-era adopters; OneTrust's mass shifts toward CCPA; LiveRamp only
/// exists after December 2019.
fn date_weights(cmp: Cmp) -> [f64; 6] {
    // Calibrated so the aggregate top-10k CDF matches Fig 6: ~26 % of
    // the final adopter mass is on board by mid-June 2018 and ~53 % by
    // mid-June 2019, which is what makes adoption "roughly double"
    // June 2018 → 2019 → 2020 in expectation rather than by sampling
    // luck.
    match cmp {
        Cmp::OneTrust => [0.05, 0.20, 0.07, 0.22, 0.26, 0.20],
        Cmp::Quantcast => [0.10, 0.52, 0.16, 0.12, 0.05, 0.05],
        Cmp::TrustArc => [0.07, 0.25, 0.08, 0.22, 0.22, 0.16],
        Cmp::Cookiebot => [0.15, 0.55, 0.16, 0.08, 0.03, 0.03],
        Cmp::LiveRamp => [0.0, 0.0, 0.0, 0.0, 0.55, 0.45],
        Cmp::Crownpeak => [0.18, 0.38, 0.14, 0.15, 0.08, 0.07],
    }
}

/// Probability that a site initially adopting `cmp` later switches away,
/// and the destination mix when it does (in [`ALL_CMPS`] order).
/// Cookiebot's 0.38 makes it the big net loser of Figure 4.
fn switch_profile(cmp: Cmp) -> (f64, [f64; 6]) {
    match cmp {
        Cmp::OneTrust => (0.06, [0.0, 0.55, 0.20, 0.05, 0.10, 0.10]),
        Cmp::Quantcast => (0.08, [0.60, 0.0, 0.15, 0.05, 0.10, 0.10]),
        Cmp::TrustArc => (0.07, [0.50, 0.30, 0.0, 0.05, 0.10, 0.05]),
        Cmp::Cookiebot => (0.38, [0.50, 0.30, 0.10, 0.0, 0.05, 0.05]),
        Cmp::LiveRamp => (0.02, [0.50, 0.50, 0.0, 0.0, 0.0, 0.0]),
        Cmp::Crownpeak => (0.10, [0.50, 0.40, 0.10, 0.0, 0.0, 0.0]),
    }
}

/// Generate the trajectory for the site at `rank`. Deterministic in
/// `(seed, rank)`; the seed node should already be site-specific.
pub fn trajectory(rank: u32, config: &AdoptionConfig, site_seed: SeedTree) -> Trajectory {
    let mut rng = site_seed.child("adoption").rng();
    let density = (adoption_density(rank) * config.density_scale).min(1.0);
    if rng.gen::<f64>() >= density {
        return Trajectory::default();
    }

    let first_cmp = sample_brand(&brand_weights(rank), &mut rng);
    let adopted = sample_date(first_cmp, &mut rng).max(first_cmp.launch_date());
    if adopted >= config.window_end {
        return Trajectory::default();
    }

    let mut segments = Vec::with_capacity(2);
    let (p_switch, dest_weights) = switch_profile(first_cmp);
    let switches = rng.gen::<f64>() < p_switch * config.switch_scale;
    let abandons = !switches && rng.gen::<f64>() < config.abandon_prob;

    if switches || abandons {
        // Event date: uniform in (adopted + 90d, window end), if room.
        let earliest = adopted + 90;
        if earliest < config.window_end {
            let event = Day(rng.gen_range(earliest.0..config.window_end.0));
            segments.push(Segment {
                cmp: first_cmp,
                from: adopted,
                until: Some(event),
            });
            if switches {
                let mut dest = sample_brand(&dest_weights, &mut rng);
                // A switch to a not-yet-launched CMP falls back to the
                // market leader at the time.
                if dest.launch_date() > event {
                    dest = Cmp::OneTrust;
                }
                segments.push(Segment {
                    cmp: dest,
                    from: event,
                    until: None,
                });
            }
            return Trajectory { segments };
        }
    }
    segments.push(Segment {
        cmp: first_cmp,
        from: adopted,
        until: None,
    });
    Trajectory { segments }
}

fn sample_brand(weights: &[f64; 6], rng: &mut StdRng) -> Cmp {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return ALL_CMPS[i];
        }
    }
    *ALL_CMPS.last().expect("non-empty")
}

fn sample_date(cmp: Cmp, rng: &mut StdRng) -> Day {
    let weights = date_weights(cmp);
    let intervals = date_intervals();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            let (lo, hi) = intervals[i];
            return Day(rng.gen_range(lo.0..hi.0));
        }
    }
    let (lo, hi) = intervals[intervals.len() - 1];
    Day(rng.gen_range(lo.0..hi.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj(rank: u32, salt: u64) -> Trajectory {
        trajectory(
            rank,
            &AdoptionConfig::default(),
            SeedTree::new(salt).child_idx(u64::from(rank)),
        )
    }

    #[test]
    fn deterministic() {
        for rank in [10u32, 500, 5_000, 50_000] {
            assert_eq!(traj(rank, 1), traj(rank, 1));
        }
    }

    #[test]
    fn density_profile_matches_paper() {
        // Mid-market peak, thin head, long tail (§4.1 / Fig 5).
        assert!(adoption_density(10) < 0.01);
        assert!(adoption_density(2_000) > 0.10);
        assert!(adoption_density(2_000) > adoption_density(80));
        assert!(adoption_density(2_000) > adoption_density(50_000));
        assert!(adoption_density(50_000) > adoption_density(900_000));
        assert!(
            adoption_density(900_000) > 0.005,
            "long tail never vanishes"
        );
        // Tail interpolation is monotone.
        assert!(adoption_density(20_000) > adoption_density(60_000));
        assert!(adoption_density(200_000) > adoption_density(800_000));
    }

    #[test]
    fn aggregate_top10k_rate_near_ten_percent() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(7);
        let end = Day::from_ymd(2020, 9, 15);
        let adopted = (1..=10_000u32)
            .filter(|&r| {
                trajectory(r, &config, seed.child_idx(u64::from(r)))
                    .cmp_on(end)
                    .is_some()
            })
            .count();
        assert!(
            (700..=1200).contains(&adopted),
            "top-10k adopters at Sep 2020: {adopted}"
        );
    }

    #[test]
    fn adoption_roughly_doubles_yearly() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(7);
        let count_at = |d: Day| {
            (1..=10_000u32)
                .filter(|&r| {
                    trajectory(r, &config, seed.child_idx(u64::from(r)))
                        .cmp_on(d)
                        .is_some()
                })
                .count()
        };
        let jun18 = count_at(Day::from_ymd(2018, 6, 15));
        let jun19 = count_at(Day::from_ymd(2019, 6, 15));
        let jun20 = count_at(Day::from_ymd(2020, 6, 15));
        let feb18 = count_at(Day::from_ymd(2018, 2, 15));
        assert!(feb18 < 120, "Feb 2018 should be <1.2%: {feb18}");
        let r1 = jun19 as f64 / jun18 as f64;
        let r2 = jun20 as f64 / jun19 as f64;
        assert!((1.5..=3.2).contains(&r1), "Jun18→Jun19 ratio {r1}");
        assert!((1.4..=2.8).contains(&r2), "Jun19→Jun20 ratio {r2}");
    }

    #[test]
    fn quantcast_leads_the_head_onetrust_the_middle() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(11);
        let end = Day::from_ymd(2020, 5, 15);
        let count = |lo: u32, hi: u32| -> (usize, usize) {
            let mut q = 0;
            let mut o = 0;
            for r in lo..=hi {
                match trajectory(r, &config, seed.child_idx(u64::from(r))).cmp_on(end) {
                    Some(Cmp::Quantcast) => q += 1,
                    Some(Cmp::OneTrust) => o += 1,
                    _ => {}
                }
            }
            (q, o)
        };
        // 1k-10k band: OneTrust clearly ahead.
        let (q_mid, o_mid) = count(1_001, 10_000);
        assert!(
            o_mid > q_mid,
            "OneTrust {o_mid} vs Quantcast {q_mid} in 1k-10k"
        );
    }

    #[test]
    fn cookiebot_is_net_loser() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(13);
        let mut lost = 0usize;
        let mut gained = 0usize;
        for r in 1..=60_000u32 {
            let t = trajectory(r, &config, seed.child_idx(u64::from(r)));
            if let Some((_, from, to)) = t.switch_event() {
                if from == Cmp::Cookiebot {
                    lost += 1;
                }
                if to == Cmp::Cookiebot {
                    gained += 1;
                }
            }
        }
        assert!(
            lost >= 5 * gained.max(1),
            "Cookiebot lost {lost}, gained {gained}"
        );
        assert!(
            lost > 20,
            "expected substantial Cookiebot churn, lost {lost}"
        );
    }

    #[test]
    fn liveramp_only_after_launch() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(17);
        for r in 1..=60_000u32 {
            let t = trajectory(r, &config, seed.child_idx(u64::from(r)));
            for s in &t.segments {
                if s.cmp == Cmp::LiveRamp {
                    assert!(
                        s.from >= Cmp::LiveRamp.launch_date(),
                        "LiveRamp segment before launch at rank {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn segments_are_ordered_and_disjoint() {
        let config = AdoptionConfig::default();
        let seed = SeedTree::new(19);
        for r in (1..=100_000u32).step_by(37) {
            let t = trajectory(r, &config, seed.child_idx(u64::from(r)));
            for w in t.segments.windows(2) {
                let end = w[0].until.expect("non-final segment must end");
                assert!(end <= w[1].from);
                assert!(w[0].from < end);
            }
            if let Some(last) = t.segments.last() {
                if let Some(u) = last.until {
                    assert!(last.from < u);
                }
            }
        }
    }

    #[test]
    fn segment_cover_and_lookup() {
        let s = Segment {
            cmp: Cmp::Quantcast,
            from: Day::from_ymd(2018, 6, 1),
            until: Some(Day::from_ymd(2019, 6, 1)),
        };
        assert!(!s.covers(Day::from_ymd(2018, 5, 31)));
        assert!(s.covers(Day::from_ymd(2018, 6, 1)));
        assert!(s.covers(Day::from_ymd(2019, 5, 31)));
        assert!(!s.covers(Day::from_ymd(2019, 6, 1)));
        let t = Trajectory {
            segments: vec![
                s,
                Segment {
                    cmp: Cmp::OneTrust,
                    from: Day::from_ymd(2019, 6, 1),
                    until: None,
                },
            ],
        };
        assert_eq!(t.cmp_on(Day::from_ymd(2018, 7, 1)), Some(Cmp::Quantcast));
        assert_eq!(t.cmp_on(Day::from_ymd(2020, 1, 1)), Some(Cmp::OneTrust));
        assert_eq!(t.cmp_on(Day::from_ymd(2017, 1, 1)), None);
        assert_eq!(
            t.switch_event(),
            Some((Day::from_ymd(2019, 6, 1), Cmp::Quantcast, Cmp::OneTrust))
        );
        assert!(t.ever_adopts());
        assert!(!Trajectory::default().ever_adopts());
        assert_eq!(Trajectory::default().switch_event(), None);
    }

    #[test]
    fn density_scale_works() {
        let config = AdoptionConfig {
            density_scale: 0.0,
            ..AdoptionConfig::default()
        };
        let seed = SeedTree::new(23);
        for r in 1..=2_000u32 {
            assert!(!trajectory(r, &config, seed.child_idx(u64::from(r))).ever_adopts());
        }
    }
}
